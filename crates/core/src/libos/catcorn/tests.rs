//! catcorn tests: the Demikernel interface over RDMA.

use super::*;
use std::net::Ipv4Addr;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

fn world() -> (Runtime, Catcorn, Catcorn) {
    let fabric = Fabric::new(31);
    let rt = Runtime::with_fabric(fabric.clone());
    let a = Catcorn::new(&rt, &fabric, MacAddress::from_last_octet(1));
    let b = Catcorn::new(&rt, &fabric, MacAddress::from_last_octet(2));
    (rt, a, b)
}

fn connected(client: &Catcorn, server: &Catcorn) -> (QDesc, QDesc) {
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(ip(2), 18515)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client.connect(cqd, SocketAddr::new(ip(2), 18515)).unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    assert!(matches!(
        client.wait(cqt, None).unwrap(),
        OperationResult::Connect
    ));
    (cqd, sqd)
}

#[test]
fn connect_accept_and_exchange() {
    let (_rt, client, server) = world();
    let (cqd, sqd) = connected(&client, &server);
    client
        .blocking_push(cqd, &Sga::from_slice(b"over verbs"))
        .unwrap();
    let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
    assert_eq!(sga.to_vec(), b"over verbs");
    server
        .blocking_push(sqd, &Sga::from_slice(b"reply"))
        .unwrap();
    let (_, reply) = client.blocking_pop(cqd).unwrap().expect_pop();
    assert_eq!(reply.to_vec(), b"reply");
}

#[test]
fn many_messages_without_app_buffer_management() {
    // The application never posts a receive or registers memory; the
    // libOS's pre-posted ring absorbs a burst larger than a naive single
    // buffer would.
    let (_rt, client, server) = world();
    let (cqd, sqd) = connected(&client, &server);
    for i in 0..100u32 {
        client
            .blocking_push(cqd, &Sga::from_slice(&i.to_be_bytes()))
            .unwrap();
        let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        assert_eq!(sga.to_vec(), i.to_be_bytes());
    }
    // No RNR ever fired: the receive ring was always stocked.
    assert_eq!(server.device().stats().rnr_nacks_sent, 0);
}

#[test]
fn slot_exhaustion_back_pressures_instead_of_failing() {
    let (_rt, client, server) = world();
    let (cqd, sqd) = connected(&client, &server);
    // Fire more pushes than there are send slots before popping any.
    let tokens: Vec<QToken> = (0..2 * RING_SLOTS as u32)
        .map(|i| {
            client
                .push(cqd, &Sga::from_slice(&i.to_be_bytes()))
                .unwrap()
        })
        .collect();
    // Pops drain the receiver, freeing slots; everything completes.
    for i in 0..2 * RING_SLOTS as u32 {
        let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        assert_eq!(sga.to_vec(), i.to_be_bytes());
    }
    let results = client.wait_all(&tokens, None).unwrap();
    assert!(results.iter().all(|r| matches!(r, OperationResult::Push)));
}

#[test]
fn registration_happens_per_connection_not_per_io() {
    let (_rt, client, server) = world();
    let regs_before = client.device().stats().mr_registrations;
    let (cqd, sqd) = connected(&client, &server);
    let regs_setup = client.device().stats().mr_registrations;
    assert_eq!(regs_setup - regs_before, 2, "send + recv ring per conn");
    for _ in 0..50 {
        client
            .blocking_push(cqd, &Sga::from_slice(b"payload"))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    assert_eq!(
        client.device().stats().mr_registrations,
        regs_setup,
        "the data path never registers memory"
    );
}

#[test]
fn oversized_message_is_rejected_synchronously() {
    let (_rt, client, server) = world();
    let (cqd, _sqd) = connected(&client, &server);
    let big = Sga::from_slice(&vec![0u8; SLOT_SIZE + 1]);
    assert!(matches!(client.push(cqd, &big), Err(DemiError::Rdma(_))));
}

#[test]
fn connect_to_dead_port_fails() {
    let (_rt, client, _server) = world();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let qt = client.connect(cqd, SocketAddr::new(ip(2), 4444)).unwrap();
    assert!(client.wait(qt, None).unwrap().is_failed());
}

#[test]
fn same_echo_source_runs_on_catcorn() {
    // Portability: the generic echo used in catnap tests, now on RDMA.
    let (_rt, client, server) = world();
    let (cqd, sqd) = connected(&client, &server);
    let c: &dyn LibOs = &client;
    let s: &dyn LibOs = &server;
    c.blocking_push(cqd, &Sga::from_slice(b"portable")).unwrap();
    let (_, msg) = s.blocking_pop(sqd).unwrap().expect_pop();
    s.blocking_push(sqd, &msg).unwrap();
    let (_, reply) = c.blocking_pop(cqd).unwrap().expect_pop();
    assert_eq!(reply.to_vec(), b"portable");
}

#[test]
fn device_caps_report_reliable_transport() {
    let (_rt, client, _server) = world();
    let caps = client.device_caps().unwrap();
    assert!(caps.reliable_transport);
    assert!(!caps.buffer_management, "that part is catcorn's job");
}
