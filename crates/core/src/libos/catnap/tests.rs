//! catnap tests: identical application code, kernel in the way.

use super::*;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

fn world() -> (Runtime, Catnap, Catnap) {
    let fabric = Fabric::new(7);
    let rt = Runtime::with_fabric(fabric.clone());
    let a = Catnap::new(&rt, &fabric, MacAddress::from_last_octet(1), ip(1));
    let b = Catnap::new(&rt, &fabric, MacAddress::from_last_octet(2), ip(2));
    (rt, a, b)
}

#[test]
fn udp_echo_round_trip_with_kernel_costs() {
    let (_rt, client, server) = world();
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(ip(1), 9000)).unwrap();

    client
        .pushto(cqd, &Sga::from_slice(b"ping"), SocketAddr::new(ip(2), 7))
        .unwrap();
    let (from, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
    assert_eq!(sga.to_vec(), b"ping");
    server.pushto(sqd, &sga, from.unwrap()).unwrap();
    let (_, reply) = client.blocking_pop(cqd).unwrap().expect_pop();
    assert_eq!(reply.to_vec(), b"ping");

    // The kernel was involved: crossings and copies are nonzero — the
    // contrast with catnip's zeros is experiment E1.
    let ks = client.kernel_stats().expect("catnap meters the kernel");
    assert!(ks.syscalls > 0, "POSIX path must cross the kernel");
    assert!(ks.copies > 0, "POSIX path must copy payloads");
    assert!(ks.bytes_copied >= 8);
}

#[test]
fn tcp_messages_survive_the_posix_stream() {
    let (_rt, client, server) = world();
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(ip(2), 80)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client.connect(cqd, SocketAddr::new(ip(2), 80)).unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    assert!(matches!(
        client.wait(cqt, None).unwrap(),
        OperationResult::Connect
    ));

    client
        .blocking_push(cqd, &Sga::from_slice(b"request-1"))
        .unwrap();
    client
        .blocking_push(cqd, &Sga::from_slice(b"request-2"))
        .unwrap();
    let (_, m1) = server.blocking_pop(sqd).unwrap().expect_pop();
    let (_, m2) = server.blocking_pop(sqd).unwrap().expect_pop();
    assert_eq!(m1.to_vec(), b"request-1");
    assert_eq!(m2.to_vec(), b"request-2");
}

#[test]
fn connect_refused_is_reported() {
    let (_rt, client, _server) = world();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let qt = client.connect(cqd, SocketAddr::new(ip(2), 4242)).unwrap();
    let result = client.wait(qt, None).unwrap();
    assert!(result.is_failed());
}

#[test]
fn same_source_runs_on_catnip_and_catnap() {
    // The portability claim: one echo function, two libOSes.
    fn echo_once(client: &dyn LibOs, server: &dyn LibOs, cip: Ipv4Addr, sip: Ipv4Addr) -> Vec<u8> {
        let sqd = server.socket(SocketKind::Udp).unwrap();
        server.bind(sqd, SocketAddr::new(sip, 7)).unwrap();
        let cqd = client.socket(SocketKind::Udp).unwrap();
        client.bind(cqd, SocketAddr::new(cip, 9000)).unwrap();
        client
            .pushto(cqd, &Sga::from_slice(b"portable"), SocketAddr::new(sip, 7))
            .unwrap();
        let (from, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        server.pushto(sqd, &sga, from.unwrap()).unwrap();
        let (_, reply) = client.blocking_pop(cqd).unwrap().expect_pop();
        reply.to_vec()
    }

    let (_rt, c1, s1) = world();
    assert_eq!(echo_once(&c1, &s1, ip(1), ip(2)), b"portable");

    let fabric = Fabric::new(8);
    let rt = Runtime::with_fabric(fabric.clone());
    let c2 = crate::libos::catnip::Catnip::new(&rt, &fabric, MacAddress::from_last_octet(1), ip(1));
    let s2 = crate::libos::catnip::Catnip::new(&rt, &fabric, MacAddress::from_last_octet(2), ip(2));
    assert_eq!(echo_once(&c2, &s2, ip(1), ip(2)), b"portable");
}

#[test]
fn kernel_charges_virtual_time() {
    let (rt, client, server) = world();
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(ip(1), 9000)).unwrap();
    let t0 = rt.now();
    client
        .pushto(
            cqd,
            &Sga::from_slice(&[0u8; 1400]),
            SocketAddr::new(ip(2), 7),
        )
        .unwrap();
    let _ = server.blocking_pop(sqd).unwrap();
    let elapsed = rt.now().saturating_since(t0);
    // At minimum: the 1400-byte copies (~2×340ns) plus syscalls plus the
    // 1µs link latency.
    assert!(
        elapsed.as_nanos() > 2_000,
        "kernel path too cheap: {elapsed:?}"
    );
}
