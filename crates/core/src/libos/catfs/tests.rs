//! catfs tests: the single-application log layout.

use super::*;
use spdk_sim::nvme::NvmeConfig;

fn setup() -> (Runtime, Catfs, NvmeDevice) {
    let rt = Runtime::new();
    let device = NvmeDevice::new(rt.clock().clone(), NvmeConfig::default());
    let catfs = Catfs::new(&rt, device.clone());
    (rt, catfs, device)
}

#[test]
fn push_pop_round_trip() {
    let (_rt, fs, _dev) = setup();
    let qd = fs.create("kv-log").unwrap();
    fs.blocking_push(qd, &Sga::from_slice(b"record-1")).unwrap();
    fs.blocking_push(qd, &Sga::from_slice(b"record-2")).unwrap();
    let (_, r1) = fs.blocking_pop(qd).unwrap().expect_pop();
    let (_, r2) = fs.blocking_pop(qd).unwrap().expect_pop();
    assert_eq!(r1.to_vec(), b"record-1");
    assert_eq!(r2.to_vec(), b"record-2");
}

#[test]
fn small_appends_cost_one_block_write_each() {
    let (_rt, fs, dev) = setup();
    let qd = fs.create("log").unwrap();
    let before = dev.stats().blocks_written;
    for i in 0..10u8 {
        fs.blocking_push(qd, &Sga::from_slice(&[i; 100])).unwrap();
    }
    let per_append = (dev.stats().blocks_written - before) as f64 / 10.0;
    assert!(
        per_append <= 1.01,
        "log layout must write ~1 block per small append, got {per_append}"
    );
    assert_eq!(fs.stats().appends, 10);
}

#[test]
fn large_records_span_blocks() {
    let (_rt, fs, _dev) = setup();
    let qd = fs.create("big").unwrap();
    let payload: Vec<u8> = (0..20_000u32).map(|i| (i % 253) as u8).collect();
    fs.blocking_push(qd, &Sga::from_slice(&payload)).unwrap();
    let (_, got) = fs.blocking_pop(qd).unwrap().expect_pop();
    assert_eq!(got.to_vec(), payload);
}

#[test]
fn independent_readers_have_independent_cursors() {
    let (_rt, fs, _dev) = setup();
    let writer = fs.create("shared").unwrap();
    fs.blocking_push(writer, &Sga::from_slice(b"alpha"))
        .unwrap();
    fs.blocking_push(writer, &Sga::from_slice(b"beta")).unwrap();
    let r1 = fs.open("shared").unwrap();
    let r2 = fs.open("shared").unwrap();
    let (_, a) = fs.blocking_pop(r1).unwrap().expect_pop();
    let (_, b) = fs.blocking_pop(r2).unwrap().expect_pop();
    assert_eq!(a.to_vec(), b"alpha");
    assert_eq!(b.to_vec(), b"alpha", "each reader starts at the head");
}

#[test]
fn pop_blocks_until_push_like_a_queue() {
    let (_rt, fs, _dev) = setup();
    let qd = fs.create("tail").unwrap();
    let pop_qt = fs.pop(qd).unwrap();
    let push_qt = fs.push(qd, &Sga::from_slice(b"late")).unwrap();
    let results = fs.wait_all(&[pop_qt, push_qt], None).unwrap();
    let (_, sga) = results[0].clone().expect_pop();
    assert_eq!(sga.to_vec(), b"late");
}

#[test]
fn create_conflicts_and_missing_logs_error() {
    let (_rt, fs, _dev) = setup();
    fs.create("x").unwrap();
    assert!(fs.create("x").is_err());
    assert!(fs.open("y").is_err());
}

#[test]
fn recovery_rebuilds_a_log_from_the_device() {
    let rt = Runtime::new();
    let device = NvmeDevice::new(rt.clock().clone(), NvmeConfig::default());
    {
        let fs = Catfs::new(&rt, device.clone());
        let qd = fs.create("durable").unwrap();
        fs.blocking_push(qd, &Sga::from_slice(b"survives")).unwrap();
        fs.blocking_push(qd, &Sga::from_slice(b"reboots")).unwrap();
    }
    // "Reboot": a fresh catfs on the same device. The device reads the
    // original clock, so the new runtime must share it.
    let rt2 = Runtime::with_clock(rt.clock().clone());
    let fs2 = Catfs::new(&rt2, device);
    let qd = fs2.recover("durable").unwrap();
    let (_, a) = fs2.blocking_pop(qd).unwrap().expect_pop();
    let (_, b) = fs2.blocking_pop(qd).unwrap().expect_pop();
    assert_eq!(a.to_vec(), b"survives");
    assert_eq!(b.to_vec(), b"reboots");
}

#[test]
fn io_takes_virtual_time() {
    let (rt, fs, _dev) = setup();
    let qd = fs.create("timed").unwrap();
    let t0 = rt.now();
    fs.blocking_push(qd, &Sga::from_slice(&[1u8; 64])).unwrap();
    assert!(rt.now() > t0, "flash writes are not free");
}

#[test]
fn sockets_are_not_supported() {
    let (_rt, fs, _dev) = setup();
    assert!(matches!(
        fs.socket(crate::libos::SocketKind::Udp),
        Err(DemiError::NotSupported(_))
    ));
}
