//! `catfs`: the storage library OS with an accelerator-specific layout.
//!
//! Paper §5.3: a Demikernel libOS serves a *single application*, so it
//! need not pay for a general-purpose UNIX file system; "future work could
//! include design of an accelerator-specific storage layout." catfs is
//! that design point: each named queue is an append-only record log.
//!
//! * `push` appends one record — `[magic, length, checksum, payload]` —
//!   buffered in the tail block; exactly **one** device block write makes
//!   it durable (the log is its own allocation map: no bitmap, no inode).
//!   Compare with the ext4-like baseline in [`posix_sim::file`], which
//!   pays bitmap + inode + (eventually) indirect-block writes per append —
//!   the difference experiment E10 measures as write amplification.
//! * `pop` tails the log: it returns the next record as an atomic element,
//!   verifying its checksum, and blocks (cooperatively) at the end of the
//!   log until more data is pushed.
//! * Records are recoverable: [`Catfs::recover`] rebuilds a log's state by
//!   scanning the device (single-log devices; multi-log devices would need
//!   per-extent ownership tags, noted as future work).

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

use demi_sched::Notify;
use sim_fabric::{DeviceCaps, SimClock};
use spdk_sim::nvme::{NvmeCompletion, NvmeDevice, QpairId, BLOCK_SIZE};

use crate::libos::{LibOs, LibOsKind};
use crate::runtime::Runtime;
use crate::types::{DemiError, OperationResult, QDesc, QToken, Sga};

/// Record header: magic (2) + payload length (4) + checksum (4).
const RECORD_HEADER: usize = 10;
const RECORD_MAGIC: u16 = 0xD11D;

/// catfs layout counters (experiment E10).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CatfsStats {
    /// Device block writes issued (the log's only write class).
    pub block_writes: u64,
    /// Device block reads issued.
    pub block_reads: u64,
    /// Records appended.
    pub appends: u64,
    /// Records popped.
    pub records_read: u64,
    /// Checksum failures encountered while reading.
    pub checksum_failures: u64,
}

struct LogState {
    /// Device blocks of this log, in order.
    blocks: Vec<u64>,
    /// Total bytes appended.
    len: u64,
    /// Cached tail-block contents (also durable: rewritten per push).
    tail: Vec<u8>,
    /// Fires whenever `len` grows, waking pops parked at the log tail.
    appended: Notify,
}

impl LogState {
    fn new() -> Self {
        LogState {
            blocks: Vec::new(),
            len: 0,
            tail: Vec::new(),
            appended: Notify::new(),
        }
    }
}

struct OpenLog {
    log: Rc<RefCell<LogState>>,
    cursor: u64,
}

struct Inner {
    logs: HashMap<String, Rc<RefCell<LogState>>>,
    queues: HashMap<QDesc, OpenLog>,
    next_qd: u32,
    next_lba: u64,
    next_cmd: u64,
    completions: HashMap<u64, NvmeCompletion>,
    stats: CatfsStats,
}

/// The storage libOS.
#[derive(Clone)]
pub struct Catfs {
    runtime: Runtime,
    device: NvmeDevice,
    qpair: QpairId,
    inner: Rc<RefCell<Inner>>,
}

/// The cycle-free heart of catfs: everything the I/O coroutines need.
/// Spawned coroutines capture this — never `Catfs` itself — because a task
/// future holding a `Runtime` clone would form an Rc cycle (runtime →
/// scheduler → task future → runtime) and leak the whole world.
#[derive(Clone)]
struct Core {
    device: NvmeDevice,
    qpair: QpairId,
    inner: Rc<RefCell<Inner>>,
    /// The runtime's activity gate (its own Rc, independent of the runtime).
    activity: Notify,
}

impl Core {
    /// Drains device completions into the dispatch table; returns how many
    /// arrived (the poller's external-progress report, which also makes the
    /// runtime fire its activity gate for the waiters parked in
    /// [`Core::wait_cmd`]).
    fn pump_completions(&self) -> usize {
        let comps = self.device.poll_completions(self.qpair, 64);
        let n = comps.len();
        if n == 0 {
            return 0;
        }
        let mut inner = self.inner.borrow_mut();
        for c in comps {
            inner.completions.insert(c.cmd_id, c);
        }
        n
    }

    async fn wait_cmd(&self, cmd_id: u64) -> NvmeCompletion {
        loop {
            // Completions surface through the poller above, which counts as
            // external progress; park on the activity gate between checks.
            let wait = self.activity.notified();
            if let Some(c) = self.inner.borrow_mut().completions.remove(&cmd_id) {
                return c;
            }
            wait.await;
        }
    }

    /// Submits a block write and waits for durability.
    async fn write_block(&self, lba: u64, data: &[u8]) {
        let cmd_id = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_cmd;
            inner.next_cmd += 1;
            inner.stats.block_writes += 1;
            id
        };
        self.device
            .submit_write(self.qpair, cmd_id, lba, data)
            .expect("catfs block write");
        self.wait_cmd(cmd_id).await;
    }

    /// Submits a block read and waits for the data.
    async fn read_block(&self, lba: u64) -> Vec<u8> {
        let cmd_id = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_cmd;
            inner.next_cmd += 1;
            inner.stats.block_reads += 1;
            id
        };
        self.device
            .submit_read(self.qpair, cmd_id, lba, 1)
            .expect("catfs block read");
        self.wait_cmd(cmd_id).await.data.expect("read returns data")
    }

    /// Reads `len` bytes at byte offset `off` of `log` from the device.
    async fn read_bytes(&self, log: &Rc<RefCell<LogState>>, off: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut pos = off as usize;
        let end = off as usize + len;
        while pos < end {
            let block_index = pos / BLOCK_SIZE;
            let in_block = pos % BLOCK_SIZE;
            let take = (BLOCK_SIZE - in_block).min(end - pos);
            let lba = log.borrow().blocks[block_index];
            let block = self.read_block(lba).await;
            out.extend_from_slice(&block[in_block..in_block + take]);
            pos += take;
        }
        out
    }
}

impl Catfs {
    /// Creates a catfs instance owning `device`, registered on the shared
    /// runtime (the device's completion times drive clock advancement).
    pub fn new(runtime: &Runtime, device: NvmeDevice) -> Self {
        let qpair = device.alloc_qpair();
        let catfs = Catfs {
            runtime: runtime.clone(),
            device: device.clone(),
            qpair,
            inner: Rc::new(RefCell::new(Inner {
                logs: HashMap::new(),
                queues: HashMap::new(),
                next_qd: 1,
                next_lba: 0,
                next_cmd: 1,
                completions: HashMap::new(),
                stats: CatfsStats::default(),
            })),
        };
        // Pump device completions into the dispatch table each pass. The
        // poller lives inside the runtime, so it must capture the cycle-free
        // core, not the libOS (which holds the runtime).
        let pump = catfs.core();
        runtime.register_poller(move || pump.pump_completions());
        let deadline_dev = device.clone();
        runtime.register_deadline_source(move || deadline_dev.next_deadline());
        catfs
    }

    /// The shared virtual clock (convenience).
    pub fn clock(&self) -> SimClock {
        self.runtime.clock().clone()
    }

    /// Layout counters.
    pub fn stats(&self) -> CatfsStats {
        self.inner.borrow().stats
    }

    /// Device-level counters (write amplification denominator).
    pub fn device_stats(&self) -> spdk_sim::NvmeStats {
        self.device.stats()
    }

    /// A fresh handle to the cycle-free coroutine state.
    fn core(&self) -> Core {
        Core {
            device: self.device.clone(),
            qpair: self.qpair,
            inner: self.inner.clone(),
            activity: self.runtime.activity().clone(),
        }
    }

    /// Rebuilds a log from a device written by a previous catfs instance
    /// (single-log devices: scanning starts at block 0).
    pub fn recover(&self, path: &str) -> Result<QDesc, DemiError> {
        let mut state = LogState::new();
        let mut lba = 0u64;
        // Synchronous scan (mount is control-path): read blocks until the
        // record stream stops parsing.
        let mut bytes: Vec<u8> = Vec::new();
        loop {
            let data = self.sync_read_block(lba);
            let all_zero = data.iter().all(|&b| b == 0);
            // An all-zero block ends the scan only when the bytes so far
            // parse to a clean end: a record's interior may legitimately
            // contain a whole block of zeros, and a record (or even a
            // single magic byte) may straddle the block boundary — both
            // leave the parse "open", so keep reading. Stopping early on
            // any of those would silently truncate the log.
            if all_zero && bytes_parse_end(&bytes) {
                break;
            }
            bytes.extend_from_slice(&data);
            state.blocks.push(lba);
            lba += 1;
            if lba >= self.device.namespace_blocks() {
                break;
            }
        }
        let valid_len = parsed_length(&bytes);
        state.len = valid_len;
        // Trim trailing unused blocks and rebuild the tail cache.
        let needed_blocks = (valid_len as usize).div_ceil(BLOCK_SIZE);
        state.blocks.truncate(needed_blocks);
        let tail_start = (valid_len as usize / BLOCK_SIZE) * BLOCK_SIZE;
        state.tail = bytes[tail_start..valid_len as usize].to_vec();
        if (valid_len as usize).is_multiple_of(BLOCK_SIZE) && !state.tail.is_empty() {
            state.tail.clear();
        }

        let mut inner = self.inner.borrow_mut();
        inner.next_lba = inner.next_lba.max(state.blocks.len() as u64);
        let log = Rc::new(RefCell::new(state));
        inner.logs.insert(path.to_string(), log.clone());
        let qd = QDesc(inner.next_qd);
        inner.next_qd += 1;
        inner.queues.insert(qd, OpenLog { log, cursor: 0 });
        Ok(qd)
    }

    // ------------------------------------------------------------------
    // Device-side chained resubmission (E17).
    // ------------------------------------------------------------------

    /// Submits one device-side pointer chase: the device follows the
    /// next-pointer embedded in each block *internally* and completes
    /// once with the terminal block — one host submission and one
    /// completion for an N-hop walk. The popped Sga is the terminal
    /// block's contents; [`Catfs::device_stats`] `chase_hops` advances
    /// by the walk length (device work is never free, just cheaper than
    /// N host crossings). Compare with [`Catfs::chase_host`].
    pub fn chase(&self, spec: spdk_sim::ChainSpec) -> QToken {
        self.runtime.metrics().count_pop();
        let core = self.core();
        self.runtime.spawn_op("catfs::chase", async move {
            let cmd_id = {
                let mut inner = core.inner.borrow_mut();
                let id = inner.next_cmd;
                inner.next_cmd += 1;
                id
            };
            if core.device.submit_chase(core.qpair, cmd_id, spec).is_err() {
                return OperationResult::Failed(DemiError::Storage("chase rejected"));
            }
            let completion = core.wait_cmd(cmd_id).await;
            OperationResult::Pop {
                from: None,
                sga: Sga::from_slice(&completion.data.expect("chase returns the final block")),
            }
        })
    }

    /// The host-path baseline for the same walk: the host reads a block,
    /// parses the pointer, and resubmits — N submissions, N completions,
    /// N host crossings. E17's storage A/B measures this against
    /// [`Catfs::chase`].
    pub fn chase_host(&self, spec: spdk_sim::ChainSpec) -> QToken {
        self.runtime.metrics().count_pop();
        let core = self.core();
        self.runtime.spawn_op("catfs::chase_host", async move {
            let blocks = core.device.namespace_blocks();
            let mut lba = spec.start_lba;
            let mut hops = 0u32;
            loop {
                let block = core.read_block(lba).await;
                hops += 1;
                let at = spec.pointer_offset;
                let next =
                    u64::from_le_bytes(block[at..at + 8].try_into().expect("offset validated"));
                if next == spec.sentinel || hops >= spec.max_hops || next >= blocks {
                    return OperationResult::Pop {
                        from: None,
                        sga: Sga::from_slice(&block),
                    };
                }
                lba = next;
            }
        })
    }

    /// Synchronous block read for mount-time recovery (control path).
    fn sync_read_block(&self, lba: u64) -> Vec<u8> {
        let cmd_id = {
            let mut inner = self.inner.borrow_mut();
            let id = inner.next_cmd;
            inner.next_cmd += 1;
            inner.stats.block_reads += 1;
            id
        };
        self.device
            .submit_read(self.qpair, cmd_id, lba, 1)
            .expect("recovery read");
        loop {
            if let Some(t) = self.device.next_deadline() {
                self.runtime.clock().advance_to(t);
            }
            for c in self.device.poll_completions(self.qpair, 64) {
                if c.cmd_id == cmd_id {
                    return c.data.expect("read returns data");
                }
                self.inner.borrow_mut().completions.insert(c.cmd_id, c);
            }
        }
    }
}

/// Whether `bytes` parses as a complete record stream (no partial record
/// at the end).
fn bytes_parse_end(bytes: &[u8]) -> bool {
    parsed_length(bytes) == bytes.len() as u64 || remaining_is_unparseable(bytes)
}

fn remaining_is_unparseable(bytes: &[u8]) -> bool {
    let off = parsed_length(bytes) as usize;
    let rest = &bytes[off..];
    match rest.len() {
        0 => true, // Clean record boundary.
        // One stray byte: unparseable only if it cannot start a magic
        // (zero padding); a real magic prefix means the record continues
        // in the next block.
        1 => rest[0] != RECORD_MAGIC.to_be_bytes()[0],
        _ => u16::from_be_bytes([rest[0], rest[1]]) != RECORD_MAGIC,
    }
}

/// Byte length of the longest valid record prefix of `bytes`.
fn parsed_length(bytes: &[u8]) -> u64 {
    let mut off = 0usize;
    loop {
        if bytes.len() - off < RECORD_HEADER {
            return off as u64;
        }
        if u16::from_be_bytes([bytes[off], bytes[off + 1]]) != RECORD_MAGIC {
            return off as u64;
        }
        let len = u32::from_be_bytes([
            bytes[off + 2],
            bytes[off + 3],
            bytes[off + 4],
            bytes[off + 5],
        ]) as usize;
        if bytes.len() - off < RECORD_HEADER + len {
            return off as u64;
        }
        off += RECORD_HEADER + len;
    }
}

/// FNV-1a over the payload, the record checksum.
fn checksum(data: &[u8]) -> u32 {
    let mut hash: u32 = 0x811C_9DC5;
    for &b in data {
        hash ^= b as u32;
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

impl LibOs for Catfs {
    fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    fn kind(&self) -> LibOsKind {
        LibOsKind::Catfs
    }

    fn device_caps(&self) -> Option<DeviceCaps> {
        Some(spdk_sim::capabilities())
    }

    fn create(&self, path: &str) -> Result<QDesc, DemiError> {
        self.runtime.metrics().count_control_path_syscall();
        let mut inner = self.inner.borrow_mut();
        if inner.logs.contains_key(path) {
            return Err(DemiError::Storage("log exists"));
        }
        let log = Rc::new(RefCell::new(LogState::new()));
        inner.logs.insert(path.to_string(), log.clone());
        let qd = QDesc(inner.next_qd);
        inner.next_qd += 1;
        inner.queues.insert(qd, OpenLog { log, cursor: 0 });
        Ok(qd)
    }

    fn open(&self, path: &str) -> Result<QDesc, DemiError> {
        self.runtime.metrics().count_control_path_syscall();
        let mut inner = self.inner.borrow_mut();
        let log = inner
            .logs
            .get(path)
            .cloned()
            .ok_or(DemiError::Storage("no such log"))?;
        let qd = QDesc(inner.next_qd);
        inner.next_qd += 1;
        inner.queues.insert(qd, OpenLog { log, cursor: 0 });
        Ok(qd)
    }

    fn close(&self, qd: QDesc) -> Result<(), DemiError> {
        self.inner
            .borrow_mut()
            .queues
            .remove(&qd)
            .map(|_| ())
            .ok_or(DemiError::BadQDesc)
    }

    fn push(&self, qd: QDesc, sga: &Sga) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_push();
        let log = {
            let inner = self.inner.borrow();
            inner
                .queues
                .get(&qd)
                .map(|o| o.log.clone())
                .ok_or(DemiError::BadQDesc)?
        };
        let payload = sga.to_vec();
        let core = self.core();
        Ok(self.runtime.spawn_op("catfs::push", async move {
            // Serialize the record.
            let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
            record.extend_from_slice(&RECORD_MAGIC.to_be_bytes());
            record.extend_from_slice(&(payload.len() as u32).to_be_bytes());
            record.extend_from_slice(&checksum(&payload).to_be_bytes());
            record.extend_from_slice(&payload);

            // Append through the tail block; each filled block is written
            // once, and the final (possibly partial) tail block is written
            // for durability. No metadata writes, ever.
            let mut written = 0;
            while written < record.len() {
                let (lba, tail_len) = {
                    let mut state = log.borrow_mut();
                    if state.tail.is_empty() {
                        // Start a new block.
                        let lba = {
                            let mut inner = core.inner.borrow_mut();
                            let lba = inner.next_lba;
                            inner.next_lba += 1;
                            lba
                        };
                        state.blocks.push(lba);
                    }
                    let take = (BLOCK_SIZE - state.tail.len()).min(record.len() - written);
                    state
                        .tail
                        .extend_from_slice(&record[written..written + take]);
                    state.len += take as u64;
                    written += take;
                    (
                        *state.blocks.last().expect("block allocated"),
                        state.tail.len(),
                    )
                };
                // Durability: write the tail block (padded to block size).
                let block = {
                    let state = log.borrow();
                    let mut b = state.tail.clone();
                    b.resize(BLOCK_SIZE, 0);
                    b
                };
                core.write_block(lba, &block).await;
                {
                    let mut state = log.borrow_mut();
                    if tail_len == BLOCK_SIZE {
                        state.tail.clear();
                    }
                    // The appended bytes are durable: wake tailing pops.
                    state.appended.notify_waiters();
                }
            }
            core.inner.borrow_mut().stats.appends += 1;
            OperationResult::Push
        }))
    }

    fn pop(&self, qd: QDesc) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_pop();
        {
            let inner = self.inner.borrow();
            if !inner.queues.contains_key(&qd) {
                return Err(DemiError::BadQDesc);
            }
        }
        let core = self.core();
        Ok(self.runtime.spawn_op("catfs::pop", async move {
            loop {
                let (log, cursor) = {
                    let inner = core.inner.borrow();
                    let Some(open) = inner.queues.get(&qd) else {
                        return OperationResult::Failed(DemiError::BadQDesc);
                    };
                    (open.log.clone(), open.cursor)
                };
                let wait = log.borrow().appended.notified();
                let available = log.borrow().len - cursor;
                if available < RECORD_HEADER as u64 {
                    // Tail of the log: park until a push appends more.
                    wait.await;
                    continue;
                }
                let header = core.read_bytes(&log, cursor, RECORD_HEADER).await;
                if u16::from_be_bytes([header[0], header[1]]) != RECORD_MAGIC {
                    return OperationResult::Failed(DemiError::Storage("bad record magic"));
                }
                let len = u32::from_be_bytes([header[2], header[3], header[4], header[5]]) as u64;
                let expect_sum = u32::from_be_bytes([header[6], header[7], header[8], header[9]]);
                if log.borrow().len - cursor < RECORD_HEADER as u64 + len {
                    // Header landed but the payload is still being pushed.
                    wait.await;
                    continue;
                }
                let payload = core
                    .read_bytes(&log, cursor + RECORD_HEADER as u64, len as usize)
                    .await;
                if checksum(&payload) != expect_sum {
                    core.inner.borrow_mut().stats.checksum_failures += 1;
                    return OperationResult::Failed(DemiError::Storage("record checksum"));
                }
                {
                    let mut inner = core.inner.borrow_mut();
                    if let Some(open) = inner.queues.get_mut(&qd) {
                        open.cursor = cursor + RECORD_HEADER as u64 + len;
                    }
                    inner.stats.records_read += 1;
                }
                return OperationResult::Pop {
                    from: None,
                    sga: Sga::from_slice(&payload),
                };
            }
        }))
    }
}

#[cfg(test)]
mod tests;
