//! `catnap`: the POSIX/kernel baseline behind the Demikernel interface.
//!
//! Same system-call surface as every other libOS, but every data-path
//! operation goes through the simulated kernel ([`posix_sim`]): metered
//! syscall crossings, real user↔kernel copies, stream reads. This is the
//! "traditional architecture" column of the paper's Fig. 1, packaged so
//! experiments can swap it in without touching application code.
//!
//! Message boundaries: UDP maps naturally; TCP uses the same
//! length-prefix framing as catnip, reassembled from copied stream reads
//! (the copies are the point — they are what E2 measures).

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use dpdk_sim::{DpdkPort, PortConfig};
use net_stack::framing::{encode_header, FrameDecoder};
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, StackConfig};
use posix_sim::{CostModel, Fd, KernelSockets, KernelStats, SimKernel};
use sim_fabric::{Fabric, MacAddress};

use crate::libos::{LibOs, LibOsKind, SocketKind};
use crate::runtime::Runtime;
use crate::types::{DemiError, OperationResult, QDesc, QToken, Sga};

enum CatnapQueue {
    Udp {
        fd: Fd,
    },
    UdpUnbound,
    TcpUnbound {
        bound: Option<SocketAddr>,
    },
    TcpListener {
        fd: Fd,
    },
    TcpConn {
        fd: Fd,
        decoder: Rc<RefCell<FrameDecoder>>,
    },
}

struct Inner {
    queues: HashMap<QDesc, CatnapQueue>,
    next_qd: u32,
}

/// The kernel-path baseline libOS.
#[derive(Clone)]
pub struct Catnap {
    runtime: Runtime,
    sockets: Rc<RefCell<KernelSockets>>,
    kernel: SimKernel,
    inner: Rc<RefCell<Inner>>,
}

impl Catnap {
    /// Creates a catnap instance: a host whose NIC is driven by the
    /// simulated kernel rather than by the application.
    pub fn new(runtime: &Runtime, fabric: &Fabric, mac: MacAddress, ip: Ipv4Addr) -> Self {
        Self::with_cost_model(runtime, fabric, mac, ip, CostModel::default())
    }

    /// Creates a catnap instance with an explicit kernel cost model
    /// (ablations isolate crossing costs from copy costs).
    pub fn with_cost_model(
        runtime: &Runtime,
        fabric: &Fabric,
        mac: MacAddress,
        ip: Ipv4Addr,
        cost: CostModel,
    ) -> Self {
        let port = DpdkPort::new(fabric, PortConfig::basic(mac));
        let stack = NetworkStack::new(port, fabric.clock(), StackConfig::new(ip));
        let kernel = SimKernel::new(fabric.clock(), cost);
        let sockets = Rc::new(RefCell::new(KernelSockets::new(kernel.clone(), stack)));
        // "Kernel context" work (softirq): runs on every pass, like the
        // kernel servicing the NIC — not charged as a syscall.
        let poll_sockets = sockets.clone();
        runtime.register_poller(move || poll_sockets.borrow_mut().poll());
        // All four blocking loops below (accept/connect/udp_pop/tcp_pop)
        // wait on kernel-stack progress, which the poller reports; they
        // park on the runtime's activity gate between checks.
        let deadline_sockets = sockets.clone();
        runtime.register_deadline_source(move || deadline_sockets.borrow().next_deadline());
        Catnap {
            runtime: runtime.clone(),
            sockets,
            kernel,
            inner: Rc::new(RefCell::new(Inner {
                queues: HashMap::new(),
                next_qd: 1,
            })),
        }
    }

    fn alloc_qd(&self, q: CatnapQueue) -> QDesc {
        let mut inner = self.inner.borrow_mut();
        let qd = QDesc(inner.next_qd);
        inner.next_qd += 1;
        inner.queues.insert(qd, q);
        qd
    }

    /// The metered kernel (exact crossing/copy counts for experiments).
    pub fn sim_kernel(&self) -> &SimKernel {
        &self.kernel
    }
}

impl LibOs for Catnap {
    fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    fn kind(&self) -> LibOsKind {
        LibOsKind::Catnap
    }

    fn kernel_stats(&self) -> Option<KernelStats> {
        Some(self.kernel.stats())
    }

    fn socket(&self, kind: SocketKind) -> Result<QDesc, DemiError> {
        Ok(match kind {
            SocketKind::Udp => self.alloc_qd(CatnapQueue::UdpUnbound),
            SocketKind::Tcp => self.alloc_qd(CatnapQueue::TcpUnbound { bound: None }),
        })
    }

    fn bind(&self, qd: QDesc, addr: SocketAddr) -> Result<(), DemiError> {
        let mut inner = self.inner.borrow_mut();
        match inner.queues.get_mut(&qd) {
            Some(q @ CatnapQueue::UdpUnbound) => {
                let fd = self
                    .sockets
                    .borrow_mut()
                    .udp_socket(addr.port)
                    .map_err(sock_err)?;
                *q = CatnapQueue::Udp { fd };
                Ok(())
            }
            Some(CatnapQueue::TcpUnbound { bound }) => {
                *bound = Some(addr);
                Ok(())
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn listen(&self, qd: QDesc, backlog: usize) -> Result<(), DemiError> {
        let mut inner = self.inner.borrow_mut();
        match inner.queues.get_mut(&qd) {
            Some(q @ CatnapQueue::TcpUnbound { .. }) => {
                let CatnapQueue::TcpUnbound { bound } = q else {
                    unreachable!("matched above");
                };
                let addr = bound.ok_or(DemiError::InvalidState)?;
                let mut sockets = self.sockets.borrow_mut();
                let fd = sockets.tcp_socket();
                sockets.listen(fd, addr.port, backlog).map_err(sock_err)?;
                *q = CatnapQueue::TcpListener { fd };
                Ok(())
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn accept(&self, qd: QDesc) -> Result<QToken, DemiError> {
        let fd = {
            let inner = self.inner.borrow();
            match inner.queues.get(&qd) {
                Some(CatnapQueue::TcpListener { fd }) => *fd,
                Some(_) => return Err(DemiError::InvalidState),
                None => return Err(DemiError::BadQDesc),
            }
        };
        // Capture only cycle-free pieces (`sockets`/`inner` are their own
        // Rc's; `activity` is independent of the runtime): a coroutine
        // holding a `Runtime` clone would form an Rc cycle (runtime ->
        // scheduler -> task future -> runtime) and leak the world.
        let sockets = self.sockets.clone();
        let inner = self.inner.clone();
        let activity = self.runtime.activity().clone();
        Ok(self.runtime.spawn_op("catnap::accept", async move {
            loop {
                let wait = activity.notified();
                let accepted = sockets.borrow_mut().accept(fd);
                match accepted {
                    Ok(Some(conn_fd)) => {
                        let mut inner = inner.borrow_mut();
                        let qd = QDesc(inner.next_qd);
                        inner.next_qd += 1;
                        inner.queues.insert(
                            qd,
                            CatnapQueue::TcpConn {
                                fd: conn_fd,
                                decoder: Rc::new(RefCell::new(FrameDecoder::new())),
                            },
                        );
                        return OperationResult::Accept { qd };
                    }
                    Ok(None) => wait.await,
                    Err(e) => return OperationResult::Failed(sock_err(e)),
                }
            }
        }))
    }

    fn connect(&self, qd: QDesc, remote: SocketAddr) -> Result<QToken, DemiError> {
        let fd = {
            let mut inner = self.inner.borrow_mut();
            match inner.queues.get(&qd) {
                Some(CatnapQueue::TcpUnbound { .. }) => {
                    let mut sockets = self.sockets.borrow_mut();
                    let fd = sockets.tcp_socket();
                    sockets.connect(fd, remote).map_err(sock_err)?;
                    inner.queues.insert(
                        qd,
                        CatnapQueue::TcpConn {
                            fd,
                            decoder: Rc::new(RefCell::new(FrameDecoder::new())),
                        },
                    );
                    fd
                }
                Some(_) => return Err(DemiError::InvalidState),
                None => return Err(DemiError::BadQDesc),
            }
        };
        let sockets = self.sockets.clone();
        let activity = self.runtime.activity().clone();
        Ok(self.runtime.spawn_op("catnap::connect", async move {
            loop {
                let wait = activity.notified();
                // Bind borrow results before matching: a borrow held in a
                // match scrutinee would live across the await below.
                let so_error = sockets.borrow().so_error(fd);
                if let Some(err) = so_error {
                    return OperationResult::Failed(DemiError::Net(err));
                }
                let connected = sockets.borrow().is_connected(fd);
                match connected {
                    Ok(true) => return OperationResult::Connect,
                    Ok(false) => wait.await,
                    Err(e) => return OperationResult::Failed(sock_err(e)),
                }
            }
        }))
    }

    fn close(&self, qd: QDesc) -> Result<(), DemiError> {
        let mut inner = self.inner.borrow_mut();
        match inner.queues.remove(&qd) {
            Some(CatnapQueue::Udp { fd })
            | Some(CatnapQueue::TcpListener { fd })
            | Some(CatnapQueue::TcpConn { fd, .. }) => {
                self.sockets.borrow_mut().close(fd).map_err(sock_err)
            }
            Some(_) => Ok(()),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn push(&self, qd: QDesc, sga: &Sga) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_push();
        let inner = self.inner.borrow();
        match inner.queues.get(&qd) {
            Some(CatnapQueue::TcpConn { fd, .. }) => {
                let fd = *fd;
                drop(inner);
                // POSIX write of the framed message: header + flattened
                // payload, each write copying into the kernel.
                let mut sockets = self.sockets.borrow_mut();
                sockets
                    .write(fd, &encode_header(sga.len()))
                    .map_err(sock_err)?;
                let flat = sga.to_vec();
                sockets.write(fd, &flat).map_err(sock_err)?;
                Ok(self
                    .runtime
                    .spawn_op("catnap::push", async { OperationResult::Push }))
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn pushto(&self, qd: QDesc, sga: &Sga, to: SocketAddr) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_push();
        let inner = self.inner.borrow();
        match inner.queues.get(&qd) {
            Some(CatnapQueue::Udp { fd }) => {
                let fd = *fd;
                drop(inner);
                let flat = sga.to_vec();
                self.sockets
                    .borrow_mut()
                    .sendto(fd, to, &flat)
                    .map_err(sock_err)?;
                Ok(self
                    .runtime
                    .spawn_op("catnap::pushto", async { OperationResult::Push }))
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn pop(&self, qd: QDesc) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_pop();
        let inner = self.inner.borrow();
        match inner.queues.get(&qd) {
            Some(CatnapQueue::Udp { fd }) => {
                let fd = *fd;
                let sockets = self.sockets.clone();
                let activity = self.runtime.activity().clone();
                drop(inner);
                Ok(self.runtime.spawn_op("catnap::udp_pop", async move {
                    // POSIX forces a user buffer the kernel copies into.
                    let mut buf = vec![0u8; 65_536];
                    loop {
                        let wait = activity.notified();
                        let got = sockets.borrow_mut().recvfrom(fd, &mut buf);
                        match got {
                            Ok(Some((from, n))) => {
                                return OperationResult::Pop {
                                    from: Some(from),
                                    sga: Sga::from_slice(&buf[..n]),
                                };
                            }
                            Ok(None) => wait.await,
                            Err(e) => return OperationResult::Failed(sock_err(e)),
                        }
                    }
                }))
            }
            Some(CatnapQueue::TcpConn { fd, decoder }) => {
                let fd = *fd;
                let decoder = decoder.clone();
                let sockets = self.sockets.clone();
                let activity = self.runtime.activity().clone();
                drop(inner);
                Ok(self.runtime.spawn_op("catnap::tcp_pop", async move {
                    let mut buf = vec![0u8; 16_384];
                    loop {
                        let wait = activity.notified();
                        // Stream read into a user buffer (copy), then
                        // reassemble the atomic unit from the bytes.
                        let got = sockets.borrow_mut().read(fd, &mut buf);
                        let read_bytes = match got {
                            Ok(Some(0)) => {
                                return OperationResult::Failed(DemiError::Closed);
                            }
                            Ok(Some(n)) => {
                                decoder
                                    .borrow_mut()
                                    .push_chunk(demi_memory::DemiBuffer::from_slice(&buf[..n]));
                                true
                            }
                            Ok(None) => false,
                            Err(e) => return OperationResult::Failed(sock_err(e)),
                        };
                        // Bind before matching: a RefCell borrow in the
                        // scrutinee would be held across the await below.
                        let next = decoder.borrow_mut().next_message();
                        match next {
                            Ok(Some(msg)) => {
                                return OperationResult::Pop {
                                    from: None,
                                    sga: Sga::from_bufs(vec![msg]),
                                };
                            }
                            // Park only when the read came up empty: a
                            // productive read means more bytes may already
                            // be buffered in the kernel socket.
                            Ok(None) if !read_bytes => wait.await,
                            Ok(None) => {}
                            Err(e) => return OperationResult::Failed(e.into()),
                        }
                    }
                }))
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }
}

fn sock_err(e: posix_sim::SockError) -> DemiError {
    match e {
        posix_sim::SockError::BadFd => DemiError::BadQDesc,
        posix_sim::SockError::Net(n) => DemiError::Net(n),
    }
}

#[cfg(test)]
mod tests;
