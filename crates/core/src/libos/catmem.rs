//! `catmem`: the in-memory queue libOS.
//!
//! The simplest libOS — no device at all. Its queues are the substrate for
//! the queue-transformation layer's tests and for same-host pipes. It also
//! demonstrates the purest form of the abstraction: `queue()` from the
//! paper's control-path table, plus `push`/`pop` with atomic elements and
//! zero-copy handoff (an Sga pushed is the same storage popped).

use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::rc::Rc;

use demi_sched::{AsyncQueue, Notify};

use crate::libos::{LibOs, LibOsKind};
use crate::runtime::Runtime;
use crate::types::{DemiError, OperationResult, QDesc, QToken, Sga};

struct CatmemQueue {
    items: AsyncQueue<Sga>,
    closed: Cell<bool>,
    /// Fires on push and close, waking pops parked on an empty queue.
    events: Notify,
}

struct Inner {
    queues: HashMap<QDesc, Rc<CatmemQueue>>,
    next_qd: u32,
}

/// The in-memory libOS.
#[derive(Clone)]
pub struct Catmem {
    runtime: Runtime,
    inner: Rc<RefCell<Inner>>,
}

impl Catmem {
    /// Creates a catmem instance on a shared runtime.
    pub fn new(runtime: &Runtime) -> Self {
        Catmem {
            runtime: runtime.clone(),
            inner: Rc::new(RefCell::new(Inner {
                queues: HashMap::new(),
                next_qd: 1,
            })),
        }
    }

    fn get(&self, qd: QDesc) -> Result<Rc<CatmemQueue>, DemiError> {
        self.inner
            .borrow()
            .queues
            .get(&qd)
            .cloned()
            .ok_or(DemiError::BadQDesc)
    }

    /// Items currently queued (diagnostics).
    pub fn depth(&self, qd: QDesc) -> Result<usize, DemiError> {
        Ok(self.get(qd)?.items.len())
    }
}

impl LibOs for Catmem {
    fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    fn kind(&self) -> LibOsKind {
        LibOsKind::Catmem
    }

    fn queue(&self) -> Result<QDesc, DemiError> {
        let mut inner = self.inner.borrow_mut();
        let qd = QDesc(inner.next_qd);
        inner.next_qd += 1;
        inner.queues.insert(
            qd,
            Rc::new(CatmemQueue {
                items: AsyncQueue::new(),
                closed: Cell::new(false),
                events: Notify::new(),
            }),
        );
        Ok(qd)
    }

    fn close(&self, qd: QDesc) -> Result<(), DemiError> {
        let queue = self.get(qd)?;
        queue.closed.set(true);
        // Pending pops must observe the close and fail promptly.
        queue.events.notify_waiters();
        Ok(())
    }

    fn push(&self, qd: QDesc, sga: &Sga) -> Result<QToken, DemiError> {
        let queue = self.get(qd)?;
        if queue.closed.get() {
            return Err(DemiError::Closed);
        }
        self.runtime.metrics().count_push();
        let sga = sga.clone(); // Handle clone: zero-copy.
        Ok(self.runtime.spawn_op("catmem::push", async move {
            queue.items.push(sga);
            queue.events.notify_waiters();
            OperationResult::Push
        }))
    }

    fn pop(&self, qd: QDesc) -> Result<QToken, DemiError> {
        let queue = self.get(qd)?;
        self.runtime.metrics().count_pop();
        Ok(self.runtime.spawn_op("catmem::pop", async move {
            loop {
                // Snapshot before checking so a push/close landing between
                // the check and the park is not lost.
                let wait = queue.events.notified();
                if let Some(sga) = queue.items.try_pop() {
                    return OperationResult::Pop { from: None, sga };
                }
                if queue.closed.get() {
                    return OperationResult::Failed(DemiError::Closed);
                }
                wait.await;
            }
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use demi_memory::DemiBuffer;

    fn setup() -> (Runtime, Catmem) {
        let rt = Runtime::new();
        let libos = Catmem::new(&rt);
        (rt, libos)
    }

    #[test]
    fn push_then_pop_returns_the_atomic_element() {
        let (_rt, libos) = setup();
        let qd = libos.queue().unwrap();
        let sga = Sga::from_slice(b"atomic");
        let qt = libos.push(qd, &sga).unwrap();
        assert!(matches!(
            libos.wait(qt, None).unwrap(),
            OperationResult::Push
        ));
        let (_, popped) = libos.blocking_pop(qd).unwrap().expect_pop();
        assert_eq!(popped, sga);
    }

    #[test]
    fn pop_blocks_until_push_arrives() {
        let (_rt, libos) = setup();
        let qd = libos.queue().unwrap();
        let pop_qt = libos.pop(qd).unwrap();
        let push_qt = libos.push(qd, &Sga::from_slice(b"late")).unwrap();
        let (idx, result) = libos.wait_any(&[pop_qt, push_qt], None).unwrap();
        // Either may resolve first, but the pop must carry the data.
        let pop_result = if idx == 0 {
            result
        } else {
            libos.wait(pop_qt, None).unwrap()
        };
        let (_, sga) = pop_result.expect_pop();
        assert_eq!(sga.to_vec(), b"late");
    }

    #[test]
    fn scatter_gather_pops_as_one_element_zero_copy() {
        let (_rt, libos) = setup();
        let qd = libos.queue().unwrap();
        let seg = DemiBuffer::from_slice(b"shared-storage");
        let sga = Sga::from_bufs(vec![seg.clone(), DemiBuffer::from_slice(b"tail")]);
        libos.blocking_push(qd, &sga).unwrap();
        let (_, popped) = libos.blocking_pop(qd).unwrap().expect_pop();
        assert_eq!(popped.seg_count(), 2, "sga boundaries preserved");
        assert!(
            popped.segments()[0].same_storage(&seg),
            "popped element shares the pushed storage (zero copy)"
        );
    }

    #[test]
    fn fifo_order_across_many_elements() {
        let (_rt, libos) = setup();
        let qd = libos.queue().unwrap();
        for i in 0..100u32 {
            libos
                .blocking_push(qd, &Sga::from_slice(&i.to_be_bytes()))
                .unwrap();
        }
        for i in 0..100u32 {
            let (_, sga) = libos.blocking_pop(qd).unwrap().expect_pop();
            assert_eq!(sga.to_vec(), i.to_be_bytes());
        }
    }

    #[test]
    fn closed_queue_rejects_push_and_fails_pending_pop() {
        let (_rt, libos) = setup();
        let qd = libos.queue().unwrap();
        let pop_qt = libos.pop(qd).unwrap();
        libos.close(qd).unwrap();
        assert_eq!(
            libos.push(qd, &Sga::from_slice(b"x")),
            Err(DemiError::Closed)
        );
        let result = libos.wait(pop_qt, None).unwrap();
        assert!(matches!(result, OperationResult::Failed(DemiError::Closed)));
    }

    #[test]
    fn bad_qdesc_is_rejected() {
        let (_rt, libos) = setup();
        assert_eq!(libos.pop(QDesc(99)), Err(DemiError::BadQDesc));
        assert_eq!(
            libos.push(QDesc(99), &Sga::from_slice(b"x")),
            Err(DemiError::BadQDesc)
        );
    }

    #[test]
    fn unsupported_calls_report_not_supported() {
        let (_rt, libos) = setup();
        assert!(matches!(
            libos.socket(crate::libos::SocketKind::Udp),
            Err(DemiError::NotSupported(_))
        ));
        assert!(matches!(libos.open("x"), Err(DemiError::NotSupported(_))));
    }

    #[test]
    fn two_queues_are_independent() {
        let (_rt, libos) = setup();
        let q1 = libos.queue().unwrap();
        let q2 = libos.queue().unwrap();
        libos.blocking_push(q1, &Sga::from_slice(b"one")).unwrap();
        libos.blocking_push(q2, &Sga::from_slice(b"two")).unwrap();
        let (_, a) = libos.blocking_pop(q2).unwrap().expect_pop();
        assert_eq!(a.to_vec(), b"two");
        let (_, b) = libos.blocking_pop(q1).unwrap().expect_pop();
        assert_eq!(b.to_vec(), b"one");
    }

    #[test]
    fn metrics_count_pushes_and_pops() {
        let (rt, libos) = setup();
        let qd = libos.queue().unwrap();
        libos.blocking_push(qd, &Sga::from_slice(b"x")).unwrap();
        libos.blocking_pop(qd).unwrap();
        let m = rt.metrics().snapshot();
        assert_eq!(m.pushes, 1);
        assert_eq!(m.pops, 1);
        assert_eq!(m.data_path_syscalls, 0);
    }
}
