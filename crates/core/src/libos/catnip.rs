//! `catnip`: the DPDK-class library OS.
//!
//! The device gives this libOS nothing but raw frames (paper Table 1,
//! left column), so catnip supplies everything the kernel used to: the
//! full [`net_stack`] (ARP/IPv4/UDP/TCP), buffer management from
//! device-registered pools, and framing that preserves atomic data units
//! over TCP's byte stream (§5.2). UDP queues map 1:1 onto datagrams; TCP
//! queues carry length-prefixed messages so a pushed Sga pops as one
//! element on the other side.
//!
//! Zero-copy: received payloads are [`demi_memory::DemiBuffer`] views into
//! the device's mbufs; pushed buffers are handle-cloned into the stack
//! (free-protection keeps them alive until the device is done).
//!
//! Offload: on a SmartNIC-configured port,
//! [`LibOs::try_offload_filter`] compiles an Sga predicate into a
//! device-side frame filter for the queue's UDP port (experiment E6).

use std::cell::RefCell;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::rc::Rc;

use demi_memory::{DemiBuffer, MemoryManager};
use dpdk_sim::{DpdkPort, NicProgram, PortConfig};
use net_stack::framing::{encode_header, FrameDecoder};
use net_stack::tcp::{ConnId, ListenerId, State};
use net_stack::types::{NetError, SocketAddr};
use net_stack::{NetworkStack, StackConfig};
use sim_fabric::{DeviceCaps, Fabric, MacAddress};

use crate::libos::{LibOs, LibOsKind, SocketKind};
use crate::runtime::Runtime;
use crate::types::{DemiError, OperationResult, QDesc, QToken, Sga};

enum CatnipQueue {
    UdpUnbound,
    Udp {
        port: u16,
        remote: Option<SocketAddr>,
    },
    TcpUnbound {
        bound: Option<SocketAddr>,
    },
    TcpListener {
        listener: ListenerId,
    },
    TcpConn {
        conn: ConnId,
        decoder: Rc<RefCell<FrameDecoder>>,
    },
}

struct Inner {
    queues: HashMap<QDesc, CatnipQueue>,
    next_qd: u32,
}

/// The DPDK-class libOS.
#[derive(Clone)]
pub struct Catnip {
    runtime: Runtime,
    stack: Rc<NetworkStack>,
    port: DpdkPort,
    memory: MemoryManager,
    inner: Rc<RefCell<Inner>>,
}

impl Catnip {
    /// Creates a catnip instance on a plain (non-programmable) port.
    pub fn new(runtime: &Runtime, fabric: &Fabric, mac: MacAddress, ip: Ipv4Addr) -> Self {
        Self::with_port_config(runtime, fabric, PortConfig::basic(mac), ip)
    }

    /// Creates a catnip instance with an explicit port configuration
    /// (e.g., SmartNIC program slots for offload experiments).
    pub fn with_port_config(
        runtime: &Runtime,
        fabric: &Fabric,
        port_config: PortConfig,
        ip: Ipv4Addr,
    ) -> Self {
        Self::with_stack_config(runtime, fabric, port_config, StackConfig::new(ip))
    }

    /// Creates a catnip instance with explicit stack tunables — the
    /// batching experiments (E13) build unbatched baselines by turning
    /// `tx_coalesce`/`delayed_acks` off.
    pub fn with_stack_config(
        runtime: &Runtime,
        fabric: &Fabric,
        port_config: PortConfig,
        config: StackConfig,
    ) -> Self {
        Self::with_shared_ports(
            runtime,
            fabric,
            port_config,
            config,
            std::sync::Arc::new(net_stack::PortAllocator::new()),
        )
    }

    /// Creates a catnip instance whose TCP port namespace is `ports` —
    /// shared across the shard worlds of one logical host under
    /// thread-per-shard execution, so an ephemeral port allocated in one
    /// world is never reissued in another.
    pub fn with_shared_ports(
        runtime: &Runtime,
        fabric: &Fabric,
        port_config: PortConfig,
        config: StackConfig,
        ports: std::sync::Arc<net_stack::PortAllocator>,
    ) -> Self {
        let port = DpdkPort::new(fabric, port_config);
        let stack = Rc::new(NetworkStack::with_ports(
            port.clone(),
            fabric.clock(),
            config,
            ports,
        ));
        // The libOS polls its device on every scheduler pass — one poller
        // per stack shard, so each shard's RX queue, timers, and TX ring
        // advance as an independently-reported unit of work. It also
        // exposes its protocol timers for clock advancement.
        for shard in 0..stack.num_shards() {
            let poll_stack = stack.clone();
            runtime.register_poller(move || poll_stack.poll_shard(shard));
        }
        // Stack progress (frames in/out) is reported by that poller, so
        // every blocking loop below parks on the runtime's activity gate
        // rather than re-polling the stack each pass.
        let deadline_stack = stack.clone();
        runtime.register_deadline_source(move || deadline_stack.next_deadline());
        Catnip {
            runtime: runtime.clone(),
            stack,
            port,
            memory: MemoryManager::warmed(),
            inner: Rc::new(RefCell::new(Inner {
                queues: HashMap::new(),
                next_qd: 1,
            })),
        }
    }

    /// This host's IP address.
    pub fn local_ip(&self) -> Ipv4Addr {
        self.stack.local_ip()
    }

    /// The underlying stack (experiment instrumentation).
    pub fn stack(&self) -> &NetworkStack {
        &self.stack
    }

    /// The underlying device port (experiment instrumentation).
    pub fn port(&self) -> &DpdkPort {
        &self.port
    }

    /// The libOS memory manager (registration accounting, E5).
    pub fn memory(&self) -> &MemoryManager {
        &self.memory
    }

    fn alloc_qd(&self, q: CatnipQueue) -> QDesc {
        let mut inner = self.inner.borrow_mut();
        let qd = QDesc(inner.next_qd);
        inner.next_qd += 1;
        inner.queues.insert(qd, q);
        qd
    }

    /// Flattens an Sga into one contiguous datagram payload. Single-seg
    /// arrays pass through zero-copy (the same buffer handle travels down
    /// the stack); multi-seg arrays gather into a pool buffer with header
    /// headroom (counted).
    fn gather(&self, sga: &Sga) -> DemiBuffer {
        if sga.seg_count() == 1 {
            return sga.segments()[0].clone();
        }
        self.runtime.metrics().count_copy(sga.len());
        let mut buf = self.memory.alloc(sga.len());
        let dst = buf.try_mut().expect("fresh buffer");
        let mut off = 0;
        for seg in sga.segments() {
            dst[off..off + seg.len()].copy_from_slice(seg.as_slice());
            off += seg.len();
        }
        buf
    }

    /// Builds the 8-byte stream framing header in a pool buffer with
    /// header headroom, so the stack can wrap it without reallocating.
    fn framing_header(&self, payload_len: usize) -> DemiBuffer {
        let mut buf = self.memory.alloc(net_stack::framing::FRAME_HEADER_LEN);
        buf.try_mut()
            .expect("fresh buffer")
            .copy_from_slice(&encode_header(payload_len));
        buf
    }

    // ------------------------------------------------------------------
    // Device offload programs (E17). The stack is the planner; these are
    // the application-facing install/uninstall doorbells. All of them
    // are safe no-ops-with-signal on a non-programmable port, so an app
    // can run unchanged on plain DPDK and SmartNIC configurations.
    // ------------------------------------------------------------------

    /// Installs a NIC-side echo short-circuit for TCP connections on
    /// local `port`: the device reflects complete framed messages
    /// without an RX→host→TX crossing.
    pub fn install_echo_offload(&self, port: u16) -> Result<(), DemiError> {
        self.runtime.metrics().count_control_path_syscall();
        Ok(self.stack.install_echo_offload(port)?)
    }

    /// Installs a NIC-resident KV GET cache (bounded to `capacity_bytes`
    /// of device memory) for TCP connections on local `port`.
    pub fn install_kv_offload(&self, port: u16, capacity_bytes: usize) -> Result<(), DemiError> {
        self.runtime.metrics().count_control_path_syscall();
        Ok(self.stack.install_kv_offload(port, capacity_bytes)?)
    }

    /// Uninstalls the TCP offload program, returning every flow to the
    /// pure host path mid-stream. Idempotent.
    pub fn uninstall_tcp_offload(&self) {
        self.runtime.metrics().count_control_path_syscall();
        self.stack.uninstall_tcp_offload();
    }

    /// Write-through populate of the device KV cache after the host
    /// served a GET miss. `false` (no KV offload installed, or the entry
    /// exceeds device memory) needs no handling — the host simply keeps
    /// serving that key.
    pub fn offload_cache_insert(&self, key: &[u8], value: &[u8]) -> bool {
        self.stack.offload_cache_insert(key, value)
    }

    /// Counters of the installed offload engine, if any.
    pub fn offload_stats(&self) -> Option<dpdk_sim::OffloadStats> {
        self.stack.offload_stats()
    }

    /// Host-driven invalidation of one device KV cache entry — required
    /// when the host store drops a key for reasons invisible on the byte
    /// stream (LRU eviction, TTL expiry). `false` (no KV offload, or key
    /// not cached) needs no handling.
    pub fn offload_cache_invalidate(&self, key: &[u8]) -> bool {
        self.stack.offload_cache_invalidate(key)
    }

    // ------------------------------------------------------------------
    // Raw-stream TCP I/O. The framed push/pop above preserve atomic data
    // units for Demikernel-native peers; protocol servers (demi-kv's
    // RESP) speak self-delimiting wire formats and need the bare byte
    // stream instead.
    // ------------------------------------------------------------------

    /// Pushes `sga` onto a TCP connection **without** the 8-byte DEMI
    /// framing header: each segment travels down the stack zero-copy as
    /// raw stream bytes. For self-delimiting protocols (RESP).
    pub fn push_unframed(&self, qd: QDesc, sga: &Sga) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_push();
        let inner = self.inner.borrow();
        match inner.queues.get(&qd) {
            Some(CatnipQueue::TcpConn { conn, .. }) => {
                let conn = *conn;
                drop(inner);
                for seg in sga.segments() {
                    self.stack.tcp_send(conn, seg.clone())?;
                }
                Ok(self
                    .runtime
                    .spawn_op("catnip::tcp_push_unframed", async { OperationResult::Push }))
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    /// Pops whatever stream bytes have arrived on a TCP connection — one
    /// zero-copy chunk per completion, no message framing. Blocks until
    /// at least one byte is available; fails `Closed` at clean EOF.
    pub fn pop_unframed(&self, qd: QDesc) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_pop();
        let inner = self.inner.borrow();
        match inner.queues.get(&qd) {
            Some(CatnipQueue::TcpConn { conn, .. }) => {
                let conn = *conn;
                let stack = self.stack.clone();
                let activity = self.runtime.activity().clone();
                drop(inner);
                Ok(self
                    .runtime
                    .spawn_op("catnip::tcp_pop_unframed", async move {
                        loop {
                            let wait = activity.notified();
                            match stack.tcp_recv(conn) {
                                Ok(Some(chunk)) => {
                                    return OperationResult::Pop {
                                        from: None,
                                        sga: Sga::from_bufs(vec![chunk]),
                                    };
                                }
                                Ok(None) => {}
                                Err(e) => return OperationResult::Failed(e.into()),
                            }
                            if stack.tcp_eof(conn) {
                                return OperationResult::Failed(DemiError::Closed);
                            }
                            wait.await;
                        }
                    }))
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }
}

impl LibOs for Catnip {
    fn runtime(&self) -> &Runtime {
        &self.runtime
    }

    fn kind(&self) -> LibOsKind {
        LibOsKind::Catnip
    }

    fn device_caps(&self) -> Option<DeviceCaps> {
        Some(self.port.capabilities())
    }

    fn socket(&self, kind: SocketKind) -> Result<QDesc, DemiError> {
        self.runtime.metrics().count_control_path_syscall();
        Ok(match kind {
            SocketKind::Udp => self.alloc_qd(CatnipQueue::UdpUnbound),
            SocketKind::Tcp => self.alloc_qd(CatnipQueue::TcpUnbound { bound: None }),
        })
    }

    fn bind(&self, qd: QDesc, addr: SocketAddr) -> Result<(), DemiError> {
        self.runtime.metrics().count_control_path_syscall();
        let mut inner = self.inner.borrow_mut();
        match inner.queues.get_mut(&qd) {
            Some(q @ CatnipQueue::UdpUnbound) => {
                self.stack.udp_bind(addr.port)?;
                *q = CatnipQueue::Udp {
                    port: addr.port,
                    remote: None,
                };
                Ok(())
            }
            Some(CatnipQueue::TcpUnbound { bound }) => {
                *bound = Some(addr);
                Ok(())
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn listen(&self, qd: QDesc, backlog: usize) -> Result<(), DemiError> {
        self.runtime.metrics().count_control_path_syscall();
        let mut inner = self.inner.borrow_mut();
        match inner.queues.get_mut(&qd) {
            Some(q @ CatnipQueue::TcpUnbound { .. }) => {
                let CatnipQueue::TcpUnbound { bound } = q else {
                    unreachable!("matched above");
                };
                let addr = bound.ok_or(DemiError::InvalidState)?;
                let listener = self.stack.tcp_listen(addr.port, backlog)?;
                *q = CatnipQueue::TcpListener { listener };
                Ok(())
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn accept(&self, qd: QDesc) -> Result<QToken, DemiError> {
        let listener = {
            let inner = self.inner.borrow();
            match inner.queues.get(&qd) {
                Some(CatnipQueue::TcpListener { listener }) => *listener,
                Some(_) => return Err(DemiError::InvalidState),
                None => return Err(DemiError::BadQDesc),
            }
        };
        let stack = self.stack.clone();
        let inner = self.inner.clone();
        let activity = self.runtime.activity().clone();
        Ok(self.runtime.spawn_op("catnip::accept", async move {
            loop {
                let wait = activity.notified();
                match stack.tcp_accept(listener) {
                    Ok(Some(conn)) => {
                        let mut inner = inner.borrow_mut();
                        let qd = QDesc(inner.next_qd);
                        inner.next_qd += 1;
                        inner.queues.insert(
                            qd,
                            CatnipQueue::TcpConn {
                                conn,
                                decoder: Rc::new(RefCell::new(FrameDecoder::new())),
                            },
                        );
                        return OperationResult::Accept { qd };
                    }
                    Ok(None) => wait.await,
                    Err(e) => return OperationResult::Failed(e.into()),
                }
            }
        }))
    }

    fn connect(&self, qd: QDesc, remote: SocketAddr) -> Result<QToken, DemiError> {
        let mut inner = self.inner.borrow_mut();
        match inner.queues.get_mut(&qd) {
            // UDP connect: record the default destination.
            Some(q @ CatnipQueue::UdpUnbound) => {
                let port = self.stack.udp_bind_ephemeral()?;
                *q = CatnipQueue::Udp {
                    port,
                    remote: Some(remote),
                };
                drop(inner);
                Ok(self
                    .runtime
                    .spawn_op("catnip::udp_connect", async { OperationResult::Connect }))
            }
            Some(CatnipQueue::Udp { remote: r, .. }) => {
                *r = Some(remote);
                drop(inner);
                Ok(self
                    .runtime
                    .spawn_op("catnip::udp_connect", async { OperationResult::Connect }))
            }
            // TCP connect: initiate and watch the handshake.
            Some(CatnipQueue::TcpUnbound { .. }) => {
                let conn = self.stack.tcp_connect(remote)?;
                inner.queues.insert(
                    qd,
                    CatnipQueue::TcpConn {
                        conn,
                        decoder: Rc::new(RefCell::new(FrameDecoder::new())),
                    },
                );
                drop(inner);
                let stack = self.stack.clone();
                let activity = self.runtime.activity().clone();
                Ok(self.runtime.spawn_op("catnip::tcp_connect", async move {
                    loop {
                        let wait = activity.notified();
                        match stack.tcp_state(conn) {
                            Ok(State::Established) => return OperationResult::Connect,
                            Ok(State::Closed) => {
                                let err = stack
                                    .tcp_error(conn)
                                    .map(DemiError::Net)
                                    .unwrap_or(DemiError::Closed);
                                return OperationResult::Failed(err);
                            }
                            Ok(_) => wait.await,
                            Err(e) => return OperationResult::Failed(e.into()),
                        }
                    }
                }))
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn close(&self, qd: QDesc) -> Result<(), DemiError> {
        self.runtime.metrics().count_control_path_syscall();
        let mut inner = self.inner.borrow_mut();
        match inner.queues.remove(&qd) {
            Some(CatnipQueue::Udp { port, .. }) => {
                self.stack.udp_close(port);
                Ok(())
            }
            Some(CatnipQueue::TcpConn { conn, .. }) => {
                self.stack.tcp_close(conn)?;
                Ok(())
            }
            Some(CatnipQueue::TcpListener { listener }) => {
                self.stack.tcp_close_listener(listener);
                Ok(())
            }
            Some(_) => Ok(()),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn push(&self, qd: QDesc, sga: &Sga) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_push();
        let inner = self.inner.borrow();
        match inner.queues.get(&qd) {
            Some(CatnipQueue::Udp { port, remote }) => {
                let remote = remote.ok_or(DemiError::InvalidState)?;
                let (port, payload) = (*port, self.gather(sga));
                drop(inner);
                self.stack.udp_sendto(port, remote, payload)?;
                Ok(self
                    .runtime
                    .spawn_op("catnip::udp_push", async { OperationResult::Push }))
            }
            Some(CatnipQueue::TcpConn { conn, .. }) => {
                let conn = *conn;
                drop(inner);
                // Framing header, then each segment zero-copy (the stack
                // holds buffer clones: free-protection in action).
                let header = self.framing_header(sga.len());
                self.stack.tcp_send(conn, header)?;
                for seg in sga.segments() {
                    self.stack.tcp_send(conn, seg.clone())?;
                }
                Ok(self
                    .runtime
                    .spawn_op("catnip::tcp_push", async { OperationResult::Push }))
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn pushto(&self, qd: QDesc, sga: &Sga, to: SocketAddr) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_push();
        let inner = self.inner.borrow();
        match inner.queues.get(&qd) {
            Some(CatnipQueue::Udp { port, .. }) => {
                let (port, payload) = (*port, self.gather(sga));
                drop(inner);
                self.stack.udp_sendto(port, to, payload)?;
                Ok(self
                    .runtime
                    .spawn_op("catnip::udp_pushto", async { OperationResult::Push }))
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn pop(&self, qd: QDesc) -> Result<QToken, DemiError> {
        self.runtime.metrics().count_pop();
        let inner = self.inner.borrow();
        match inner.queues.get(&qd) {
            Some(CatnipQueue::Udp { port, .. }) => {
                let port = *port;
                let stack = self.stack.clone();
                let activity = self.runtime.activity().clone();
                drop(inner);
                Ok(self.runtime.spawn_op("catnip::udp_pop", async move {
                    loop {
                        let wait = activity.notified();
                        if let Some((from, payload)) = stack.udp_recv_from(port) {
                            return OperationResult::Pop {
                                from: Some(from),
                                sga: Sga::from_bufs(vec![payload]),
                            };
                        }
                        wait.await;
                    }
                }))
            }
            Some(CatnipQueue::TcpConn { conn, decoder }) => {
                let conn = *conn;
                let decoder = decoder.clone();
                let stack = self.stack.clone();
                let activity = self.runtime.activity().clone();
                drop(inner);
                Ok(self.runtime.spawn_op("catnip::tcp_pop", async move {
                    loop {
                        let wait = activity.notified();
                        // Drain arrived stream chunks into the framer.
                        loop {
                            match stack.tcp_recv(conn) {
                                Ok(Some(chunk)) => decoder.borrow_mut().push_chunk(chunk),
                                Ok(None) => break,
                                Err(e) => return OperationResult::Failed(e.into()),
                            }
                        }
                        // Pop a complete atomic unit only (paper §4.2).
                        match decoder.borrow_mut().next_message() {
                            Ok(Some(msg)) => {
                                return OperationResult::Pop {
                                    from: None,
                                    sga: Sga::from_bufs(vec![msg]),
                                };
                            }
                            Ok(None) => {}
                            Err(e) => return OperationResult::Failed(e.into()),
                        }
                        if stack.tcp_eof(conn) && decoder.borrow().buffered_bytes() == 0 {
                            return OperationResult::Failed(DemiError::Closed);
                        }
                        wait.await;
                    }
                }))
            }
            Some(_) => Err(DemiError::InvalidState),
            None => Err(DemiError::BadQDesc),
        }
    }

    fn sgaalloc(&self, len: usize) -> Sga {
        Sga::from_bufs(vec![self.memory.alloc(len)])
    }

    fn try_offload_filter(&self, qd: QDesc, pred: Rc<dyn Fn(&Sga) -> bool>) -> bool {
        let inner = self.inner.borrow();
        let Some(CatnipQueue::Udp { port, .. }) = inner.queues.get(&qd) else {
            return false;
        };
        let udp_port = *port;
        drop(inner);
        // Compile the Sga predicate into a raw-frame program: non-UDP
        // traffic and other ports pass untouched; matching datagrams are
        // kept only if the predicate holds on their payload.
        let program = NicProgram::Filter {
            predicate: Rc::new(
                move |frame: &[u8]| match udp_payload_for_port(frame, udp_port) {
                    Some(payload) => pred(&Sga::from_slice(payload)),
                    None => true,
                },
            ),
            cycles_per_frame: 50,
        };
        self.port.install_program(program).is_ok()
    }
}

/// Extracts the UDP payload if `frame` is an IPv4/UDP frame addressed to
/// `port`; `None` lets unrelated traffic pass the filter.
fn udp_payload_for_port(frame: &[u8], port: u16) -> Option<&[u8]> {
    if frame.len() < 42 || frame[12] != 0x08 || frame[13] != 0x00 {
        return None; // Not IPv4.
    }
    let ip = &frame[14..];
    if ip[0] != 0x45 || ip[9] != 17 {
        return None; // Options or not UDP.
    }
    let udp = &ip[20..];
    let dst_port = u16::from_be_bytes([udp[2], udp[3]]);
    if dst_port != port {
        return None;
    }
    let udp_len = u16::from_be_bytes([udp[4], udp[5]]) as usize;
    udp.get(8..udp_len)
}

/// Maps stack errors into Demikernel errors (convenience for coroutines).
impl From<NetError> for OperationResult {
    fn from(e: NetError) -> Self {
        OperationResult::Failed(DemiError::Net(e))
    }
}

#[cfg(test)]
mod tests;
