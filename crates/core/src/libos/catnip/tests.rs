//! catnip tests: the full Demikernel data path over the simulated NIC.

use super::*;
use sim_fabric::SimTime;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

/// One runtime, one fabric, two hosts — client and server co-run.
fn world() -> (Runtime, Catnip, Catnip) {
    let fabric = Fabric::new(2024);
    let rt = Runtime::with_fabric(fabric.clone());
    let a = Catnip::new(&rt, &fabric, MacAddress::from_last_octet(1), ip(1));
    let b = Catnip::new(&rt, &fabric, MacAddress::from_last_octet(2), ip(2));
    (rt, a, b)
}

#[test]
fn udp_echo_round_trip() {
    let (_rt, client, server) = world();

    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(ip(2), 7)).unwrap();
    let server_pop = server.pop(sqd).unwrap();

    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(ip(1), 9000)).unwrap();
    client
        .pushto(cqd, &Sga::from_slice(b"ping"), SocketAddr::new(ip(2), 7))
        .unwrap();

    // The server's wait drives the whole world (ARP included).
    let (from, sga) = server.wait(server_pop, None).unwrap().expect_pop();
    assert_eq!(sga.to_vec(), b"ping");
    let from = from.expect("datagram carries its source");
    assert_eq!(from, SocketAddr::new(ip(1), 9000));

    // Echo back.
    server.pushto(sqd, &sga, from).unwrap();
    let (_, reply) = client.blocking_pop(cqd).unwrap().expect_pop();
    assert_eq!(reply.to_vec(), b"ping");
}

#[test]
fn udp_connected_push_uses_default_remote() {
    let (_rt, client, server) = world();
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(ip(2), 53)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    let qt = client.connect(cqd, SocketAddr::new(ip(2), 53)).unwrap();
    assert!(matches!(
        client.wait(qt, None).unwrap(),
        OperationResult::Connect
    ));
    client.push(cqd, &Sga::from_slice(b"query")).unwrap();
    let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
    assert_eq!(sga.to_vec(), b"query");
}

#[test]
fn tcp_accept_connect_exchange() {
    let (_rt, client, server) = world();

    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(ip(2), 80)).unwrap();
    server.listen(lqd, 16).unwrap();
    let accept_qt = server.accept(lqd).unwrap();

    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let connect_qt = client.connect(cqd, SocketAddr::new(ip(2), 80)).unwrap();

    let sqd = server.wait(accept_qt, None).unwrap().expect_accept();
    assert!(matches!(
        client.wait(connect_qt, None).unwrap(),
        OperationResult::Connect
    ));

    client
        .blocking_push(cqd, &Sga::from_slice(b"GET /index"))
        .unwrap();
    let (_, req) = server.blocking_pop(sqd).unwrap().expect_pop();
    assert_eq!(req.to_vec(), b"GET /index");

    server
        .blocking_push(sqd, &Sga::from_slice(b"200 OK"))
        .unwrap();
    let (_, resp) = client.blocking_pop(cqd).unwrap().expect_pop();
    assert_eq!(resp.to_vec(), b"200 OK");
}

#[test]
fn tcp_preserves_atomic_units_across_the_stream() {
    let (_rt, client, server) = world();
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(ip(2), 80)).unwrap();
    server.listen(lqd, 16).unwrap();
    let accept_qt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let connect_qt = client.connect(cqd, SocketAddr::new(ip(2), 80)).unwrap();
    let sqd = server.wait(accept_qt, None).unwrap().expect_accept();
    client.wait(connect_qt, None).unwrap();

    // Three pushes of very different sizes, including one spanning many
    // TCP segments: each pops as exactly one element.
    let msgs: Vec<Vec<u8>> = vec![b"tiny".to_vec(), vec![0xAB; 10_000], b"trailer".to_vec()];
    for m in &msgs {
        client.blocking_push(cqd, &Sga::from_slice(m)).unwrap();
    }
    for m in &msgs {
        let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        assert_eq!(&sga.to_vec(), m, "atomic unit boundary violated");
    }
}

#[test]
fn multi_segment_sga_arrives_as_one_element() {
    let (_rt, client, server) = world();
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(ip(2), 80)).unwrap();
    server.listen(lqd, 16).unwrap();
    let accept_qt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let connect_qt = client.connect(cqd, SocketAddr::new(ip(2), 80)).unwrap();
    let sqd = server.wait(accept_qt, None).unwrap().expect_accept();
    client.wait(connect_qt, None).unwrap();

    let mut sga = Sga::new();
    sga.push_seg(demi_memory::DemiBuffer::from_slice(b"header|"));
    sga.push_seg(demi_memory::DemiBuffer::from_slice(b"body|"));
    sga.push_seg(demi_memory::DemiBuffer::from_slice(b"tail"));
    client.blocking_push(cqd, &sga).unwrap();
    let (_, got) = server.blocking_pop(sqd).unwrap().expect_pop();
    assert_eq!(got.to_vec(), b"header|body|tail");
}

#[test]
fn connect_to_dead_port_fails() {
    let (_rt, client, _server) = world();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let qt = client.connect(cqd, SocketAddr::new(ip(2), 9999)).unwrap();
    let result = client.wait(qt, None).unwrap();
    assert!(matches!(
        result,
        OperationResult::Failed(DemiError::Net(NetError::ConnectionRefused))
    ));
}

#[test]
fn pop_on_closed_connection_reports_closed() {
    let (_rt, client, server) = world();
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(ip(2), 80)).unwrap();
    server.listen(lqd, 16).unwrap();
    let accept_qt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let connect_qt = client.connect(cqd, SocketAddr::new(ip(2), 80)).unwrap();
    let sqd = server.wait(accept_qt, None).unwrap().expect_accept();
    client.wait(connect_qt, None).unwrap();

    client.close(cqd).unwrap();
    let result = server.blocking_pop(sqd).unwrap();
    assert!(matches!(result, OperationResult::Failed(DemiError::Closed)));
}

#[test]
fn data_path_makes_zero_kernel_crossings() {
    let (rt, client, server) = world();
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(ip(1), 9000)).unwrap();
    rt.metrics().reset();
    for _ in 0..10 {
        client
            .pushto(cqd, &Sga::from_slice(b"x"), SocketAddr::new(ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    let m = rt.metrics().snapshot();
    assert_eq!(
        m.data_path_syscalls, 0,
        "Fig. 1: no kernel on the data path"
    );
    assert_eq!(m.pushes, 10);
    assert_eq!(m.pops, 10);
}

#[test]
fn zero_copy_pop_shares_device_storage() {
    let (_rt, client, server) = world();
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(ip(1), 9000)).unwrap();
    client
        .pushto(cqd, &Sga::from_slice(b"zc"), SocketAddr::new(ip(2), 7))
        .unwrap();
    let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
    let seg = &sga.segments()[0];
    assert!(
        seg.capacity() > seg.len(),
        "payload is a view into the larger device frame buffer"
    );
}

#[test]
fn wait_any_serves_two_connections_with_single_wakeups() {
    let (rt, client, server) = world();
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(ip(2), 80)).unwrap();
    server.listen(lqd, 16).unwrap();

    let a1 = server.accept(lqd).unwrap();
    let c1 = client.socket(SocketKind::Tcp).unwrap();
    let q1 = client.connect(c1, SocketAddr::new(ip(2), 80)).unwrap();
    let s1 = server.wait(a1, None).unwrap().expect_accept();
    client.wait(q1, None).unwrap();

    let a2 = server.accept(lqd).unwrap();
    let c2 = client.socket(SocketKind::Tcp).unwrap();
    let q2 = client.connect(c2, SocketAddr::new(ip(2), 80)).unwrap();
    let s2 = server.wait(a2, None).unwrap().expect_accept();
    client.wait(q2, None).unwrap();

    // Event loop: wait on both pops; exactly one resolves per completion.
    let pop1 = server.pop(s1).unwrap();
    let pop2 = server.pop(s2).unwrap();
    client
        .blocking_push(c2, &Sga::from_slice(b"second"))
        .unwrap();
    rt.metrics().reset();
    let (idx, result) = server.wait_any(&[pop1, pop2], None).unwrap();
    assert_eq!(idx, 1);
    let (_, sga) = result.expect_pop();
    assert_eq!(sga.to_vec(), b"second");
    assert_eq!(rt.metrics().snapshot().wakeups, 1);
    // The other pop is still valid.
    client
        .blocking_push(c1, &Sga::from_slice(b"first"))
        .unwrap();
    let (_, sga) = server.wait(pop1, None).unwrap().expect_pop();
    assert_eq!(sga.to_vec(), b"first");
}

#[test]
fn wait_timeout_in_virtual_time() {
    let (_rt, _client, server) = world();
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(ip(2), 7)).unwrap();
    let pop = server.pop(sqd).unwrap();
    assert_eq!(
        server.wait(pop, Some(SimTime::from_millis(5))),
        Err(DemiError::Timeout)
    );
}

#[test]
fn sgaalloc_comes_from_registered_pools() {
    let (_rt, client, _server) = world();
    let regs_before = client.memory().region_stats().registrations;
    let sga = client.sgaalloc(2048);
    assert_eq!(sga.len(), 2048);
    assert_eq!(
        client.memory().region_stats().registrations,
        regs_before,
        "warmed pools serve the data path without registration"
    );
}
