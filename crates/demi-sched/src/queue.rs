//! An unbounded single-threaded channel with an async pop.
//!
//! `AsyncQueue` is the workhorse connecting protocol layers: a producer
//! coroutine (e.g., the TCP receiver) pushes completed data units and a
//! consumer coroutine (a `pop` task) awaits them. Because the scheduler is
//! poll-based, no waker bookkeeping is needed — an awaiting pop simply
//! re-checks the queue each pass.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

/// A shared FIFO with an awaitable pop.
pub struct AsyncQueue<T> {
    inner: Rc<RefCell<VecDeque<T>>>,
}

impl<T> Clone for AsyncQueue<T> {
    fn clone(&self) -> Self {
        AsyncQueue {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Default for AsyncQueue<T> {
    fn default() -> Self {
        AsyncQueue {
            inner: Rc::new(RefCell::new(VecDeque::new())),
        }
    }
}

impl<T> AsyncQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item.
    pub fn push(&self, item: T) {
        self.inner.borrow_mut().push_back(item);
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.borrow_mut().pop_front()
    }

    /// A future that completes with the next item.
    pub fn pop(&self) -> PopFuture<T> {
        PopFuture {
            inner: self.inner.clone(),
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.borrow().len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().is_empty()
    }
}

impl<T> std::fmt::Debug for AsyncQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AsyncQueue(len={})", self.len())
    }
}

/// Future returned by [`AsyncQueue::pop`].
pub struct PopFuture<T> {
    inner: Rc<RefCell<VecDeque<T>>>,
}

impl<T> Future for PopFuture<T> {
    type Output = T;

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<T> {
        match self.inner.borrow_mut().pop_front() {
            Some(item) => Poll::Ready(item),
            None => Poll::Pending,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{yield_once, Scheduler};

    #[test]
    fn fifo_order_preserved() {
        let q: AsyncQueue<u32> = AsyncQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn async_pop_waits_for_producer() {
        let sched = Scheduler::new();
        let q: AsyncQueue<&'static str> = AsyncQueue::new();
        let consumer = sched.spawn("consumer", {
            let q = q.clone();
            async move { q.pop().await }
        });
        sched.spawn("producer", {
            let q = q.clone();
            async move {
                yield_once().await;
                yield_once().await;
                q.push("payload");
            }
        });
        for _ in 0..5 {
            sched.poll_once();
        }
        assert_eq!(consumer.take_result(), Some("payload"));
    }

    #[test]
    fn competing_consumers_each_get_one_item() {
        let sched = Scheduler::new();
        let q: AsyncQueue<u32> = AsyncQueue::new();
        let a = sched.spawn("a", {
            let q = q.clone();
            async move { q.pop().await }
        });
        let b = sched.spawn("b", {
            let q = q.clone();
            async move { q.pop().await }
        });
        q.push(10);
        q.push(20);
        for _ in 0..3 {
            sched.poll_once();
        }
        let mut got = vec![a.take_result().unwrap(), b.take_result().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
    }
}
