//! An unbounded single-threaded channel with an async pop.
//!
//! `AsyncQueue` is the workhorse connecting protocol layers: a producer
//! coroutine (e.g., the TCP receiver) pushes completed data units and a
//! consumer coroutine (a `pop` task) awaits them. A pop that finds the
//! queue empty parks its task and registers a waker; `push` wakes every
//! parked consumer. Wake-all (rather than wake-one) is deliberate: a woken
//! consumer may have been cancelled before it runs, and waking all of them
//! lets the survivors race for the item without a lost-wakeup hazard —
//! losers find the queue empty and park again.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::waiters::{arm, new_slot, WaiterList, WakerSlot};

struct QueueInner<T> {
    items: VecDeque<T>,
}

/// A shared FIFO with an awaitable pop.
pub struct AsyncQueue<T> {
    inner: Rc<RefCell<QueueInner<T>>>,
    waiters: Rc<RefCell<WaiterList>>,
}

impl<T> Clone for AsyncQueue<T> {
    fn clone(&self) -> Self {
        AsyncQueue {
            inner: self.inner.clone(),
            waiters: self.waiters.clone(),
        }
    }
}

impl<T> Default for AsyncQueue<T> {
    fn default() -> Self {
        AsyncQueue {
            inner: Rc::new(RefCell::new(QueueInner {
                items: VecDeque::new(),
            })),
            waiters: Rc::new(RefCell::new(WaiterList::default())),
        }
    }
}

impl<T> AsyncQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an item and wakes every parked consumer.
    pub fn push(&self, item: T) {
        self.inner.borrow_mut().items.push_back(item);
        self.waiters.borrow_mut().wake_all();
    }

    /// Non-blocking pop.
    pub fn try_pop(&self) -> Option<T> {
        self.inner.borrow_mut().items.pop_front()
    }

    /// A future that completes with the next item.
    pub fn pop(&self) -> PopFuture<T> {
        PopFuture {
            inner: self.inner.clone(),
            waiters: self.waiters.clone(),
            slot: new_slot(),
            registered: false,
        }
    }

    /// Number of queued items.
    pub fn len(&self) -> usize {
        self.inner.borrow().items.len()
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.inner.borrow().items.is_empty()
    }
}

impl<T> std::fmt::Debug for AsyncQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AsyncQueue(len={})", self.len())
    }
}

/// Future returned by [`AsyncQueue::pop`].
pub struct PopFuture<T> {
    inner: Rc<RefCell<QueueInner<T>>>,
    waiters: Rc<RefCell<WaiterList>>,
    slot: WakerSlot,
    registered: bool,
}

impl<T> Future for PopFuture<T> {
    type Output = T;

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        let popped = self.inner.borrow_mut().items.pop_front();
        match popped {
            Some(item) => {
                *self.slot.borrow_mut() = None;
                Poll::Ready(item)
            }
            None => {
                let this = &mut *self;
                arm(&this.slot, &mut this.registered, &this.waiters, cx);
                Poll::Pending
            }
        }
    }
}

impl<T> Drop for PopFuture<T> {
    fn drop(&mut self) {
        // Disarm so a later push does not wake a dead consumer.
        *self.slot.borrow_mut() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{yield_once, Scheduler};

    #[test]
    fn fifo_order_preserved() {
        let q: AsyncQueue<u32> = AsyncQueue::new();
        q.push(1);
        q.push(2);
        q.push(3);
        assert_eq!(q.len(), 3);
        assert_eq!(q.try_pop(), Some(1));
        assert_eq!(q.try_pop(), Some(2));
        assert_eq!(q.try_pop(), Some(3));
        assert_eq!(q.try_pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn async_pop_waits_for_producer() {
        let sched = Scheduler::new();
        let q: AsyncQueue<&'static str> = AsyncQueue::new();
        let consumer = sched.spawn("consumer", {
            let q = q.clone();
            async move { q.pop().await }
        });
        sched.spawn("producer", {
            let q = q.clone();
            async move {
                yield_once().await;
                yield_once().await;
                q.push("payload");
            }
        });
        for _ in 0..5 {
            sched.poll_once();
        }
        assert_eq!(consumer.take_result(), Some("payload"));
    }

    #[test]
    fn competing_consumers_each_get_one_item() {
        let sched = Scheduler::new();
        let q: AsyncQueue<u32> = AsyncQueue::new();
        let a = sched.spawn("a", {
            let q = q.clone();
            async move { q.pop().await }
        });
        let b = sched.spawn("b", {
            let q = q.clone();
            async move { q.pop().await }
        });
        q.push(10);
        q.push(20);
        for _ in 0..3 {
            sched.poll_once();
        }
        let mut got = vec![a.take_result().unwrap(), b.take_result().unwrap()];
        got.sort_unstable();
        assert_eq!(got, vec![10, 20]);
    }

    #[test]
    fn parked_consumer_wakes_only_on_push() {
        let sched = Scheduler::new();
        let q: AsyncQueue<u8> = AsyncQueue::new();
        let consumer = sched.spawn("consumer", {
            let q = q.clone();
            async move { q.pop().await }
        });
        sched.poll_once();
        let parked_polls = sched.stats().polls;
        for _ in 0..10 {
            sched.poll_once();
        }
        assert_eq!(
            sched.stats().polls,
            parked_polls,
            "consumer re-polled while parked"
        );
        q.push(5);
        sched.poll_once();
        assert_eq!(consumer.take_result(), Some(5));
    }

    #[test]
    fn cancelled_consumer_does_not_steal_wakes() {
        let sched = Scheduler::new();
        let q: AsyncQueue<u8> = AsyncQueue::new();
        // A consumer task that parks, then is "cancelled" by dropping its
        // pop future and parking forever on a fresh one it never polls.
        let survivor = sched.spawn("survivor", {
            let q = q.clone();
            async move { q.pop().await }
        });
        {
            // An unpolled (never-registered) and a dropped future around.
            let f1 = q.pop();
            drop(f1);
        }
        sched.poll_once();
        q.push(7);
        sched.poll_once();
        assert_eq!(survivor.take_result(), Some(7));
    }
}
