//! Virtual-time sleeps.
//!
//! Protocol stacks need timers (TCP retransmission, ARP request timeouts,
//! device service delays). A [`TimerService`] tracks the set of outstanding
//! deadlines against the simulation clock; when every coroutine is blocked,
//! the runtime asks for [`TimerService::earliest_deadline`] and advances the
//! clock to the sooner of that and the fabric's next frame delivery.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use sim_fabric::{SimClock, SimTime};

/// Shared registry of sleep deadlines on one simulation clock.
#[derive(Clone)]
pub struct TimerService {
    clock: SimClock,
    deadlines: Rc<RefCell<BinaryHeap<Reverse<SimTime>>>>,
}

impl TimerService {
    /// Creates a timer service driven by `clock`.
    pub fn new(clock: SimClock) -> Self {
        TimerService {
            clock,
            deadlines: Rc::new(RefCell::new(BinaryHeap::new())),
        }
    }

    /// The clock this service reads.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current virtual time (convenience passthrough).
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// A future that completes once virtual time reaches `deadline`.
    pub fn sleep_until(&self, deadline: SimTime) -> SleepFuture {
        self.deadlines.borrow_mut().push(Reverse(deadline));
        SleepFuture {
            clock: self.clock.clone(),
            deadline,
        }
    }

    /// A future that completes after `duration` of virtual time.
    pub fn sleep(&self, duration: SimTime) -> SleepFuture {
        self.sleep_until(self.clock.now().saturating_add(duration))
    }

    /// The earliest unexpired deadline, if any.
    ///
    /// Deadlines already in the past are discarded: their sleepers become
    /// ready on the next poll and no longer constrain clock advancement.
    pub fn earliest_deadline(&self) -> Option<SimTime> {
        let now = self.clock.now();
        let mut heap = self.deadlines.borrow_mut();
        while let Some(Reverse(t)) = heap.peek().copied() {
            if t > now {
                return Some(t);
            }
            heap.pop();
        }
        None
    }

    /// Number of registered (possibly expired) deadlines.
    pub fn pending(&self) -> usize {
        self.deadlines.borrow().len()
    }
}

/// Future returned by [`TimerService::sleep_until`].
///
/// Cancellation-safe: dropping the future before its deadline leaves a stale
/// heap entry, which [`TimerService::earliest_deadline`] discards once
/// expired — at worst the runtime advances the clock to a moment nobody is
/// waiting for, which is harmless.
#[derive(Debug)]
pub struct SleepFuture {
    clock: SimClock,
    deadline: SimTime,
}

impl SleepFuture {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for SleepFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.clock.now() >= self.deadline {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;

    #[test]
    fn sleep_completes_only_after_clock_advances() {
        let clock = SimClock::new();
        let timers = TimerService::new(clock.clone());
        let sched = Scheduler::new();
        let h = sched.spawn("sleeper", {
            let timers = timers.clone();
            async move {
                timers.sleep(SimTime::from_micros(10)).await;
                timers.now()
            }
        });
        sched.poll_once();
        assert!(!h.is_complete());
        assert_eq!(timers.earliest_deadline(), Some(SimTime::from_micros(10)));
        clock.advance_to(SimTime::from_micros(10));
        sched.poll_once();
        assert_eq!(h.take_result(), Some(SimTime::from_micros(10)));
        assert_eq!(timers.earliest_deadline(), None);
    }

    #[test]
    fn earliest_deadline_orders_and_discards_expired() {
        let clock = SimClock::new();
        let timers = TimerService::new(clock.clone());
        let _a = timers.sleep_until(SimTime::from_micros(30));
        let _b = timers.sleep_until(SimTime::from_micros(10));
        let _c = timers.sleep_until(SimTime::from_micros(20));
        assert_eq!(timers.earliest_deadline(), Some(SimTime::from_micros(10)));
        clock.advance_to(SimTime::from_micros(15));
        assert_eq!(timers.earliest_deadline(), Some(SimTime::from_micros(20)));
        clock.advance_to(SimTime::from_micros(100));
        assert_eq!(timers.earliest_deadline(), None);
        assert_eq!(timers.pending(), 0);
    }

    #[test]
    fn zero_duration_sleep_is_immediately_ready() {
        let clock = SimClock::new();
        let timers = TimerService::new(clock);
        let sched = Scheduler::new();
        let h = sched.spawn("instant", {
            let timers = timers.clone();
            async move {
                timers.sleep(SimTime::ZERO).await;
                1u8
            }
        });
        sched.poll_once();
        assert_eq!(h.take_result(), Some(1));
    }

    #[test]
    fn dropped_sleep_entry_is_garbage_collected() {
        let clock = SimClock::new();
        let timers = TimerService::new(clock.clone());
        drop(timers.sleep_until(SimTime::from_micros(5)));
        assert_eq!(timers.earliest_deadline(), Some(SimTime::from_micros(5)));
        clock.advance_to(SimTime::from_micros(5));
        assert_eq!(timers.earliest_deadline(), None);
    }
}
