//! Virtual-time sleeps.
//!
//! Protocol stacks need timers (TCP retransmission, ARP request timeouts,
//! device service delays). A [`TimerService`] keeps a deadline heap against
//! the simulation clock; when every coroutine is blocked, the runtime asks
//! for [`TimerService::earliest_deadline`] and advances the clock to the
//! sooner of that and the fabric's next frame delivery, then calls
//! [`TimerService::fire_due`] to wake exactly the sleepers whose deadlines
//! have passed — sleeping tasks are parked, not re-polled every pass.

use std::cell::RefCell;
use std::cmp::Ordering as CmpOrdering;
use std::collections::BinaryHeap;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

use sim_fabric::{SimClock, SimTime};

/// One heap entry: a deadline plus the sleeping task's waker cell. The cell
/// is shared with the [`SleepFuture`]; dropping the future disarms it, so a
/// fired entry for a cancelled sleep wakes nobody.
struct TimerEntry {
    deadline: SimTime,
    waker: Rc<RefCell<Option<Waker>>>,
}

// BinaryHeap is a max-heap; invert the comparison for earliest-first.
impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.deadline == other.deadline
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<CmpOrdering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> CmpOrdering {
        other.deadline.cmp(&self.deadline)
    }
}

/// Shared registry of sleep deadlines on one simulation clock.
#[derive(Clone)]
pub struct TimerService {
    clock: SimClock,
    deadlines: Rc<RefCell<BinaryHeap<TimerEntry>>>,
}

impl TimerService {
    /// Creates a timer service driven by `clock`.
    pub fn new(clock: SimClock) -> Self {
        TimerService {
            clock,
            deadlines: Rc::new(RefCell::new(BinaryHeap::new())),
        }
    }

    /// The clock this service reads.
    pub fn clock(&self) -> &SimClock {
        &self.clock
    }

    /// Current virtual time (convenience passthrough).
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// A future that completes once virtual time reaches `deadline`.
    pub fn sleep_until(&self, deadline: SimTime) -> SleepFuture {
        let waker = Rc::new(RefCell::new(None));
        self.deadlines.borrow_mut().push(TimerEntry {
            deadline,
            waker: waker.clone(),
        });
        SleepFuture {
            clock: self.clock.clone(),
            deadline,
            waker,
        }
    }

    /// A future that completes after `duration` of virtual time.
    pub fn sleep(&self, duration: SimTime) -> SleepFuture {
        self.sleep_until(self.clock.now().saturating_add(duration))
    }

    /// Pops every deadline at or before the current time, waking its
    /// sleeper (if still armed). Returns how many sleepers were woken.
    ///
    /// The runtime calls this after every clock advancement; anyone who
    /// moves the shared clock by hand (tests, custom drivers) should too.
    pub fn fire_due(&self) -> usize {
        let now = self.clock.now();
        let mut heap = self.deadlines.borrow_mut();
        let mut woken = 0;
        while heap.peek().is_some_and(|e| e.deadline <= now) {
            let entry = heap.pop().unwrap();
            let armed = entry.waker.borrow_mut().take();
            if let Some(waker) = armed {
                waker.wake();
                woken += 1;
            }
        }
        woken
    }

    /// The earliest unexpired deadline, if any.
    ///
    /// Deadlines already in the past are fired on the way (waking their
    /// sleepers, exactly like [`TimerService::fire_due`]): their sleepers
    /// are ready and no longer constrain clock advancement.
    pub fn earliest_deadline(&self) -> Option<SimTime> {
        self.fire_due();
        self.deadlines.borrow().peek().map(|e| e.deadline)
    }

    /// Number of registered (possibly expired or cancelled) deadlines.
    pub fn pending(&self) -> usize {
        self.deadlines.borrow().len()
    }
}

/// Future returned by [`TimerService::sleep_until`].
///
/// Cancellation-safe: dropping the future before its deadline disarms its
/// waker cell; the stale heap entry fires into the disarmed cell once
/// expired — at worst the runtime advances the clock to a moment nobody is
/// waiting for, which is harmless.
pub struct SleepFuture {
    clock: SimClock,
    deadline: SimTime,
    waker: Rc<RefCell<Option<Waker>>>,
}

impl SleepFuture {
    /// The instant this sleep completes.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for SleepFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.clock.now() >= self.deadline {
            *self.waker.borrow_mut() = None;
            Poll::Ready(())
        } else {
            *self.waker.borrow_mut() = Some(cx.waker().clone());
            Poll::Pending
        }
    }
}

impl Drop for SleepFuture {
    fn drop(&mut self) {
        // Disarm so firing the stale heap entry wakes nobody.
        *self.waker.borrow_mut() = None;
    }
}

impl std::fmt::Debug for SleepFuture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SleepFuture(deadline={:?})", self.deadline)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;

    #[test]
    fn sleep_completes_only_after_clock_advances() {
        let clock = SimClock::new();
        let timers = TimerService::new(clock.clone());
        let sched = Scheduler::new();
        let h = sched.spawn("sleeper", {
            let timers = timers.clone();
            async move {
                timers.sleep(SimTime::from_micros(10)).await;
                timers.now()
            }
        });
        sched.poll_once();
        assert!(!h.is_complete());
        assert_eq!(timers.earliest_deadline(), Some(SimTime::from_micros(10)));
        clock.advance_to(SimTime::from_micros(10));
        assert_eq!(timers.fire_due(), 1);
        sched.poll_once();
        assert_eq!(h.take_result(), Some(SimTime::from_micros(10)));
        assert_eq!(timers.earliest_deadline(), None);
    }

    #[test]
    fn earliest_deadline_orders_and_discards_expired() {
        let clock = SimClock::new();
        let timers = TimerService::new(clock.clone());
        let _a = timers.sleep_until(SimTime::from_micros(30));
        let _b = timers.sleep_until(SimTime::from_micros(10));
        let _c = timers.sleep_until(SimTime::from_micros(20));
        assert_eq!(timers.earliest_deadline(), Some(SimTime::from_micros(10)));
        clock.advance_to(SimTime::from_micros(15));
        assert_eq!(timers.earliest_deadline(), Some(SimTime::from_micros(20)));
        clock.advance_to(SimTime::from_micros(100));
        assert_eq!(timers.earliest_deadline(), None);
        assert_eq!(timers.pending(), 0);
    }

    #[test]
    fn zero_duration_sleep_is_immediately_ready() {
        let clock = SimClock::new();
        let timers = TimerService::new(clock);
        let sched = Scheduler::new();
        let h = sched.spawn("instant", {
            let timers = timers.clone();
            async move {
                timers.sleep(SimTime::ZERO).await;
                1u8
            }
        });
        sched.poll_once();
        assert_eq!(h.take_result(), Some(1));
    }

    #[test]
    fn dropped_sleep_entry_is_garbage_collected() {
        let clock = SimClock::new();
        let timers = TimerService::new(clock.clone());
        drop(timers.sleep_until(SimTime::from_micros(5)));
        assert_eq!(timers.earliest_deadline(), Some(SimTime::from_micros(5)));
        clock.advance_to(SimTime::from_micros(5));
        assert_eq!(timers.fire_due(), 0, "cancelled sleeper must not be woken");
        assert_eq!(timers.earliest_deadline(), None);
        assert_eq!(timers.pending(), 0);
    }

    #[test]
    fn fire_due_wakes_parked_sleeper_without_repolling_others() {
        let clock = SimClock::new();
        let timers = TimerService::new(clock.clone());
        let sched = Scheduler::new();
        sched.spawn("parked-forever", std::future::pending::<()>());
        let h = sched.spawn("sleeper", {
            let timers = timers.clone();
            async move {
                timers.sleep(SimTime::from_micros(3)).await;
                true
            }
        });
        sched.poll_once();
        let parked_polls = sched.stats().polls;
        clock.advance_to(SimTime::from_micros(3));
        assert_eq!(timers.fire_due(), 1);
        sched.poll_once();
        assert!(h.is_complete());
        // Only the sleeper was re-polled; the pending task stayed parked.
        assert_eq!(sched.stats().polls, parked_polls + 1);
    }
}
