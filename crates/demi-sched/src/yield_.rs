//! Cooperative yield point.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Future returned by [`yield_once`].
#[derive(Debug, Default)]
pub struct YieldFuture {
    yielded: bool,
}

impl Future for YieldFuture {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            // Self-wake: the task stays runnable but moves to the back of
            // the run queue, so every other runnable task gets a turn first.
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Suspends the current coroutine until the next scheduler pass.
///
/// The yielding task re-enqueues itself (a self-wake), so under the
/// waker-driven policy a yield loop keeps running — but code that *waits*
/// for an event should park on a waker source ([`crate::Condition`],
/// [`crate::Notify`], [`crate::AsyncQueue`], a timer) instead of spinning
/// on `yield_once`, which burns a poll per pass.
pub fn yield_once() -> YieldFuture {
    YieldFuture::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::task::Waker;

    #[test]
    fn pending_once_then_ready() {
        let mut fut = yield_once();
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert!(Pin::new(&mut fut).poll(&mut cx).is_ready());
    }

    #[test]
    fn yield_requeues_itself_under_wake_policy() {
        let sched = crate::Scheduler::new();
        let h = sched.spawn("yielder", async {
            for _ in 0..3 {
                yield_once().await;
            }
            true
        });
        for _ in 0..4 {
            sched.poll_once();
        }
        assert_eq!(h.take_result(), Some(true));
    }
}
