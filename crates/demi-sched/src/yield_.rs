//! Cooperative yield point.

use std::future::Future;
use std::pin::Pin;
use std::task::{Context, Poll};

/// Future returned by [`yield_once`].
#[derive(Debug, Default)]
pub struct YieldFuture {
    yielded: bool,
}

impl Future for YieldFuture {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.yielded {
            Poll::Ready(())
        } else {
            self.yielded = true;
            Poll::Pending
        }
    }
}

/// Suspends the current coroutine until the next scheduler pass.
///
/// Protocol coroutines call this inside busy loops ("poll the device, then
/// yield") so that every task gets a share of each scheduler pass.
pub fn yield_once() -> YieldFuture {
    YieldFuture::default()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::task::Waker;

    #[test]
    fn pending_once_then_ready() {
        let mut fut = yield_once();
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        assert!(Pin::new(&mut fut).poll(&mut cx).is_pending());
        assert!(Pin::new(&mut fut).poll(&mut cx).is_ready());
    }
}
