//! A one-shot, multi-waiter condition flag.

use std::cell::Cell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

/// A shared boolean that coroutines can await.
///
/// Once [`Condition::signal`] is called, every current and future waiter
/// completes. Used for connection-established notifications, shutdown
/// propagation, and test orchestration.
///
/// # Examples
///
/// ```
/// use demi_sched::{Condition, Scheduler};
///
/// let sched = Scheduler::new();
/// let cond = Condition::new();
/// let waiter = sched.spawn("waiter", {
///     let cond = cond.clone();
///     async move {
///         cond.wait().await;
///         "signalled"
///     }
/// });
/// sched.poll_once();
/// assert!(!waiter.is_complete());
/// cond.signal();
/// sched.poll_once();
/// assert_eq!(waiter.take_result(), Some("signalled"));
/// ```
#[derive(Clone, Default)]
pub struct Condition {
    set: Rc<Cell<bool>>,
}

impl Condition {
    /// Creates an unsignalled condition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals the condition; idempotent.
    pub fn signal(&self) {
        self.set.set(true);
    }

    /// Whether the condition has been signalled.
    pub fn is_set(&self) -> bool {
        self.set.get()
    }

    /// A future that completes once the condition is signalled.
    pub fn wait(&self) -> ConditionFuture {
        ConditionFuture {
            set: self.set.clone(),
        }
    }
}

impl std::fmt::Debug for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Condition(set={})", self.is_set())
    }
}

/// Future returned by [`Condition::wait`].
#[derive(Debug)]
pub struct ConditionFuture {
    set: Rc<Cell<bool>>,
}

impl Future for ConditionFuture {
    type Output = ();

    fn poll(self: Pin<&mut Self>, _cx: &mut Context<'_>) -> Poll<()> {
        if self.set.get() {
            Poll::Ready(())
        } else {
            Poll::Pending
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;

    #[test]
    fn all_waiters_complete_on_signal() {
        let sched = Scheduler::new();
        let cond = Condition::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cond = cond.clone();
                sched.spawn("waiter", async move {
                    cond.wait().await;
                })
            })
            .collect();
        sched.poll_once();
        assert!(handles.iter().all(|h| !h.is_complete()));
        cond.signal();
        sched.poll_once();
        assert!(handles.iter().all(|h| h.is_complete()));
    }

    #[test]
    fn late_waiter_completes_immediately() {
        let sched = Scheduler::new();
        let cond = Condition::new();
        cond.signal();
        assert!(cond.is_set());
        let h = sched.spawn("late", {
            let cond = cond.clone();
            async move {
                cond.wait().await;
                true
            }
        });
        sched.poll_once();
        assert_eq!(h.take_result(), Some(true));
    }

    #[test]
    fn signal_is_idempotent() {
        let cond = Condition::new();
        cond.signal();
        cond.signal();
        assert!(cond.is_set());
    }
}
