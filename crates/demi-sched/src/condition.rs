//! A one-shot, multi-waiter condition flag.

use std::cell::{Cell, RefCell};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::waiters::{arm, new_slot, WaiterList, WakerSlot};

/// A shared boolean that coroutines can await.
///
/// Once [`Condition::signal`] is called, every current waiter is woken and
/// every current and future waiter completes. Used for
/// connection-established notifications, shutdown propagation, and test
/// orchestration.
///
/// # Examples
///
/// ```
/// use demi_sched::{Condition, Scheduler};
///
/// let sched = Scheduler::new();
/// let cond = Condition::new();
/// let waiter = sched.spawn("waiter", {
///     let cond = cond.clone();
///     async move {
///         cond.wait().await;
///         "signalled"
///     }
/// });
/// sched.poll_once();
/// assert!(!waiter.is_complete());
/// cond.signal();
/// sched.poll_once();
/// assert_eq!(waiter.take_result(), Some("signalled"));
/// ```
#[derive(Clone, Default)]
pub struct Condition {
    set: Rc<Cell<bool>>,
    waiters: Rc<RefCell<WaiterList>>,
}

impl Condition {
    /// Creates an unsignalled condition.
    pub fn new() -> Self {
        Self::default()
    }

    /// Signals the condition and wakes all waiters; idempotent.
    pub fn signal(&self) {
        self.set.set(true);
        self.waiters.borrow_mut().wake_all();
    }

    /// Whether the condition has been signalled.
    pub fn is_set(&self) -> bool {
        self.set.get()
    }

    /// A future that completes once the condition is signalled.
    pub fn wait(&self) -> ConditionFuture {
        ConditionFuture {
            set: self.set.clone(),
            waiters: self.waiters.clone(),
            slot: new_slot(),
            registered: false,
        }
    }
}

impl std::fmt::Debug for Condition {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Condition(set={})", self.is_set())
    }
}

/// Future returned by [`Condition::wait`].
pub struct ConditionFuture {
    set: Rc<Cell<bool>>,
    waiters: Rc<RefCell<WaiterList>>,
    slot: WakerSlot,
    registered: bool,
}

impl Future for ConditionFuture {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.set.get() {
            Poll::Ready(())
        } else {
            let this = &mut *self;
            arm(&this.slot, &mut this.registered, &this.waiters, cx);
            Poll::Pending
        }
    }
}

impl Drop for ConditionFuture {
    fn drop(&mut self) {
        // Disarm so a later signal does not wake a dead waiter.
        *self.slot.borrow_mut() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;

    #[test]
    fn all_waiters_complete_on_signal() {
        let sched = Scheduler::new();
        let cond = Condition::new();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cond = cond.clone();
                sched.spawn("waiter", async move {
                    cond.wait().await;
                })
            })
            .collect();
        sched.poll_once();
        assert!(handles.iter().all(|h| !h.is_complete()));
        cond.signal();
        sched.poll_once();
        assert!(handles.iter().all(|h| h.is_complete()));
    }

    #[test]
    fn late_waiter_completes_immediately() {
        let sched = Scheduler::new();
        let cond = Condition::new();
        cond.signal();
        assert!(cond.is_set());
        let h = sched.spawn("late", {
            let cond = cond.clone();
            async move {
                cond.wait().await;
                true
            }
        });
        sched.poll_once();
        assert_eq!(h.take_result(), Some(true));
    }

    #[test]
    fn signal_is_idempotent() {
        let cond = Condition::new();
        cond.signal();
        cond.signal();
        assert!(cond.is_set());
    }

    #[test]
    fn parked_waiter_is_not_repolled_until_signal() {
        let sched = Scheduler::new();
        let cond = Condition::new();
        let h = sched.spawn("waiter", {
            let cond = cond.clone();
            async move {
                cond.wait().await;
            }
        });
        sched.poll_once();
        let parked_polls = sched.stats().polls;
        for _ in 0..10 {
            sched.poll_once();
        }
        assert_eq!(
            sched.stats().polls,
            parked_polls,
            "waiter was re-polled while parked"
        );
        cond.signal();
        sched.poll_once();
        assert!(h.is_complete());
    }

    #[test]
    fn dropped_waiter_is_not_woken_and_leaks_nothing() {
        let sched = Scheduler::new();
        let cond = Condition::new();
        let fut = cond.wait();
        drop(fut);
        cond.signal();
        // A live waiter spawned afterwards still completes normally.
        let h = sched.spawn("live", {
            let cond = cond.clone();
            async move {
                cond.wait().await;
                1u8
            }
        });
        sched.poll_once();
        assert_eq!(h.take_result(), Some(1));
    }
}
