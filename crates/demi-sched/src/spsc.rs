//! Bounded lock-free single-producer/single-consumer ring.
//!
//! This is the shard boundary primitive for thread-per-shard execution:
//! each pair of shards is connected by two of these rings (one per
//! direction), and every cross-shard message — a steering-mismatch frame
//! handoff, an ARP learn broadcast — travels through one. The design
//! follows the classic cache-friendly SPSC layout (Lamport queue with
//! cached peer indices, as popularized by DPDK's `rte_ring` SP/SC mode
//! and `folly::ProducerConsumerQueue`):
//!
//! * one atomic `head` (consumer position) and one atomic `tail`
//!   (producer position), each on its own cache line so the producer and
//!   consumer never false-share;
//! * each side keeps a *cached* copy of the other side's index and only
//!   re-reads the shared atomic when the cache says the ring looks full
//!   (producer) or empty (consumer) — the common-case push/pop touches a
//!   single shared cache line;
//! * capacity is rounded up to a power of two so slot indexing is a mask,
//!   not a modulo.
//!
//! The ring is *bounded by construction*: `try_push` fails rather than
//! allocates, which is what lets the stack attach backpressure counters
//! (`handoff_backpressure` / `handoff_dropped`) instead of growing an
//! unbounded `VecDeque` until memory runs out.
//!
//! Memory ordering: the producer publishes a slot with a `Release` store
//! of `tail`; the consumer observes it with an `Acquire` load, which
//! makes the slot write happen-before the pop. Symmetrically for `head`
//! when the consumer frees a slot. This is the minimal ordering for a
//! correct SPSC queue; there are no CAS loops anywhere.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Pads an atomic index to a cache line so `head` and `tail` (and their
/// per-side caches) never share one.
#[repr(align(128))]
struct CachePadded<T>(T);

struct Shared<T> {
    /// Slot storage; length is a power of two.
    slots: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// `slots.len() - 1`, used as an index mask.
    mask: usize,
    /// Next slot the consumer will pop (monotonically increasing; only
    /// masked when indexing).
    head: CachePadded<AtomicUsize>,
    /// Next slot the producer will fill.
    tail: CachePadded<AtomicUsize>,
}

// SAFETY: the ring hands each slot to exactly one side at a time — the
// producer owns slots in `[tail, head + capacity)` and the consumer owns
// `[head, tail)` — with Release/Acquire edges on the index that transfers
// ownership. `T: Send` is required because values move across threads.
unsafe impl<T: Send> Send for Shared<T> {}
unsafe impl<T: Send> Sync for Shared<T> {}

impl<T> Drop for Shared<T> {
    fn drop(&mut self) {
        // Both handles are gone; drop any items still in flight.
        let head = self.head.0.load(Ordering::Relaxed);
        let tail = self.tail.0.load(Ordering::Relaxed);
        for i in head..tail {
            let slot = &self.slots[i & self.mask];
            // SAFETY: slots in [head, tail) hold initialized values that
            // were never popped.
            unsafe { (*slot.get()).assume_init_drop() };
        }
    }
}

/// The sending half of a bounded SPSC ring. Not cloneable: exactly one
/// producer exists per ring.
pub struct Producer<T> {
    shared: Arc<Shared<T>>,
    /// Producer's private copy of its own index (avoids an atomic RMW).
    tail: usize,
    /// Cached consumer index; refreshed only when the ring looks full.
    cached_head: usize,
}

/// The receiving half of a bounded SPSC ring. Not cloneable: exactly one
/// consumer exists per ring.
pub struct Consumer<T> {
    shared: Arc<Shared<T>>,
    /// Consumer's private copy of its own index.
    head: usize,
    /// Cached producer index; refreshed only when the ring looks empty.
    cached_tail: usize,
}

// SAFETY: each half is used by one thread at a time; sending the *half*
// to another thread is the whole point. `T: Send` flows from Shared.
unsafe impl<T: Send> Send for Producer<T> {}
unsafe impl<T: Send> Send for Consumer<T> {}

/// Creates a bounded SPSC ring holding at least `capacity` items
/// (rounded up to the next power of two, minimum 2).
pub fn channel<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let shared = Arc::new(Shared {
        slots,
        mask: cap - 1,
        head: CachePadded(AtomicUsize::new(0)),
        tail: CachePadded(AtomicUsize::new(0)),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            tail: 0,
            cached_head: 0,
        },
        Consumer {
            shared,
            head: 0,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Attempts to enqueue `value`; returns it back if the ring is full.
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let cap = self.shared.mask + 1;
        if self.tail - self.cached_head == cap {
            // Looks full through the cache; refresh from the consumer.
            self.cached_head = self.shared.head.0.load(Ordering::Acquire);
            if self.tail - self.cached_head == cap {
                return Err(value);
            }
        }
        let slot = &self.shared.slots[self.tail & self.shared.mask];
        // SAFETY: `[tail, head + cap)` slots belong to the producer; this
        // one is unoccupied (popped or never filled).
        unsafe { (*slot.get()).write(value) };
        self.tail += 1;
        self.shared.tail.0.store(self.tail, Ordering::Release);
        Ok(())
    }

    /// Number of items currently enqueued (racy under concurrency; exact
    /// when the consumer is quiescent).
    pub fn len(&self) -> usize {
        self.tail - self.shared.head.0.load(Ordering::Acquire)
    }

    /// True when the ring holds no items (subject to the same race as
    /// [`len`](Self::len)).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True when a `try_push` right now would fail.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity()
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }
}

impl<T> Consumer<T> {
    /// Attempts to dequeue the oldest item; `None` when the ring is empty.
    pub fn try_pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            // Looks empty through the cache; refresh from the producer.
            self.cached_tail = self.shared.tail.0.load(Ordering::Acquire);
            if self.head == self.cached_tail {
                return None;
            }
        }
        let slot = &self.shared.slots[self.head & self.shared.mask];
        // SAFETY: `[head, tail)` slots hold initialized values owned by
        // the consumer; the Acquire load of `tail` ordered the write.
        let value = unsafe { (*slot.get()).assume_init_read() };
        self.head += 1;
        self.shared.head.0.store(self.head, Ordering::Release);
        Some(value)
    }

    /// Number of items currently enqueued (racy under concurrency).
    pub fn len(&self) -> usize {
        self.shared.tail.0.load(Ordering::Acquire) - self.head
    }

    /// True when the ring holds no items.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total slot count.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        let (p, _c) = channel::<u32>(5);
        assert_eq!(p.capacity(), 8);
        let (p, _c) = channel::<u32>(0);
        assert_eq!(p.capacity(), 2);
        let (p, _c) = channel::<u32>(16);
        assert_eq!(p.capacity(), 16);
    }

    #[test]
    fn fifo_and_full_empty() {
        let (mut p, mut c) = channel::<u32>(4);
        assert!(c.try_pop().is_none());
        assert!(p.is_empty());
        for i in 0..4 {
            p.try_push(i).unwrap();
        }
        assert!(p.is_full());
        assert_eq!(p.try_push(99), Err(99));
        for i in 0..4 {
            assert_eq!(c.try_pop(), Some(i));
        }
        assert!(c.try_pop().is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn wraparound_many_times() {
        // Push/pop far more items than the capacity so the indices wrap
        // the mask repeatedly (and, with a tiny ring, exercise the cached
        // index refresh on both sides).
        let (mut p, mut c) = channel::<u64>(2);
        let mut next_out = 0u64;
        for i in 0..10_000u64 {
            while p.try_push(i).is_err() {
                assert_eq!(c.try_pop(), Some(next_out));
                next_out += 1;
            }
        }
        while let Some(v) = c.try_pop() {
            assert_eq!(v, next_out);
            next_out += 1;
        }
        assert_eq!(next_out, 10_000);
    }

    #[test]
    fn drops_in_flight_items() {
        static DROPS: AtomicU64 = AtomicU64::new(0);
        #[derive(Debug)]
        struct Counted;
        impl Drop for Counted {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut p, mut c) = channel::<Counted>(8);
        for _ in 0..5 {
            p.try_push(Counted).unwrap();
        }
        drop(c.try_pop()); // one popped and dropped by us
        drop(p);
        drop(c); // four still in flight, dropped by the ring
        assert_eq!(DROPS.load(Ordering::SeqCst), 5);
    }

    #[test]
    fn cross_thread_fifo_stress() {
        // One real producer thread, one real consumer thread, a ring far
        // smaller than the item count: every item must arrive exactly
        // once, in order, with payload intact. Runs long enough to give
        // the Release/Acquire edges a real workout under preemption.
        const ITEMS: u64 = 50_000;
        let (mut p, mut c) = channel::<(u64, u64)>(64);
        let producer = std::thread::spawn(move || {
            let mut x = 0x9e3779b97f4a7c15u64; // seeded payload generator
            for i in 0..ITEMS {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                let mut item = (i, x);
                loop {
                    match p.try_push(item) {
                        Ok(()) => break,
                        Err(back) => {
                            item = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut x = 0x9e3779b97f4a7c15u64;
        let mut expect = 0u64;
        while expect < ITEMS {
            if let Some((i, payload)) = c.try_pop() {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                assert_eq!(i, expect, "items out of order");
                assert_eq!(payload, x, "payload corrupted in slot");
                expect += 1;
            } else {
                std::thread::yield_now();
            }
        }
        assert!(c.try_pop().is_none());
        producer.join().unwrap();
    }
}
