//! An edge-triggered, multi-waiter event counter.
//!
//! [`Notify`] is the primitive behind "park until something relevant might
//! have happened": a waiter snapshots the epoch when it starts waiting and
//! completes once the epoch has advanced past the snapshot, so a
//! notification delivered *between* the check and the park is never lost.
//! The runtime uses one `Notify` as its activity gate (external progress —
//! frames delivered, device completions, timers fired — bumps it), and the
//! library OSes use dedicated instances for per-object events (queue
//! readability, connection state changes).
//!
//! The idiomatic wait loop re-checks its predicate after each wake:
//!
//! ```
//! # use demi_sched::{Notify, Scheduler};
//! # let sched = Scheduler::new();
//! # let notify = Notify::new();
//! # let n2 = notify.clone();
//! let h = sched.spawn("waiter", async move {
//!     loop {
//!         let wait = n2.notified();   // snapshot BEFORE checking
//!         if 1 + 1 == 2 { break }     // predicate
//!         wait.await;                 // park until the epoch advances
//!     }
//! });
//! # sched.poll_once();
//! # assert!(h.is_complete());
//! ```

use std::cell::RefCell;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll};

use crate::waiters::{arm, new_slot, WaiterList, WakerSlot};

#[derive(Default)]
struct NotifyInner {
    epoch: u64,
}

/// A cloneable edge-triggered event source.
#[derive(Clone, Default)]
pub struct Notify {
    inner: Rc<RefCell<NotifyInner>>,
    waiters: Rc<RefCell<WaiterList>>,
}

impl Notify {
    /// Creates a notifier at epoch zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the epoch and wakes every current waiter. Returns how many
    /// tasks were woken.
    pub fn notify_waiters(&self) -> usize {
        self.inner.borrow_mut().epoch += 1;
        self.waiters.borrow_mut().wake_all()
    }

    /// The current epoch (diagnostics).
    pub fn epoch(&self) -> u64 {
        self.inner.borrow().epoch
    }

    /// A future that completes once [`Notify::notify_waiters`] is called
    /// *after* this future was created. Create it before checking the
    /// condition you are waiting on, so an intervening notification is not
    /// lost.
    pub fn notified(&self) -> Notified {
        Notified {
            inner: self.inner.clone(),
            waiters: self.waiters.clone(),
            seen_epoch: self.inner.borrow().epoch,
            slot: new_slot(),
            registered: false,
        }
    }
}

impl std::fmt::Debug for Notify {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Notify(epoch={})", self.epoch())
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    inner: Rc<RefCell<NotifyInner>>,
    waiters: Rc<RefCell<WaiterList>>,
    seen_epoch: u64,
    slot: WakerSlot,
    registered: bool,
}

impl Future for Notified {
    type Output = ();

    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.inner.borrow().epoch > self.seen_epoch {
            *self.slot.borrow_mut() = None;
            Poll::Ready(())
        } else {
            let this = &mut *self;
            arm(&this.slot, &mut this.registered, &this.waiters, cx);
            Poll::Pending
        }
    }
}

impl Drop for Notified {
    fn drop(&mut self) {
        // Disarm so a later notification does not wake a dead waiter.
        *self.slot.borrow_mut() = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scheduler;

    #[test]
    fn notification_wakes_parked_waiter() {
        let sched = Scheduler::new();
        let notify = Notify::new();
        let h = sched.spawn("waiter", {
            let notify = notify.clone();
            async move {
                notify.notified().await;
                "woken"
            }
        });
        sched.poll_once();
        assert!(!h.is_complete());
        assert_eq!(notify.notify_waiters(), 1);
        sched.poll_once();
        assert_eq!(h.take_result(), Some("woken"));
    }

    #[test]
    fn notification_between_snapshot_and_await_is_not_lost() {
        let sched = Scheduler::new();
        let notify = Notify::new();
        let h = sched.spawn("waiter", {
            let notify = notify.clone();
            async move {
                let wait = notify.notified();
                // The event fires before the first await — the snapshot
                // epoch makes the wait complete immediately.
                notify.notify_waiters();
                wait.await;
                true
            }
        });
        sched.poll_once();
        assert_eq!(h.take_result(), Some(true));
    }

    #[test]
    fn notification_before_snapshot_does_not_complete_the_wait() {
        let sched = Scheduler::new();
        let notify = Notify::new();
        notify.notify_waiters();
        let h = sched.spawn("waiter", {
            let notify = notify.clone();
            async move {
                notify.notified().await;
            }
        });
        sched.poll_once();
        assert!(
            !h.is_complete(),
            "stale notification completed a fresh wait"
        );
        notify.notify_waiters();
        sched.poll_once();
        assert!(h.is_complete());
    }

    #[test]
    fn parked_waiter_costs_no_polls() {
        let sched = Scheduler::new();
        let notify = Notify::new();
        sched.spawn("waiter", {
            let notify = notify.clone();
            async move {
                notify.notified().await;
            }
        });
        sched.poll_once();
        let parked_polls = sched.stats().polls;
        for _ in 0..10 {
            sched.poll_once();
        }
        assert_eq!(sched.stats().polls, parked_polls);
    }

    #[test]
    fn dropped_waiter_is_compacted_not_woken() {
        let notify = Notify::new();
        let fut = notify.notified();
        drop(fut);
        assert_eq!(notify.notify_waiters(), 0);
    }
}
