//! A single-threaded, waker-driven coroutine scheduler.
//!
//! Demikernel library OSes run every I/O operation as a coroutine: `push`,
//! `pop`, `accept`, and `connect` each spawn a task and return a *qtoken*
//! naming it; `wait`/`wait_any`/`wait_all` drive the scheduler until the
//! named tasks complete (paper §4.3–4.4). The paper's efficiency claim —
//! `wait` "wakes exactly one thread" per completion — is a statement about
//! *readiness*: completing an operation must cost O(that operation), not
//! O(every outstanding operation). This crate provides that machinery:
//!
//! * [`Scheduler`] — a slab of `Pin<Box<dyn Future>>` tasks, each with a
//!   real [`std::task::Waker`] backed by a shared run queue. A scheduler
//!   pass drains only woken tasks, so thousands of parked connections cost
//!   nothing per completion. The legacy poll-everything discipline is kept
//!   as the opt-in [`PollPolicy::Sweep`] for before/after benchmarking.
//! * [`TaskHandle`] — typed access to a task's eventual result, including
//!   completion-waker registration so waiters park instead of re-polling.
//! * [`TimerService`] — virtual-time sleeps on a deadline heap; the runtime
//!   advances the clock to [`TimerService::earliest_deadline`] and
//!   [`fire_due`](TimerService::fire_due) wakes exactly the expired
//!   sleepers.
//! * [`yield_once`] / [`Condition`] / [`Notify`] / [`AsyncQueue`] —
//!   cooperation primitives. All of them wake their waiters on state
//!   change; `yield_once` self-wakes (stay runnable, go to the back of the
//!   queue).
//!
//! Everything is single-threaded (`Rc`-based) by design: a Demikernel libOS
//! owns one core and partitions state per core, so cross-thread
//! synchronization never appears on the data path. (The run queue itself is
//! `Mutex`+atomic so a `Waker` that escapes to another thread stays sound —
//! uncontended in practice.) Under thread-per-shard execution each OS
//! thread owns a complete scheduler of its own; the only cross-thread
//! structure this crate provides is the bounded lock-free [`spsc`] ring
//! that carries messages *between* per-shard worlds.

pub mod condition;
pub mod notify;
pub mod queue;
pub mod scheduler;
pub mod spsc;
pub mod timer;
mod waiters;
pub mod yield_;

pub use condition::Condition;
pub use notify::{Notified, Notify};
pub use queue::AsyncQueue;
pub use scheduler::{PassReport, PollPolicy, Scheduler, SchedulerStats, TaskHandle, TaskId};
pub use timer::TimerService;
pub use yield_::{yield_once, YieldFuture};
