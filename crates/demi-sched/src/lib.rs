//! A single-threaded, poll-based coroutine scheduler.
//!
//! Demikernel library OSes run every I/O operation as a coroutine: `push`,
//! `pop`, `accept`, and `connect` each spawn a task and return a *qtoken*
//! naming it; `wait`/`wait_any`/`wait_all` drive the scheduler until the
//! named tasks complete (paper §4.3–4.4). This crate provides that machinery
//! in a deliberately simple form:
//!
//! * [`Scheduler`] — a slab of `Pin<Box<dyn Future>>` tasks polled
//!   round-robin with a no-op waker. Polling (rather than waker-driven
//!   wake-ups) matches the busy-poll discipline of real kernel-bypass
//!   data paths, where the CPU spins on device queues anyway.
//! * [`TaskHandle`] — typed access to a task's eventual result.
//! * [`TimerService`] — virtual-time sleeps, with an
//!   [`earliest_deadline`](TimerService::earliest_deadline) query the
//!   runtime uses to decide how far to advance the clock when all tasks
//!   are blocked.
//! * [`yield_once`] / [`Condition`] / [`AsyncQueue`] — cooperation
//!   primitives for writing protocol coroutines.
//!
//! Everything is single-threaded (`Rc`-based) by design: a Demikernel libOS
//! owns one core and partitions state per core, so cross-thread
//! synchronization never appears on the data path.

pub mod condition;
pub mod queue;
pub mod scheduler;
pub mod timer;
pub mod yield_;

pub use condition::Condition;
pub use queue::AsyncQueue;
pub use scheduler::{Scheduler, SchedulerStats, TaskHandle, TaskId};
pub use timer::TimerService;
pub use yield_::{yield_once, YieldFuture};
