//! Shared waker-registration plumbing for the cooperation primitives.
//!
//! Every primitive that parks tasks ([`crate::Condition`], [`crate::Notify`],
//! [`crate::AsyncQueue`], [`crate::TimerService`]) uses the same scheme: the
//! waiting future owns a [`WakerSlot`] it re-arms on every poll, the
//! primitive keeps a [`WaiterList`] of those slots, and signalling *takes*
//! each registered waker and fires it. Dropping a future disarms its slot
//! (and releases its `Rc`), so cancelled waiters are never woken and are
//! compacted out of the list on the next signal — a dropped waiter leaks
//! nothing.

use std::cell::RefCell;
use std::rc::Rc;
use std::task::{Context, Waker};

/// One waiting future's waker cell. `None` = disarmed (not currently
/// parked, or cancelled).
pub(crate) type WakerSlot = Rc<RefCell<Option<Waker>>>;

/// Creates a disarmed slot.
pub(crate) fn new_slot() -> WakerSlot {
    Rc::new(RefCell::new(None))
}

/// The waiter side of the protocol: arms `slot` with the current task's
/// waker and registers it in `list` the first time (`registered` tracks
/// that). Call on every `Poll::Pending` return.
pub(crate) fn arm(
    slot: &WakerSlot,
    registered: &mut bool,
    list: &Rc<RefCell<WaiterList>>,
    cx: &mut Context<'_>,
) {
    *slot.borrow_mut() = Some(cx.waker().clone());
    if !*registered {
        list.borrow_mut().slots.push(slot.clone());
        *registered = true;
    }
}

/// A primitive's collection of waiter slots.
#[derive(Default)]
pub(crate) struct WaiterList {
    slots: Vec<WakerSlot>,
}

impl WaiterList {
    /// Wakes every armed waiter (taking its waker, so each registration
    /// yields at most one wake) and compacts out slots whose future has
    /// been dropped. Returns how many wakers fired.
    pub(crate) fn wake_all(&mut self) -> usize {
        let mut woken = 0;
        self.slots.retain(|slot| {
            if let Some(waker) = slot.borrow_mut().take() {
                waker.wake();
                woken += 1;
            }
            // Strong count 1 means only the list still holds the slot: the
            // owning future is gone.
            Rc::strong_count(slot) > 1
        });
        woken
    }
}
