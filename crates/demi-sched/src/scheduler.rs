//! The task slab and round-robin polling loop.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::task::{Context, Poll, Waker};

/// Identifies a spawned task. In the Demikernel layer, qtokens wrap task ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// Counters describing scheduler activity, used by the experiments to count
/// wake-ups and polls precisely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Total tasks ever spawned.
    pub spawned: u64,
    /// Total tasks that ran to completion.
    pub completed: u64,
    /// Total individual `Future::poll` invocations.
    pub polls: u64,
    /// Total `poll_once` scheduler passes.
    pub passes: u64,
}

struct TaskSlot {
    id: TaskId,
    name: &'static str,
    future: Pin<Box<dyn Future<Output = ()>>>,
}

#[derive(Default)]
struct Inner {
    tasks: Vec<Option<TaskSlot>>,
    free: Vec<usize>,
    next_id: u64,
    stats: SchedulerStats,
}

/// A single-threaded cooperative scheduler.
///
/// Tasks are `'static` futures with no output; typed results travel through
/// the [`TaskHandle`] returned by [`Scheduler::spawn`]. All handles are
/// cheap clones of one shared scheduler.
///
/// # Examples
///
/// ```
/// use demi_sched::Scheduler;
///
/// let sched = Scheduler::new();
/// let handle = sched.spawn("answer", async { 21 * 2 });
/// while !handle.is_complete() {
///     sched.poll_once();
/// }
/// assert_eq!(handle.take_result(), Some(42));
/// ```
#[derive(Clone, Default)]
pub struct Scheduler {
    inner: Rc<RefCell<Inner>>,
}

impl Scheduler {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Spawns a coroutine and returns a typed handle to its result.
    ///
    /// The task starts in the runnable set and is first polled on the next
    /// [`Scheduler::poll_once`] pass. Dropping the handle detaches the task;
    /// it keeps running to completion.
    pub fn spawn<T, F>(&self, name: &'static str, future: F) -> TaskHandle<T>
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        let result: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let done = Rc::new(Cell::new(false));
        let wrapped = {
            let result = result.clone();
            let done = done.clone();
            async move {
                let value = future.await;
                *result.borrow_mut() = Some(value);
                done.set(true);
            }
        };

        let mut inner = self.inner.borrow_mut();
        inner.stats.spawned += 1;
        let id = TaskId(inner.next_id);
        inner.next_id += 1;
        let slot = TaskSlot {
            id,
            name,
            future: Box::pin(wrapped),
        };
        match inner.free.pop() {
            Some(index) => inner.tasks[index] = Some(slot),
            None => inner.tasks.push(Some(slot)),
        }
        TaskHandle {
            scheduler: self.clone(),
            id,
            name,
            result,
            done,
        }
    }

    /// Polls every live task exactly once; returns how many completed during
    /// this pass.
    ///
    /// Tasks spawned *during* the pass (by other tasks) are not polled until
    /// the next pass, which keeps each pass bounded.
    pub fn poll_once(&self) -> usize {
        let upper = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.passes += 1;
            inner.tasks.len()
        };
        let waker = Waker::noop();
        let mut cx = Context::from_waker(waker);
        let mut completed = 0;

        for index in 0..upper {
            // Move the task out of the slab while polling so the task body
            // may re-borrow the scheduler (e.g., to spawn).
            let Some(mut slot) = self.inner.borrow_mut().tasks[index].take() else {
                continue;
            };
            self.inner.borrow_mut().stats.polls += 1;
            match slot.future.as_mut().poll(&mut cx) {
                Poll::Ready(()) => {
                    let mut inner = self.inner.borrow_mut();
                    inner.stats.completed += 1;
                    inner.free.push(index);
                    completed += 1;
                }
                Poll::Pending => {
                    self.inner.borrow_mut().tasks[index] = Some(slot);
                }
            }
        }
        completed
    }

    /// Number of live (incomplete) tasks.
    pub fn live_tasks(&self) -> usize {
        self.inner
            .borrow()
            .tasks
            .iter()
            .filter(|t| t.is_some())
            .count()
    }

    /// Names of live tasks, for deadlock diagnostics.
    pub fn live_task_names(&self) -> Vec<&'static str> {
        self.inner
            .borrow()
            .tasks
            .iter()
            .flatten()
            .map(|t| t.name)
            .collect()
    }

    /// Whether a task with the given id is still live.
    pub fn is_live(&self, id: TaskId) -> bool {
        self.inner
            .borrow()
            .tasks
            .iter()
            .flatten()
            .any(|t| t.id == id)
    }

    /// Snapshot of activity counters.
    pub fn stats(&self) -> SchedulerStats {
        self.inner.borrow().stats
    }
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Scheduler(live={})", self.live_tasks())
    }
}

/// Typed handle to a spawned task's eventual result.
pub struct TaskHandle<T> {
    scheduler: Scheduler,
    id: TaskId,
    name: &'static str,
    result: Rc<RefCell<Option<T>>>,
    done: Rc<Cell<bool>>,
}

impl<T> TaskHandle<T> {
    /// The task's scheduler-wide id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The diagnostic name given at spawn.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether the task has run to completion (its result may already have
    /// been taken).
    pub fn is_complete(&self) -> bool {
        self.done.get()
    }

    /// Takes the result if the task has completed; `None` otherwise or if
    /// already taken.
    pub fn take_result(&self) -> Option<T> {
        self.result.borrow_mut().take()
    }

    /// The scheduler this task runs on.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

impl<T> Clone for TaskHandle<T> {
    fn clone(&self) -> Self {
        TaskHandle {
            scheduler: self.scheduler.clone(),
            id: self.id,
            name: self.name,
            result: self.result.clone(),
            done: self.done.clone(),
        }
    }
}

impl<T> fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TaskHandle({:?}, {}, complete={})",
            self.id,
            self.name,
            self.is_complete()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yield_once;
    use std::cell::Cell;

    #[test]
    fn spawn_and_complete_immediately_ready_task() {
        let sched = Scheduler::new();
        let h = sched.spawn("ready", async { 7 });
        assert!(!h.is_complete());
        assert_eq!(sched.poll_once(), 1);
        assert!(h.is_complete());
        assert_eq!(h.take_result(), Some(7));
        assert_eq!(h.take_result(), None);
        assert_eq!(sched.live_tasks(), 0);
    }

    #[test]
    fn yielding_task_needs_multiple_passes() {
        let sched = Scheduler::new();
        let h = sched.spawn("yielder", async {
            yield_once().await;
            yield_once().await;
            "done"
        });
        assert_eq!(sched.poll_once(), 0);
        assert_eq!(sched.poll_once(), 0);
        assert_eq!(sched.poll_once(), 1);
        assert_eq!(h.take_result(), Some("done"));
    }

    #[test]
    fn tasks_interleave_round_robin() {
        let sched = Scheduler::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for task in 0..3u32 {
            let log = log.clone();
            sched.spawn("interleaver", async move {
                for step in 0..2u32 {
                    log.borrow_mut().push(task * 10 + step);
                    yield_once().await;
                }
            });
        }
        while sched.live_tasks() > 0 {
            sched.poll_once();
        }
        assert_eq!(&*log.borrow(), &[0, 10, 20, 1, 11, 21]);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let sched = Scheduler::new();
        let inner_done = Rc::new(Cell::new(false));
        let h = sched.spawn("outer", {
            let sched = sched.clone();
            let inner_done = inner_done.clone();
            async move {
                let inner = sched.spawn("inner", async move {
                    inner_done.set(true);
                });
                while !inner.is_complete() {
                    yield_once().await;
                }
                true
            }
        });
        for _ in 0..10 {
            sched.poll_once();
        }
        assert!(inner_done.get());
        assert_eq!(h.take_result(), Some(true));
    }

    #[test]
    fn dropping_handle_detaches_but_task_still_runs() {
        let sched = Scheduler::new();
        let ran = Rc::new(Cell::new(false));
        {
            let ran = ran.clone();
            let _ = sched.spawn("detached", async move {
                yield_once().await;
                ran.set(true);
            });
        }
        sched.poll_once();
        sched.poll_once();
        assert!(ran.get());
    }

    #[test]
    fn slot_reuse_does_not_confuse_ids() {
        let sched = Scheduler::new();
        let a = sched.spawn("a", async { 1u32 });
        sched.poll_once();
        assert!(a.is_complete());
        let b = sched.spawn("b", async { 2u32 });
        assert_ne!(a.id(), b.id());
        assert!(!sched.is_live(a.id()));
        assert!(sched.is_live(b.id()));
        sched.poll_once();
        assert_eq!(b.take_result(), Some(2));
    }

    #[test]
    fn stats_count_polls_and_completions() {
        let sched = Scheduler::new();
        sched.spawn("one", async {
            yield_once().await;
        });
        sched.spawn("two", async {});
        sched.poll_once();
        sched.poll_once();
        let stats = sched.stats();
        assert_eq!(stats.spawned, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.passes, 2);
        assert_eq!(stats.polls, 3);
    }

    #[test]
    fn live_task_names_reports_pending_tasks() {
        let sched = Scheduler::new();
        sched.spawn("stuck", std::future::pending::<()>());
        sched.poll_once();
        assert_eq!(sched.live_task_names(), vec!["stuck"]);
    }
}
