//! The task slab and the waker-driven run queue.
//!
//! Each spawned task owns a real [`Waker`] backed by a shared run queue.
//! Waking a task enqueues its slot index (deduplicated by a per-slot
//! `scheduled` flag, so a task sits in the queue at most once); a scheduler
//! pass drains only the entries that were present when the pass began, so
//! per-pass work is O(ready tasks) rather than O(live tasks). The legacy
//! poll-everything behavior survives as the opt-in [`PollPolicy::Sweep`] so
//! the two disciplines can be benchmarked against each other in-tree.

use std::cell::{Cell, RefCell};
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::task::{Context, Poll, Wake, Waker};

/// Identifies a spawned task. In the Demikernel layer, qtokens wrap task ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u64);

/// How the scheduler selects tasks to poll.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum PollPolicy {
    /// Waker-driven: a pass drains the run queue, polling only tasks whose
    /// wakers fired. Idle tasks cost nothing.
    #[default]
    Wake,
    /// Legacy round-robin: a pass polls every live task regardless of
    /// readiness. Kept for before/after benchmarking (e11) and as the
    /// mechanism behind rescue sweeps.
    Sweep,
}

/// Counters describing scheduler activity, used by the experiments to count
/// wake-ups and polls precisely.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SchedulerStats {
    /// Total tasks ever spawned.
    pub spawned: u64,
    /// Total tasks that ran to completion.
    pub completed: u64,
    /// Total individual `Future::poll` invocations.
    pub polls: u64,
    /// Total scheduler passes (`poll_once` / `run_pass` / `sweep_pass`).
    pub passes: u64,
    /// Total waker deliveries that made a task runnable. Redundant wakes of
    /// an already-queued task and wakes of completed tasks are not counted —
    /// this is the "useful wake-up" number the paper's "exactly one wake-up
    /// per completion" claim is about.
    pub wakeups: u64,
    /// Polls of tasks that had *not* been woken and returned `Pending`: pure
    /// overhead. Zero by construction under [`PollPolicy::Wake`] (only
    /// rescue sweeps add to it); grows O(live × passes) under
    /// [`PollPolicy::Sweep`].
    pub spurious_polls: u64,
}

/// What one scheduler pass did; the runtime uses this to decide whether the
/// system is making progress without re-scanning the slab.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PassReport {
    /// Tasks that ran to completion during the pass.
    pub completed: usize,
    /// Total `Future::poll` invocations during the pass.
    pub polled: usize,
    /// Polls of tasks whose waker had fired (the useful subset of `polled`).
    pub woken: usize,
}

/// The shared run queue: slot indices (plus the slot generation that was
/// live when the wake fired) in wake order.
///
/// The queue is `Mutex`-protected and the dedup flag is atomic so that a
/// `Waker` smuggled onto another thread stays sound; in the single-threaded
/// simulation both are always uncontended.
struct RunQueue {
    /// `(slot index, slot generation, telemetry enqueue stamp)`. The stamp
    /// is virtual-time ns at wake when latency telemetry is enabled, else 0
    /// — the schedule→poll lag histogram only sees real stamps.
    queue: Mutex<VecDeque<(usize, u64, u64)>>,
    wakeups: AtomicU64,
}

impl RunQueue {
    fn new() -> Arc<Self> {
        Arc::new(RunQueue {
            queue: Mutex::new(VecDeque::new()),
            wakeups: AtomicU64::new(0),
        })
    }

    fn push(&self, index: usize, gen: u64) {
        // `now_ns` reads a thread-local: a waker smuggled onto another
        // thread stamps 0 there and the lag sample is simply skipped.
        let enqueued_ns = if demi_telemetry::enabled() {
            demi_telemetry::now_ns()
        } else {
            0
        };
        self.queue
            .lock()
            .unwrap()
            .push_back((index, gen, enqueued_ns));
    }

    fn pop(&self) -> Option<(usize, u64, u64)> {
        self.queue.lock().unwrap().pop_front()
    }

    fn len(&self) -> usize {
        self.queue.lock().unwrap().len()
    }

    fn clear(&self) {
        self.queue.lock().unwrap().clear();
    }
}

/// Per-slot waker state. `scheduled` guarantees at-most-once queue presence:
/// it is set when a wake enqueues the task, cleared immediately before the
/// task is polled (so a mid-poll wake re-enqueues exactly once), and set
/// permanently when the task completes (so wake-after-complete is a no-op).
/// `gen` pins the waker to one occupancy of the slot; a stale waker that
/// outlives the task enqueues an entry the scheduler discards on sight.
struct SlotWaker {
    index: usize,
    gen: u64,
    scheduled: AtomicBool,
    rq: Arc<RunQueue>,
}

impl Wake for SlotWaker {
    fn wake(self: Arc<Self>) {
        self.wake_by_ref();
    }

    fn wake_by_ref(self: &Arc<Self>) {
        if !self.scheduled.swap(true, Ordering::AcqRel) {
            self.rq.wakeups.fetch_add(1, Ordering::Relaxed);
            self.rq.push(self.index, self.gen);
        }
    }
}

struct TaskSlot {
    id: TaskId,
    name: &'static str,
    gen: u64,
    waker: Arc<SlotWaker>,
    future: Pin<Box<dyn Future<Output = ()>>>,
}

#[derive(Default)]
struct Inner {
    tasks: Vec<Option<TaskSlot>>,
    free: Vec<usize>,
    next_id: u64,
    next_gen: u64,
    live: usize,
    stats: SchedulerStats,
    policy: PollPolicy,
}

/// A single-threaded cooperative scheduler.
///
/// Tasks are `'static` futures with no output; typed results travel through
/// the [`TaskHandle`] returned by [`Scheduler::spawn`]. All handles are
/// cheap clones of one shared scheduler.
///
/// # Examples
///
/// ```
/// use demi_sched::Scheduler;
///
/// let sched = Scheduler::new();
/// let handle = sched.spawn("answer", async { 21 * 2 });
/// while !handle.is_complete() {
///     sched.poll_once();
/// }
/// assert_eq!(handle.take_result(), Some(42));
/// ```
#[derive(Clone)]
pub struct Scheduler {
    inner: Rc<RefCell<Inner>>,
    rq: Arc<RunQueue>,
}

impl Default for Scheduler {
    fn default() -> Self {
        Scheduler {
            inner: Rc::new(RefCell::new(Inner::default())),
            rq: RunQueue::new(),
        }
    }
}

impl Scheduler {
    /// Creates an empty waker-driven scheduler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty scheduler with an explicit [`PollPolicy`].
    pub fn with_policy(policy: PollPolicy) -> Self {
        let sched = Self::default();
        sched.inner.borrow_mut().policy = policy;
        sched
    }

    /// The active polling policy.
    pub fn policy(&self) -> PollPolicy {
        self.inner.borrow().policy
    }

    /// Spawns a coroutine and returns a typed handle to its result.
    ///
    /// The task starts on the run queue and is first polled on the next
    /// scheduler pass. Dropping the handle detaches the task; it keeps
    /// running to completion.
    pub fn spawn<T, F>(&self, name: &'static str, future: F) -> TaskHandle<T>
    where
        T: 'static,
        F: Future<Output = T> + 'static,
    {
        let result: Rc<RefCell<Option<T>>> = Rc::new(RefCell::new(None));
        let done = Rc::new(Cell::new(false));
        let done_wakers: Rc<RefCell<Vec<Waker>>> = Rc::new(RefCell::new(Vec::new()));
        let wrapped = {
            let result = result.clone();
            let done = done.clone();
            let done_wakers = done_wakers.clone();
            async move {
                let value = future.await;
                *result.borrow_mut() = Some(value);
                done.set(true);
                for w in done_wakers.borrow_mut().drain(..) {
                    w.wake();
                }
            }
        };

        let mut inner = self.inner.borrow_mut();
        inner.stats.spawned += 1;
        inner.live += 1;
        let id = TaskId(inner.next_id);
        inner.next_id += 1;
        let gen = inner.next_gen;
        inner.next_gen += 1;
        let index = inner.free.pop().unwrap_or(inner.tasks.len());
        let waker = Arc::new(SlotWaker {
            index,
            gen,
            // Born scheduled: the slot is enqueued below, so wakes racing
            // with the first poll must dedup against that entry.
            scheduled: AtomicBool::new(true),
            rq: self.rq.clone(),
        });
        let slot = TaskSlot {
            id,
            name,
            gen,
            waker,
            future: Box::pin(wrapped),
        };
        if index == inner.tasks.len() {
            inner.tasks.push(Some(slot));
        } else {
            inner.tasks[index] = Some(slot);
        }
        drop(inner);
        self.rq.push(index, gen);
        TaskHandle {
            scheduler: self.clone(),
            id,
            name,
            result,
            done,
            done_wakers,
        }
    }

    /// Runs one scheduler pass under the configured policy; returns how many
    /// tasks completed. Compatibility alias for [`Scheduler::run_pass`].
    pub fn poll_once(&self) -> usize {
        self.run_pass().completed
    }

    /// Runs one scheduler pass under the configured policy.
    pub fn run_pass(&self) -> PassReport {
        match self.policy() {
            PollPolicy::Wake => self.wake_pass(),
            PollPolicy::Sweep => self.sweep_pass(),
        }
    }

    /// Whether any task is currently queued to run.
    pub fn has_runnable(&self) -> bool {
        self.rq.len() > 0
    }

    /// Drains the run-queue entries present at entry, polling only woken
    /// tasks. Entries enqueued *during* the pass (including self-wakes from
    /// `yield_once` and tasks spawned by other tasks) wait for the next
    /// pass, which keeps each pass bounded and preserves round-robin
    /// fairness among runnable tasks.
    fn wake_pass(&self) -> PassReport {
        self.inner.borrow_mut().stats.passes += 1;
        let budget = self.rq.len();
        let mut report = PassReport::default();

        for _ in 0..budget {
            let Some((index, gen, enqueued_ns)) = self.rq.pop() else {
                break;
            };
            if enqueued_ns != 0 {
                demi_telemetry::stage::record(
                    demi_telemetry::stage::Stage::SchedPollLag,
                    demi_telemetry::now_ns().saturating_sub(enqueued_ns),
                );
            }
            // Move the task out of the slab while polling so the task body
            // may re-borrow the scheduler (e.g., to spawn).
            let slot = {
                let mut inner = self.inner.borrow_mut();
                // A vacant slot or a generation mismatch means a stale
                // wake: the slot was freed (and possibly reused) after the
                // wake fired. Discard the entry.
                let taken = match inner.tasks.get_mut(index) {
                    Some(occupant) if occupant.as_ref().is_some_and(|s| s.gen == gen) => {
                        occupant.take().unwrap()
                    }
                    _ => continue,
                };
                inner.stats.polls += 1;
                taken
            };
            report.polled += 1;
            report.woken += 1;
            report.completed += self.poll_slot(index, slot);
        }
        report
    }

    /// Polls **every** live task once, regardless of readiness: the legacy
    /// discipline, used as [`PollPolicy::Sweep`]'s pass and as the runtime's
    /// rescue sweep before declaring deadlock. Polls of unwoken tasks that
    /// stay `Pending` are tallied as `spurious_polls`.
    pub fn sweep_pass(&self) -> PassReport {
        let upper = {
            let mut inner = self.inner.borrow_mut();
            inner.stats.passes += 1;
            inner.tasks.len()
        };
        // Everyone gets polled, so queued entries are redundant; clearing
        // keeps the queue from growing across sweep passes. Mid-poll wakes
        // re-enqueue below and survive for the next pass.
        self.rq.clear();
        let mut report = PassReport::default();

        for index in 0..upper {
            let (slot, was_woken) = {
                let mut inner = self.inner.borrow_mut();
                let Some(occupant) = inner.tasks.get_mut(index) else {
                    continue;
                };
                let Some(slot) = occupant.take() else {
                    continue;
                };
                inner.stats.polls += 1;
                // Consume the wake (if any) exactly as wake_pass would.
                let was_woken = slot.waker.scheduled.swap(false, Ordering::AcqRel);
                (slot, was_woken)
            };
            report.polled += 1;
            report.woken += usize::from(was_woken);
            let completed = self.poll_slot(index, slot);
            report.completed += completed;
            if !was_woken && completed == 0 && self.inner.borrow().tasks[index].is_some() {
                self.inner.borrow_mut().stats.spurious_polls += 1;
            }
        }
        report
    }

    /// Polls one slot (already taken out of the slab); returns 1 if it
    /// completed. The caller has accounted the poll in the stats.
    fn poll_slot(&self, index: usize, mut slot: TaskSlot) -> usize {
        // Clear the dedup flag *before* polling: a wake delivered while the
        // task runs must re-enqueue it (exactly once).
        slot.waker.scheduled.store(false, Ordering::Release);
        let waker = Waker::from(slot.waker.clone());
        let mut cx = Context::from_waker(&waker);
        match slot.future.as_mut().poll(&mut cx) {
            Poll::Ready(()) => {
                // Leave `scheduled` set forever: any straggler wake of this
                // (now dead) generation becomes an O(1) no-op.
                slot.waker.scheduled.store(true, Ordering::Release);
                let mut inner = self.inner.borrow_mut();
                inner.stats.completed += 1;
                inner.live -= 1;
                inner.free.push(index);
                1
            }
            Poll::Pending => {
                self.inner.borrow_mut().tasks[index] = Some(slot);
                0
            }
        }
    }

    /// Number of live (incomplete) tasks. O(1): maintained as a counter.
    pub fn live_tasks(&self) -> usize {
        self.inner.borrow().live
    }

    /// Names of live tasks, for deadlock diagnostics.
    pub fn live_task_names(&self) -> Vec<&'static str> {
        self.inner
            .borrow()
            .tasks
            .iter()
            .flatten()
            .map(|t| t.name)
            .collect()
    }

    /// Whether a task with the given id is still live.
    pub fn is_live(&self, id: TaskId) -> bool {
        self.inner
            .borrow()
            .tasks
            .iter()
            .flatten()
            .any(|t| t.id == id)
    }

    /// Snapshot of activity counters.
    pub fn stats(&self) -> SchedulerStats {
        let mut stats = self.inner.borrow().stats;
        stats.wakeups = self.rq.wakeups.load(Ordering::Relaxed);
        stats
    }
}

impl fmt::Debug for Scheduler {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Scheduler(live={}, runnable={})",
            self.live_tasks(),
            self.rq.len()
        )
    }
}

/// Typed handle to a spawned task's eventual result.
pub struct TaskHandle<T> {
    scheduler: Scheduler,
    id: TaskId,
    name: &'static str,
    result: Rc<RefCell<Option<T>>>,
    done: Rc<Cell<bool>>,
    done_wakers: Rc<RefCell<Vec<Waker>>>,
}

impl<T> TaskHandle<T> {
    /// The task's scheduler-wide id.
    pub fn id(&self) -> TaskId {
        self.id
    }

    /// The diagnostic name given at spawn.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Whether the task has run to completion (its result may already have
    /// been taken).
    pub fn is_complete(&self) -> bool {
        self.done.get()
    }

    /// Takes the result if the task has completed; `None` otherwise or if
    /// already taken.
    pub fn take_result(&self) -> Option<T> {
        self.result.borrow_mut().take()
    }

    /// Registers a waker to fire when the task completes; a duplicate of an
    /// already-registered waker is skipped. No-op (the caller should check
    /// [`TaskHandle::is_complete`] first) if the task already finished.
    pub fn register_completion_waker(&self, waker: &Waker) {
        if self.done.get() {
            waker.wake_by_ref();
            return;
        }
        let mut wakers = self.done_wakers.borrow_mut();
        if !wakers.iter().any(|w| w.will_wake(waker)) {
            wakers.push(waker.clone());
        }
    }

    /// The scheduler this task runs on.
    pub fn scheduler(&self) -> &Scheduler {
        &self.scheduler
    }
}

impl<T> Clone for TaskHandle<T> {
    fn clone(&self) -> Self {
        TaskHandle {
            scheduler: self.scheduler.clone(),
            id: self.id,
            name: self.name,
            result: self.result.clone(),
            done: self.done.clone(),
            done_wakers: self.done_wakers.clone(),
        }
    }
}

impl<T> fmt::Debug for TaskHandle<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "TaskHandle({:?}, {}, complete={})",
            self.id,
            self.name,
            self.is_complete()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::yield_once;
    use std::cell::Cell;

    #[test]
    fn spawn_and_complete_immediately_ready_task() {
        let sched = Scheduler::new();
        let h = sched.spawn("ready", async { 7 });
        assert!(!h.is_complete());
        assert_eq!(sched.poll_once(), 1);
        assert!(h.is_complete());
        assert_eq!(h.take_result(), Some(7));
        assert_eq!(h.take_result(), None);
        assert_eq!(sched.live_tasks(), 0);
    }

    #[test]
    fn yielding_task_needs_multiple_passes() {
        let sched = Scheduler::new();
        let h = sched.spawn("yielder", async {
            yield_once().await;
            yield_once().await;
            "done"
        });
        assert_eq!(sched.poll_once(), 0);
        assert_eq!(sched.poll_once(), 0);
        assert_eq!(sched.poll_once(), 1);
        assert_eq!(h.take_result(), Some("done"));
    }

    #[test]
    fn tasks_interleave_round_robin() {
        let sched = Scheduler::new();
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for task in 0..3u32 {
            let log = log.clone();
            sched.spawn("interleaver", async move {
                for step in 0..2u32 {
                    log.borrow_mut().push(task * 10 + step);
                    yield_once().await;
                }
            });
        }
        while sched.live_tasks() > 0 {
            sched.poll_once();
        }
        assert_eq!(&*log.borrow(), &[0, 10, 20, 1, 11, 21]);
    }

    #[test]
    fn tasks_can_spawn_tasks() {
        let sched = Scheduler::new();
        let inner_done = Rc::new(Cell::new(false));
        let h = sched.spawn("outer", {
            let sched = sched.clone();
            let inner_done = inner_done.clone();
            async move {
                let inner = sched.spawn("inner", async move {
                    inner_done.set(true);
                });
                while !inner.is_complete() {
                    yield_once().await;
                }
                true
            }
        });
        for _ in 0..10 {
            sched.poll_once();
        }
        assert!(inner_done.get());
        assert_eq!(h.take_result(), Some(true));
    }

    #[test]
    fn dropping_handle_detaches_but_task_still_runs() {
        let sched = Scheduler::new();
        let ran = Rc::new(Cell::new(false));
        {
            let ran = ran.clone();
            let _ = sched.spawn("detached", async move {
                yield_once().await;
                ran.set(true);
            });
        }
        sched.poll_once();
        sched.poll_once();
        assert!(ran.get());
    }

    #[test]
    fn slot_reuse_does_not_confuse_ids() {
        let sched = Scheduler::new();
        let a = sched.spawn("a", async { 1u32 });
        sched.poll_once();
        assert!(a.is_complete());
        let b = sched.spawn("b", async { 2u32 });
        assert_ne!(a.id(), b.id());
        assert!(!sched.is_live(a.id()));
        assert!(sched.is_live(b.id()));
        sched.poll_once();
        assert_eq!(b.take_result(), Some(2));
    }

    #[test]
    fn stats_count_polls_and_completions() {
        let sched = Scheduler::new();
        sched.spawn("one", async {
            yield_once().await;
        });
        sched.spawn("two", async {});
        sched.poll_once();
        sched.poll_once();
        let stats = sched.stats();
        assert_eq!(stats.spawned, 2);
        assert_eq!(stats.completed, 2);
        assert_eq!(stats.passes, 2);
        assert_eq!(stats.polls, 3);
        assert_eq!(stats.spurious_polls, 0);
    }

    #[test]
    fn live_task_names_reports_pending_tasks() {
        let sched = Scheduler::new();
        sched.spawn("stuck", std::future::pending::<()>());
        sched.poll_once();
        assert_eq!(sched.live_task_names(), vec!["stuck"]);
    }

    #[test]
    fn parked_tasks_are_not_repolled() {
        let sched = Scheduler::new();
        // A task that parks forever: polled exactly once (its spawn wake),
        // then never again under the Wake policy.
        sched.spawn("parked", std::future::pending::<()>());
        sched.poll_once();
        let after_first = sched.stats().polls;
        for _ in 0..100 {
            sched.poll_once();
        }
        assert_eq!(sched.stats().polls, after_first);
        assert_eq!(sched.stats().spurious_polls, 0);
        assert!(!sched.has_runnable());
    }

    #[test]
    fn sweep_policy_repolls_everything_and_counts_spurious() {
        let sched = Scheduler::with_policy(PollPolicy::Sweep);
        sched.spawn("parked", std::future::pending::<()>());
        sched.poll_once();
        sched.poll_once();
        sched.poll_once();
        let stats = sched.stats();
        assert_eq!(stats.polls, 3);
        // First poll consumed the spawn wake; the next two were spurious.
        assert_eq!(stats.spurious_polls, 2);
    }

    #[test]
    fn run_pass_reports_woken_vs_polled() {
        let sched = Scheduler::new();
        sched.spawn("ready", async {});
        let report = sched.run_pass();
        assert_eq!(
            report,
            PassReport {
                completed: 1,
                polled: 1,
                woken: 1
            }
        );
        // Nothing runnable: an empty pass.
        let report = sched.run_pass();
        assert_eq!(report, PassReport::default());
    }

    #[test]
    fn completion_waker_fires_on_task_exit() {
        let sched = Scheduler::new();
        let slow = sched.spawn("slow", async {
            yield_once().await;
            9u8
        });
        let waiter = sched.spawn("waiter", {
            let slow = slow.clone();
            async move {
                std::future::poll_fn(|cx| {
                    if slow.is_complete() {
                        Poll::Ready(())
                    } else {
                        slow.register_completion_waker(cx.waker());
                        Poll::Pending
                    }
                })
                .await;
                slow.take_result()
            }
        });
        for _ in 0..5 {
            sched.poll_once();
        }
        assert_eq!(waiter.take_result(), Some(Some(9)));
    }

    #[test]
    fn live_counter_tracks_spawn_and_complete() {
        let sched = Scheduler::new();
        assert_eq!(sched.live_tasks(), 0);
        let _a = sched.spawn("a", async {
            yield_once().await;
        });
        let _b = sched.spawn("b", async {});
        assert_eq!(sched.live_tasks(), 2);
        sched.poll_once();
        assert_eq!(sched.live_tasks(), 1);
        sched.poll_once();
        assert_eq!(sched.live_tasks(), 0);
    }
}
