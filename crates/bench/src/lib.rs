//! Experiment harness for the paper reproduction.
//!
//! Each bench under `benches/` regenerates one experiment from
//! `DESIGN.md` §5 (one per figure, table, or quantitative claim in the
//! paper). The benches print the paper-shaped result tables once, then
//! hand representative kernels to Criterion for wall-clock measurement.
//! `EXPERIMENTS.md` records the expected shapes and the measured outputs.

pub mod cachesim;
pub mod echo;
pub mod httpframe;
pub mod loadgen;
pub mod table;
pub mod workload;

pub use cachesim::{CoreCaches, SteeringPolicy};
pub use echo::{
    catnap_udp_echo, catnap_udp_echo_with_cost, catnip_udp_echo, mtcp_echo_world, EchoStats,
};
pub use loadgen::{closed_loop, open_loop, open_loop_point, LoadResult};
pub use table::Table;
pub use workload::ZipfKeys;
