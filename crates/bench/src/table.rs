//! Plain-text result tables, printed once per bench run.

/// A fixed-width table builder.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: &str, headers: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            headers: headers.iter().map(|h| h.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: &[String]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells.to_vec());
    }

    /// Renders the table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = format!("\n=== {} ===\n", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the table to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(&["short".into(), "1".into()]);
        t.row(&["much longer name".into(), "12345".into()]);
        let s = t.render();
        assert!(s.contains("=== demo ==="));
        assert!(s.contains("much longer name"));
    }

    #[test]
    #[should_panic(expected = "row arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(&["only-one".into()]);
    }
}
