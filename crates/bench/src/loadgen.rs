//! Closed- and open-loop load generators for E15 (tail latency).
//!
//! Both drivers run a UDP echo workload on virtual time and record
//! per-request latency into a `demi_telemetry` histogram. The closed
//! loop keeps a fixed number of outstanding requests (each worker fires
//! its next request only after its reply lands) and measures RTT. The
//! open loop schedules Poisson arrivals up front and measures *sojourn*
//! time from the scheduled arrival instant — not from the send — so a
//! request delayed behind a queue is charged for its wait (no
//! coordinated omission).

use std::cell::RefCell;
use std::rc::Rc;

use demi_telemetry::hist::Histogram;
use demi_telemetry::loadgen::{poisson_schedule, CurvePoint};
use demikernel::libos::{LibOs, SocketKind};
use demikernel::runtime::Runtime;
use demikernel::testing::host_ip;
use demikernel::types::{OperationResult, Sga};
use net_stack::types::SocketAddr;
use sim_fabric::SimTime;

/// UDP port the echo server listens on.
pub const ECHO_PORT: u16 = 7;
/// First client port used by closed-loop workers.
const CLOSED_BASE_PORT: u16 = 9000;
/// First client port used by open-loop request coroutines.
const OPEN_BASE_PORT: u16 = 20000;

/// One load-generator run: the latency histogram plus how long the run
/// took in virtual nanoseconds (for throughput).
pub struct LoadResult {
    /// Per-request latency (RTT for closed loop, sojourn for open loop).
    pub hist: Histogram,
    /// Virtual time the measured phase spanned.
    pub elapsed_ns: u64,
}

impl LoadResult {
    /// Achieved request rate over the measured phase.
    pub fn achieved_ops_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.hist.count() as f64 * 1e9 / self.elapsed_ns as f64
    }
}

/// Binds the server socket and warms ARP with one throwaway round so the
/// measured phase starts with resolved neighbors. Returns the server qd.
fn warm_echo_pair<L: LibOs>(client: &L, server: &L) -> demikernel::types::QDesc {
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server
        .bind(sqd, SocketAddr::new(host_ip(2), ECHO_PORT))
        .unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 8999)).unwrap();
    client
        .pushto(
            cqd,
            &Sga::from_slice(b"warm"),
            SocketAddr::new(host_ip(2), ECHO_PORT),
        )
        .unwrap();
    let (from, _) = server.blocking_pop(sqd).unwrap().expect_pop();
    // Echo the warm packet back so the server side resolves the client
    // too; the reply is drained before measurement starts.
    server
        .pushto(sqd, &Sga::from_slice(b"warm"), from.unwrap())
        .unwrap();
    let _ = client.blocking_pop(cqd).unwrap();
    let _ = client.close(cqd);
    sqd
}

/// Spawns the echo server coroutine: pops exactly `total` requests and
/// reflects each back to its sender, then closes the socket.
fn spawn_echo_server<L: LibOs + Clone + 'static>(
    rt: &Runtime,
    server: &L,
    sqd: demikernel::types::QDesc,
    total: usize,
) {
    let server = server.clone();
    rt.spawn_background("loadgen::echo_server", async move {
        let rt = server.runtime().clone();
        for _ in 0..total {
            let pop = server.pop(sqd).unwrap();
            let OperationResult::Pop { from, sga } = rt.await_op(pop).await else {
                break;
            };
            let push = server.pushto(sqd, &sga, from.unwrap()).unwrap();
            rt.await_op(push).await;
        }
        let _ = server.close(sqd);
    });
}

/// Closed-loop echo: `concurrency` workers each run `rounds` sequential
/// request/response pairs, recording the RTT of every pair.
///
/// `concurrency == 1` measures the *unloaded* RTT — the floor every
/// open-loop curve is compared against.
pub fn closed_loop<L: LibOs + Clone + 'static>(
    rt: &Runtime,
    client: &L,
    server: &L,
    size: usize,
    concurrency: usize,
    rounds: usize,
) -> LoadResult {
    let sqd = warm_echo_pair(client, server);
    spawn_echo_server(rt, server, sqd, concurrency * rounds);

    let hist = Rc::new(RefCell::new(Histogram::new()));
    let server_addr = SocketAddr::new(host_ip(2), ECHO_PORT);
    let t0 = rt.now();
    let mut tokens = Vec::with_capacity(concurrency);
    for worker in 0..concurrency {
        let qd = client.socket(SocketKind::Udp).unwrap();
        client
            .bind(
                qd,
                SocketAddr::new(host_ip(1), CLOSED_BASE_PORT + worker as u16),
            )
            .unwrap();
        let client = client.clone();
        let hist = hist.clone();
        tokens.push(rt.spawn_op("loadgen::closed_worker", async move {
            let rt = client.runtime().clone();
            let payload = vec![0xA5u8; size];
            for _ in 0..rounds {
                let start = rt.now();
                let push = client
                    .pushto(qd, &Sga::from_slice(&payload), server_addr)
                    .unwrap();
                rt.await_op(push).await;
                let pop = client.pop(qd).unwrap();
                let OperationResult::Pop { .. } = rt.await_op(pop).await else {
                    panic!("closed-loop worker lost its reply");
                };
                hist.borrow_mut()
                    .record(rt.now().saturating_since(start).as_nanos());
            }
            let _ = client.close(qd);
            OperationResult::Push
        }));
    }
    rt.wait_all(&tokens, None).unwrap();
    let elapsed_ns = rt.now().saturating_since(t0).as_nanos();
    let hist = hist.borrow().clone();
    LoadResult { hist, elapsed_ns }
}

/// Open-loop echo: `count` Poisson arrivals at `rate_per_sec`, each a
/// fresh coroutine on its own socket that sleeps until its scheduled
/// instant, fires one request, and records sojourn time measured from
/// the *schedule*, not the send.
pub fn open_loop<L: LibOs + Clone + 'static>(
    rt: &Runtime,
    client: &L,
    server: &L,
    size: usize,
    rate_per_sec: f64,
    count: usize,
    seed: u64,
) -> LoadResult {
    let sqd = warm_echo_pair(client, server);
    spawn_echo_server(rt, server, sqd, count);

    let start_ns = rt.now().as_nanos();
    let schedule = poisson_schedule(seed, start_ns, rate_per_sec, count);
    let hist = Rc::new(RefCell::new(Histogram::new()));
    let server_addr = SocketAddr::new(host_ip(2), ECHO_PORT);
    let mut tokens = Vec::with_capacity(count);
    for (i, &arrival_ns) in schedule.iter().enumerate() {
        let qd = client.socket(SocketKind::Udp).unwrap();
        client
            .bind(qd, SocketAddr::new(host_ip(1), OPEN_BASE_PORT + i as u16))
            .unwrap();
        let client = client.clone();
        let hist = hist.clone();
        tokens.push(rt.spawn_op("loadgen::open_request", async move {
            let rt = client.runtime().clone();
            rt.timers()
                .sleep_until(SimTime::from_nanos(arrival_ns))
                .await;
            let payload = vec![0xA5u8; size];
            let push = client
                .pushto(qd, &Sga::from_slice(&payload), server_addr)
                .unwrap();
            rt.await_op(push).await;
            let pop = client.pop(qd).unwrap();
            let OperationResult::Pop { .. } = rt.await_op(pop).await else {
                panic!("open-loop request lost its reply");
            };
            // Sojourn from the scheduled arrival: a request that queued
            // behind a burst is charged for the wait it caused others
            // to observe — the open-loop fix for coordinated omission.
            hist.borrow_mut()
                .record(rt.now().as_nanos().saturating_sub(arrival_ns));
            let _ = client.close(qd);
            OperationResult::Push
        }));
    }
    rt.wait_all(&tokens, None).unwrap();
    let last_arrival = *schedule.last().unwrap_or(&start_ns);
    let elapsed_ns = rt
        .now()
        .as_nanos()
        .saturating_sub(start_ns)
        .max(last_arrival.saturating_sub(start_ns));
    let hist = hist.borrow().clone();
    LoadResult { hist, elapsed_ns }
}

/// Runs one open-loop rate and folds it into a curve point.
pub fn open_loop_point<L: LibOs + Clone + 'static>(
    rt: &Runtime,
    client: &L,
    server: &L,
    size: usize,
    rate_per_sec: f64,
    count: usize,
    seed: u64,
) -> CurvePoint {
    let run = open_loop(rt, client, server, size, rate_per_sec, count, seed);
    CurvePoint::from_histogram(rate_per_sec, run.elapsed_ns, &run.hist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use demikernel::testing::{catnap_pair, catnip_pair};

    #[test]
    fn closed_loop_records_every_round() {
        let (rt, _fabric, client, server) = catnip_pair(77);
        let res = closed_loop(&rt, &client, &server, 64, 2, 8);
        assert_eq!(res.hist.count(), 16);
        assert!(res.hist.min() > 0);
        assert!(res.elapsed_ns > 0);
        assert!(res.achieved_ops_per_sec() > 0.0);
    }

    #[test]
    fn open_loop_records_every_arrival() {
        let (rt, _fabric, client, server) = catnip_pair(78);
        let res = open_loop(&rt, &client, &server, 64, 50_000.0, 32, 9);
        assert_eq!(res.hist.count(), 32);
        assert!(res.hist.p99() >= res.hist.p50());
    }

    #[test]
    fn open_loop_low_rate_tracks_unloaded_rtt() {
        let (rt, _fabric, client, server) = catnip_pair(79);
        let unloaded = closed_loop(&rt, &client, &server, 64, 1, 32);
        let (rt2, _fabric2, client2, server2) = catnip_pair(79);
        // 1k ops/s is far below capacity: sojourn ≈ RTT.
        let light = open_loop(&rt2, &client2, &server2, 64, 1_000.0, 32, 9);
        assert!(
            light.hist.p99() <= 2 * unloaded.hist.p99().max(1),
            "light open-loop p99 {} vs unloaded p99 {}",
            light.hist.p99(),
            unloaded.hist.p99()
        );
    }

    #[test]
    fn kernel_baseline_runs_the_same_driver() {
        let (rt, _fabric, client, server) = catnap_pair(80);
        let res = closed_loop(&rt, &client, &server, 64, 1, 8);
        assert_eq!(res.hist.count(), 8);
    }
}
