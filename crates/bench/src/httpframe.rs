//! An HTTP-like framer: the §5.2 alternative to libOS-inserted framing.
//!
//! "Alternatively, the libOS could use framing available in an existing
//! protocol (e.g., HTTPS, REST), but this approach trades off libOS
//! generality." This module implements the minimal HTTP-shaped framing
//! (headers terminated by CRLFCRLF, Content-Length body) so experiment E9
//! can compare parse cost and byte overhead against the 8-byte
//! length-prefix framing in [`net_stack::framing`].

/// Encodes one message as an HTTP-like request.
pub fn encode_http(payload: &[u8]) -> Vec<u8> {
    let header = format!(
        "POST /queue HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        payload.len()
    );
    let mut out = header.into_bytes();
    out.extend_from_slice(payload);
    out
}

/// Incremental HTTP-like decoder.
#[derive(Default)]
pub struct HttpDecoder {
    buffer: Vec<u8>,
    /// Parse statistics: bytes scanned looking for header terminators.
    pub bytes_scanned: u64,
    /// Messages produced.
    pub messages: u64,
}

impl HttpDecoder {
    /// Creates an empty decoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds received bytes.
    pub fn push(&mut self, data: &[u8]) {
        self.buffer.extend_from_slice(data);
    }

    /// Attempts to extract the next message body.
    pub fn next_message(&mut self) -> Option<Vec<u8>> {
        // Scan for the header terminator (the cost length-prefixing avoids).
        let mut header_end = None;
        for i in 0..self.buffer.len().saturating_sub(3) {
            self.bytes_scanned += 1;
            if &self.buffer[i..i + 4] == b"\r\n\r\n" {
                header_end = Some(i + 4);
                break;
            }
        }
        let header_end = header_end?;
        let header = &self.buffer[..header_end];
        let text = std::str::from_utf8(header).ok()?;
        let len: usize = text
            .lines()
            .find_map(|l| l.strip_prefix("Content-Length: "))
            .and_then(|v| v.trim().parse().ok())?;
        if self.buffer.len() < header_end + len {
            return None;
        }
        let body = self.buffer[header_end..header_end + len].to_vec();
        self.buffer.drain(..header_end + len);
        self.messages += 1;
        Some(body)
    }

    /// Wire overhead of one message of `payload_len` bytes.
    pub fn overhead(payload_len: usize) -> usize {
        encode_http(&vec![0u8; payload_len]).len() - payload_len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_messages() {
        let mut dec = HttpDecoder::new();
        dec.push(&encode_http(b"first body"));
        dec.push(&encode_http(b"second"));
        assert_eq!(dec.next_message().unwrap(), b"first body");
        assert_eq!(dec.next_message().unwrap(), b"second");
        assert!(dec.next_message().is_none());
    }

    #[test]
    fn partial_messages_wait() {
        let wire = encode_http(b"split payload");
        let mut dec = HttpDecoder::new();
        dec.push(&wire[..10]);
        assert!(dec.next_message().is_none());
        dec.push(&wire[10..]);
        assert_eq!(dec.next_message().unwrap(), b"split payload");
    }

    #[test]
    fn overhead_dwarfs_length_prefix() {
        assert!(HttpDecoder::overhead(64) > net_stack::framing::FRAME_HEADER_LEN * 4);
    }
}
