//! Workload generators.

use rand::distributions::Distribution;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A Zipf-distributed key stream (the classic skewed KV workload).
pub struct ZipfKeys {
    rng: StdRng,
    cdf: Vec<f64>,
}

impl ZipfKeys {
    /// `n` keys with skew `theta` (0 = uniform, ~0.99 = YCSB-hot).
    pub fn new(seed: u64, n: usize, theta: f64) -> Self {
        let mut weights: Vec<f64> = (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        ZipfKeys {
            rng: StdRng::seed_from_u64(seed),
            cdf: weights,
        }
    }

    /// Draws the next key (0-based rank; rank 0 is hottest).
    pub fn next_key(&mut self) -> u64 {
        let u: f64 = rand::distributions::Uniform::new(0.0, 1.0).sample(&mut self.rng);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) | Err(i) => i as u64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let mut a = ZipfKeys::new(1, 1000, 0.99);
        let mut b = ZipfKeys::new(1, 1000, 0.99);
        let mut hot = 0;
        for _ in 0..10_000 {
            let k = a.next_key();
            assert_eq!(k, b.next_key(), "same seed, same stream");
            if k < 100 {
                hot += 1;
            }
        }
        assert!(hot > 5_000, "top 10% of keys got {hot}/10000 accesses");
    }

    #[test]
    fn uniform_theta_zero_is_flat() {
        let mut z = ZipfKeys::new(2, 10, 0.0);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[z.next_key() as usize] += 1;
        }
        assert!(counts.iter().all(|&c| c > 700), "{counts:?}");
    }
}
