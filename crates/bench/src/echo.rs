//! Echo-workload runners shared by E1, E2, and E8.

use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnip_pair, host_ip};
use demikernel::types::Sga;
use dpdk_sim::{DpdkPort, PortConfig};
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, StackConfig};
use posix_sim::{MtcpConfig, MtcpSim};
use sim_fabric::{Fabric, MacAddress, SimTime};

/// Results of an echo run.
#[derive(Debug, Clone, Copy)]
pub struct EchoStats {
    /// Mean round-trip time in virtual nanoseconds.
    pub mean_rtt: SimTime,
    /// Kernel crossings per request (both hosts).
    pub crossings_per_req: f64,
    /// Payload copies per request (both hosts).
    pub copies_per_req: f64,
}

/// Runs `rounds` UDP echo RTTs of `size` bytes over catnip.
pub fn catnip_udp_echo(seed: u64, size: usize, rounds: u32) -> EchoStats {
    let (rt, _fabric, client, server) = catnip_pair(seed);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();
    let payload = vec![0xA5u8; size];

    // Warm ARP.
    client
        .pushto(
            cqd,
            &Sga::from_slice(b"warm"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let (from, _) = server.blocking_pop(sqd).unwrap().expect_pop();

    rt.metrics().reset();
    let t0 = rt.now();
    for _ in 0..rounds {
        client
            .pushto(
                cqd,
                &Sga::from_slice(&payload),
                SocketAddr::new(host_ip(2), 7),
            )
            .unwrap();
        let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        server.pushto(sqd, &sga, from.unwrap()).unwrap();
        let _ = client.blocking_pop(cqd).unwrap();
    }
    let elapsed = rt.now().saturating_since(t0);
    let m = rt.metrics().snapshot();
    EchoStats {
        mean_rtt: SimTime::from_nanos(elapsed.as_nanos() / rounds as u64),
        crossings_per_req: m.data_path_syscalls as f64 / rounds as f64,
        copies_per_req: m.copies as f64 / rounds as f64,
    }
}

/// Runs `rounds` UDP echo RTTs of `size` bytes over the kernel baseline.
pub fn catnap_udp_echo(seed: u64, size: usize, rounds: u32) -> EchoStats {
    catnap_udp_echo_with_cost(seed, size, rounds, posix_sim::CostModel::default())
}

/// Kernel-baseline echo with an explicit cost model — the ablation that
/// separates crossing costs from copy costs.
pub fn catnap_udp_echo_with_cost(
    seed: u64,
    size: usize,
    rounds: u32,
    cost: posix_sim::CostModel,
) -> EchoStats {
    use demikernel::libos::catnap::Catnap;
    use demikernel::runtime::Runtime;
    let fabric = Fabric::new(seed);
    let rt = Runtime::with_fabric(fabric.clone());
    let client = Catnap::with_cost_model(
        &rt,
        &fabric,
        MacAddress::from_last_octet(1),
        host_ip(1),
        cost,
    );
    let server = Catnap::with_cost_model(
        &rt,
        &fabric,
        MacAddress::from_last_octet(2),
        host_ip(2),
        cost,
    );
    run_catnap_echo(&rt, &client, &server, size, rounds)
}

fn run_catnap_echo(
    rt: &demikernel::runtime::Runtime,
    client: &demikernel::libos::catnap::Catnap,
    server: &demikernel::libos::catnap::Catnap,
    size: usize,
    rounds: u32,
) -> EchoStats {
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();
    let payload = vec![0xA5u8; size];

    client
        .pushto(
            cqd,
            &Sga::from_slice(b"warm"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let (from, _) = server.blocking_pop(sqd).unwrap().expect_pop();

    client.sim_kernel().reset_stats();
    server.sim_kernel().reset_stats();
    let t0 = rt.now();
    for _ in 0..rounds {
        client
            .pushto(
                cqd,
                &Sga::from_slice(&payload),
                SocketAddr::new(host_ip(2), 7),
            )
            .unwrap();
        let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        server.pushto(sqd, &sga, from.unwrap()).unwrap();
        let _ = client.blocking_pop(cqd).unwrap();
    }
    let elapsed = rt.now().saturating_since(t0);
    let ck = client.kernel_stats().unwrap();
    let sk = server.kernel_stats().unwrap();
    EchoStats {
        mean_rtt: SimTime::from_nanos(elapsed.as_nanos() / rounds as u64),
        crossings_per_req: (ck.syscalls + sk.syscalls) as f64 / rounds as f64,
        copies_per_req: (ck.copies + sk.copies) as f64 / rounds as f64,
    }
}

/// Runs `rounds` TCP echo RTTs over an mTCP-style batched user stack
/// (client side batched; plain in-kernel-style server for symmetry with
/// the related-work comparison).
pub fn mtcp_echo_world(seed: u64, size: usize, rounds: u32, epoch: SimTime) -> EchoStats {
    let fabric = Fabric::new(seed);
    let server_port = DpdkPort::new(&fabric, PortConfig::basic(MacAddress::from_last_octet(2)));
    let server = NetworkStack::new(server_port, fabric.clock(), StackConfig::new(host_ip(2)));
    let client_port = DpdkPort::new(&fabric, PortConfig::basic(MacAddress::from_last_octet(1)));
    let client_stack = NetworkStack::new(client_port, fabric.clock(), StackConfig::new(host_ip(1)));
    let mut mtcp = MtcpSim::new(client_stack, fabric.clock(), MtcpConfig { epoch });

    // Settle helper (no shared Runtime here: mtcp is its own world).
    let settle = |mtcp: &mut MtcpSim, until: &mut dyn FnMut(&mut MtcpSim) -> bool| {
        for _ in 0..1_000_000 {
            mtcp.poll();
            server.poll();
            if until(mtcp) {
                return;
            }
            if fabric.advance_to_next_event() {
                continue;
            }
            let deadline = [mtcp.next_deadline(), server.next_deadline()]
                .into_iter()
                .flatten()
                .min();
            match deadline {
                Some(t) => fabric.clock().advance_to(t),
                None => return,
            }
        }
        panic!("mtcp echo world did not settle");
    };

    let lid = server.tcp_listen(80, 16).unwrap();
    let conn = mtcp.connect(SocketAddr::new(host_ip(2), 80)).unwrap();
    settle(&mut mtcp, &mut |m| m.is_established(conn));
    let mut sconn = None;
    settle(&mut mtcp, &mut |_| {
        sconn = server.tcp_accept(lid).unwrap();
        sconn.is_some()
    });
    let sconn = sconn.unwrap();

    let payload = vec![0xA5u8; size];
    let mut buf = vec![0u8; size.max(64)];
    let t0 = fabric.clock().now();
    for _ in 0..rounds {
        mtcp.send(conn, &payload).unwrap();
        // Server echoes at stream level.
        let mut echoed = 0;
        settle(&mut mtcp, &mut |_| {
            while let Ok(Some(chunk)) = server.tcp_recv(sconn) {
                echoed += chunk.len();
                server.tcp_send(sconn, chunk).unwrap();
            }
            echoed >= size
        });
        // Client drains the echo through the batched receive path.
        let mut got = 0;
        settle(&mut mtcp, &mut |m| {
            while let Some(n) = m.recv(conn, &mut buf) {
                got += n;
            }
            got >= size
        });
    }
    let elapsed = fabric.clock().now().saturating_since(t0);
    let meter = mtcp.meter().stats();
    EchoStats {
        mean_rtt: SimTime::from_nanos(elapsed.as_nanos() / rounds as u64),
        crossings_per_req: meter.syscalls as f64 / rounds as f64, // Zero.
        copies_per_req: meter.copies as f64 / rounds as f64,
    }
}
