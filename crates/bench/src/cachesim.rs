//! Per-core cache simulation for the steering experiment (E6).
//!
//! Paper §4.3 (citing FlexNIC): filters "can improve cache utilization by
//! steering I/O to CPUs based on application-specific parameters (e.g.,
//! keys in a key-value store)". The model: each core has an LRU cache of
//! hot items; a steering policy assigns each request to a core; hits
//! happen when the key is already resident on that core.

use std::collections::VecDeque;

/// How requests are spread over cores.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SteeringPolicy {
    /// Flow-hash spreading (RSS): a request lands on the core its client
    /// connection hashes to — unrelated to the key.
    Rss,
    /// Application-specific steering: the key chooses the core, so each
    /// key has one home cache.
    ByKey,
}

struct LruCache {
    entries: VecDeque<u64>,
    capacity: usize,
}

impl LruCache {
    fn access(&mut self, key: u64) -> bool {
        if let Some(pos) = self.entries.iter().position(|&k| k == key) {
            let k = self.entries.remove(pos).expect("position found");
            self.entries.push_front(k);
            return true;
        }
        if self.entries.len() == self.capacity {
            self.entries.pop_back();
        }
        self.entries.push_front(key);
        false
    }
}

/// A bank of per-core LRU caches.
pub struct CoreCaches {
    cores: Vec<LruCache>,
    hits: u64,
    accesses: u64,
}

impl CoreCaches {
    /// `num_cores` caches of `capacity` entries each.
    pub fn new(num_cores: usize, capacity: usize) -> Self {
        CoreCaches {
            cores: (0..num_cores)
                .map(|_| LruCache {
                    entries: VecDeque::new(),
                    capacity,
                })
                .collect(),
            hits: 0,
            accesses: 0,
        }
    }

    /// Routes a request for `key` from `flow` under `policy` and records
    /// the cache outcome.
    pub fn access(&mut self, policy: SteeringPolicy, key: u64, flow: u64) {
        let n = self.cores.len() as u64;
        let core = match policy {
            SteeringPolicy::Rss => (mix(flow) % n) as usize,
            SteeringPolicy::ByKey => (mix(key) % n) as usize,
        };
        self.accesses += 1;
        if self.cores[core].access(key) {
            self.hits += 1;
        }
    }

    /// Hit rate over all accesses.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Total accesses.
    pub fn accesses(&self) -> u64 {
        self.accesses
    }
}

fn mix(mut x: u64) -> u64 {
    // SplitMix64 finalizer.
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_steering_beats_rss_for_hot_keys() {
        let keys = 64u64; // Hot set fits across cores but not in one.
        let mut rss = CoreCaches::new(4, 32);
        let mut steered = CoreCaches::new(4, 32);
        for i in 0..10_000u64 {
            let key = i % keys;
            let flow = i * 7; // Many flows.
            rss.access(SteeringPolicy::Rss, key, flow);
            steered.access(SteeringPolicy::ByKey, key, flow);
        }
        assert!(
            steered.hit_rate() > rss.hit_rate() + 0.2,
            "steered {:.2} vs rss {:.2}",
            steered.hit_rate(),
            rss.hit_rate()
        );
    }

    #[test]
    fn lru_evicts_cold_entries() {
        let mut caches = CoreCaches::new(1, 2);
        caches.access(SteeringPolicy::ByKey, 1, 0);
        caches.access(SteeringPolicy::ByKey, 2, 0);
        caches.access(SteeringPolicy::ByKey, 3, 0); // Evicts 1.
        caches.access(SteeringPolicy::ByKey, 1, 0); // Miss again.
        assert_eq!(caches.hit_rate(), 0.0);
        caches.access(SteeringPolicy::ByKey, 1, 0); // Now resident.
        assert!(caches.hit_rate() > 0.0);
    }
}
