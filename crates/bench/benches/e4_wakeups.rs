//! E4 — §4.4: "wait wakes exactly one thread on each pop completion, so
//! there are never wasted wake ups for threads with no data to process" —
//! vs epoll's level-triggered wake-all plus the extra read syscall.
//!
//! Regenerates: wakeups, wasted wakeups, and post-wakeup syscalls for W
//! concurrent waiters consuming M completions.

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnip_pair, host_ip};
use demikernel::types::Sga;
use dpdk_sim::{DpdkPort, PortConfig};
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, StackConfig};
use posix_sim::epoll::EpollRegistry;
use posix_sim::{CostModel, KernelSockets, SimKernel};
use sim_fabric::{Fabric, MacAddress};

/// The epoll herd: W waiter "threads", level-triggered readiness, one
/// consumer wins each message. Returns (wakeups, wasted, post_syscalls).
fn epoll_herd(waiters: usize, messages: usize) -> (u64, u64, u64) {
    let fabric = Fabric::new(41);
    let mk = |fabric: &Fabric, last: u8| {
        let port = DpdkPort::new(fabric, PortConfig::basic(MacAddress::from_last_octet(last)));
        let stack = NetworkStack::new(port, fabric.clock(), StackConfig::new(host_ip(last)));
        KernelSockets::new(SimKernel::new(fabric.clock(), CostModel::default()), stack)
    };
    let mut sender = mk(&fabric, 1);
    let mut receiver = mk(&fabric, 2);
    let mut epoll = EpollRegistry::new();
    let tx = sender.udp_socket(1000).unwrap();
    let rx = receiver.udp_socket(2000).unwrap();
    let ep = epoll.create(&mut receiver);
    epoll.add(&mut receiver, ep, rx).unwrap();

    let mut wakeups = 0u64;
    let mut wasted = 0u64;
    let mut post_syscalls = 0u64;
    let mut buf = [0u8; 64];
    for m in 0..messages {
        sender
            .sendto(tx, SocketAddr::new(host_ip(2), 2000), &[m as u8])
            .unwrap();
        // Let the datagram arrive.
        for _ in 0..20 {
            sender.poll();
            receiver.poll();
            if !fabric.advance_to_next_event() {
                break;
            }
        }
        // The herd: all W threads are blocked in epoll_wait when the
        // completion lands, so the kernel wakes ALL of them (they all
        // observe readiness before any consumes)...
        let mut woken = 0;
        for _ in 0..waiters {
            if !epoll.wait(&mut receiver, ep, 8).unwrap().is_empty() {
                woken += 1;
            }
        }
        assert_eq!(woken, waiters, "level-triggered: everyone sees ready");
        wakeups += woken as u64;
        // ...then each issues its own recvfrom; one wins, the rest wasted
        // their wakeup (the paper's exact complaint).
        let mut consumed = false;
        for _ in 0..woken {
            post_syscalls += 1; // The separate recvfrom syscall.
            match receiver.recvfrom(rx, &mut buf).unwrap() {
                Some(_) => consumed = true,
                None => wasted += 1,
            }
        }
        assert!(consumed, "someone must win the race");
    }
    (wakeups, wasted, post_syscalls)
}

/// Demikernel: W waiters each own a pop qtoken; each completion resolves
/// exactly one. Returns (wakeups, wasted).
fn demikernel_waiters(waiters: usize, messages: usize) -> (u64, u64) {
    let (rt, _fabric, client, server) = catnip_pair(42);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();
    // Warm ARP.
    client
        .pushto(cqd, &Sga::from_slice(b"w"), SocketAddr::new(host_ip(2), 7))
        .unwrap();
    let _ = server.blocking_pop(sqd).unwrap();
    rt.metrics().reset();

    // W outstanding pops — the W "waiter threads".
    let mut tokens: Vec<_> = (0..waiters).map(|_| server.pop(sqd).unwrap()).collect();
    let mut delivered = 0;
    while delivered < messages {
        client
            .pushto(
                cqd,
                &Sga::from_slice(&[delivered as u8]),
                SocketAddr::new(host_ip(2), 7),
            )
            .unwrap();
        // One completion wakes exactly one waiter, with the data attached.
        let (idx, result) = server.wait_any(&tokens, None).unwrap();
        let (_, _sga) = result.expect_pop();
        delivered += 1;
        tokens[idx] = server.pop(sqd).unwrap(); // Re-arm that waiter.
    }
    let m = rt.metrics().snapshot();
    // A wakeup without data would show as wakeups > wakeups_with_data.
    (m.wakeups, m.wakeups - m.wakeups_with_data)
}

fn experiment_table() {
    const MESSAGES: usize = 50;
    let mut table = Table::new(
        "E4: wakeups for W waiters consuming 50 completions",
        &[
            "W",
            "epoll wakeups",
            "epoll wasted",
            "epoll extra syscalls",
            "demi wakeups",
            "demi wasted",
        ],
    );
    for &w in &[1usize, 2, 4, 8, 16] {
        let (ew, ewasted, esys) = epoll_herd(w, MESSAGES);
        let (dw, dwasted) = demikernel_waiters(w, MESSAGES);
        // The paper's arithmetic: wake-all wastes (W-1) wakeups/completion.
        assert_eq!(ewasted, ((w - 1) * MESSAGES) as u64);
        assert_eq!(dwasted, 0);
        assert_eq!(dw, MESSAGES as u64);
        table.row(&[
            format!("{w}"),
            format!("{ew}"),
            format!("{ewasted}"),
            format!("{esys}"),
            format!("{dw}"),
            format!("{dwasted}"),
        ]);
    }
    table.print();
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e4_wakeups");
    group.sample_size(10);
    group.bench_function("epoll_herd_w8", |b| {
        b.iter(|| epoll_herd(8, criterion::black_box(20)))
    });
    group.bench_function("wait_any_w8", |b| {
        b.iter(|| demikernel_waiters(8, criterion::black_box(20)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
