//! E17 — device-side offload programs: the host gets out of the data
//! path entirely for the requests a restricted device program can answer.
//!
//! Three A/B pairs, each measuring *host work per operation* (frames the
//! host stack received plus frames it transmitted — every one is a
//! host-device crossing) with and without the offload installed:
//!
//! * **TCP echo**: the NIC short-circuits complete framed echo requests,
//!   generating the reply and the ACK on the device. Asserted: the
//!   offloaded path does ≥80% less host work per op, every op is served
//!   on the device, and device cycles are charged for each.
//! * **KV GET**: the NIC-resident GET cache answers hits from device
//!   memory. Same assertions, against the host-served GET path.
//! * **storage chained lookup**: an N-hop pointer chase is one host
//!   submission with device-side resubmission, vs N submissions for the
//!   host read loop. Asserted: exactly 1 host submission, 0 host-visible
//!   reads, N device hops, and a byte-identical final block.
//!
//! Also asserted: the `Map` device path rewrites frames in place — zero
//! heap allocations and zero copy fallbacks across a burst (the E6
//! filter-path claim, subsumed here for the rewrite path).
//!
//! The device-served echo RTT by payload size is written to
//! `target/bench_e17.json` as a plottable artifact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demi_memory::DemiBuffer;
use demi_telemetry::hist::Histogram;
use demi_telemetry::loadgen::{Curve, CurvePoint};
use demikernel::libos::catnip::Catnip;
use demikernel::libos::{LibOs, SocketKind};
use demikernel::runtime::Runtime;
use demikernel::testing::{catfs_world, catnip_pair, catnip_pair_offload, host_ip};
use demikernel::types::{OperationResult, QDesc, Sga};
use dpdk_sim::{NicProgram, SmartNic};
use net_stack::types::SocketAddr;
use sim_fabric::SimTime;
use spdk_sim::nvme::BLOCK_SIZE;
use spdk_sim::ChainSpec;

/// Counts every heap allocation so the in-place-rewrite claim is
/// measured, not assumed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const ECHO_PORT: u16 = 7;
const KV_PORT: u16 = 6379;
const OPS: usize = 64;
const SEED: u64 = 17;

/// Connects client to a freshly-listening server.
fn tcp_pair(client: &Catnip, server: &Catnip, port: u16) -> (QDesc, QDesc) {
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), port)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), port))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();
    (cqd, sqd)
}

/// One lock-step request: push, await the push, pop one framed reply.
fn request(client: &Catnip, qd: QDesc, req: &[u8]) -> Vec<u8> {
    client.blocking_push(qd, &Sga::from_slice(req)).unwrap();
    let (_, reply) = client.blocking_pop(qd).unwrap().expect_pop();
    reply.to_vec()
}

/// Host-side server loop: echoes on `kv == false`, serves GET/SET on
/// `kv == true` (the device answers first whenever it can).
fn spawn_server(rt: &Runtime, server: &Catnip, sqd: QDesc, kv: Option<HashMap<Vec<u8>, Vec<u8>>>) {
    let server_clone = server.clone();
    let mut store = kv;
    rt.spawn_background("e17-server", async move {
        loop {
            let Ok(pop_qt) = server_clone.pop(sqd) else {
                return;
            };
            let OperationResult::Pop { sga, .. } = server_clone.runtime().await_op(pop_qt).await
            else {
                return;
            };
            let reply = match &mut store {
                None => sga.to_vec(),
                Some(map) => {
                    let req = sga.to_vec();
                    match req.first() {
                        Some(b'G') => match map.get(&req[1..]) {
                            Some(v) => {
                                let mut r = vec![b'V'];
                                r.extend_from_slice(v);
                                r
                            }
                            None => vec![b'N'],
                        },
                        _ => vec![b'E'],
                    }
                }
            };
            let Ok(push_qt) = server_clone.push(sqd, &Sga::from_slice(&reply)) else {
                return;
            };
            let _ = server_clone.runtime().await_op(push_qt).await;
        }
    });
}

/// One measured A/B leg.
struct PathReport {
    /// Server-side host frames (rx + tx) per operation.
    host_frames_per_op: f64,
    /// Device cycles charged during the measured window.
    device_cycles: u64,
    /// Requests served device-side during the measured window.
    device_served: u64,
    /// Per-op round-trip latencies.
    hist: Histogram,
    /// Virtual time the measured window took.
    elapsed_ns: u64,
}

/// Runs `ops` lock-step ops through `work`, accounting server host
/// frames and device counters around the window.
fn measure(rt: &Runtime, server: &Catnip, ops: usize, mut work: impl FnMut(usize)) -> PathReport {
    let port = server.port();
    let p0 = port.stats();
    let n0 = port.smartnic_stats();
    let mut hist = Histogram::new();
    let t0 = rt.now();
    for i in 0..ops {
        let s = rt.now();
        work(i);
        hist.record(rt.now().saturating_since(s).as_nanos());
    }
    let elapsed_ns = rt.now().saturating_since(t0).as_nanos();
    let p1 = port.stats();
    let n1 = port.smartnic_stats();
    PathReport {
        host_frames_per_op: ((p1.rx_frames - p0.rx_frames) + (p1.tx_frames - p0.tx_frames)) as f64
            / ops as f64,
        device_cycles: n1.device_cycles - n0.device_cycles,
        device_served: n1.frames_served - n0.frames_served,
        hist,
        elapsed_ns,
    }
}

/// The TCP echo leg: `offloaded` installs the NIC echo short-circuit.
fn echo_path(offloaded: bool, payload: usize) -> PathReport {
    let (rt, _fabric, client, server) = if offloaded {
        catnip_pair_offload(SEED, 4)
    } else {
        catnip_pair(SEED)
    };
    let (cqd, sqd) = tcp_pair(&client, &server, ECHO_PORT);
    spawn_server(&rt, &server, sqd, None);
    if offloaded {
        server.install_echo_offload(ECHO_PORT).unwrap();
    }
    // Warm one op, then let the flow quiesce so the device (re-)arms.
    let msg = vec![0xA5u8; payload];
    assert_eq!(request(&client, cqd, &msg), msg);
    rt.settle(SimTime::from_micros(50_000));

    measure(&rt, &server, OPS, |i| {
        let msg = vec![i as u8; payload];
        assert_eq!(request(&client, cqd, &msg), msg);
    })
}

/// The KV GET leg: `offloaded` warms the NIC-resident cache so every
/// measured GET is a device hit.
fn kv_path(offloaded: bool) -> PathReport {
    let (rt, _fabric, client, server) = if offloaded {
        catnip_pair_offload(SEED, 4)
    } else {
        catnip_pair(SEED)
    };
    let (cqd, sqd) = tcp_pair(&client, &server, KV_PORT);
    let keys: Vec<(Vec<u8>, Vec<u8>)> = (0..16)
        .map(|k| {
            (
                format!("key{k}").into_bytes(),
                format!("value-{k:032}").into_bytes(),
            )
        })
        .collect();
    spawn_server(&rt, &server, sqd, Some(keys.iter().cloned().collect()));
    if offloaded {
        server.install_kv_offload(KV_PORT, 64 * 1024).unwrap();
        for (k, v) in &keys {
            assert!(server.offload_cache_insert(k, v));
        }
    }
    let probe = request(&client, cqd, b"Gkey0");
    assert_eq!(&probe[..1], b"V");
    rt.settle(SimTime::from_micros(50_000));

    measure(&rt, &server, OPS, |i| {
        let (k, v) = &keys[i % keys.len()];
        let mut req = vec![b'G'];
        req.extend_from_slice(k);
        let reply = request(&client, cqd, &req);
        assert_eq!(&reply[1..], v.as_slice(), "GET must return the value");
    })
}

/// Builds an 8-hop on-disk chain and walks it both ways. Returns
/// (host-loop reads, device-chase reads, chases, device hops, and
/// whether the two walks ended on identical bytes).
fn chase_ab() -> (u64, u64, u64, u64, bool) {
    let (rt, catfs, device) = catfs_world();
    let lbas: [u64; 8] = [100, 205, 3, 77, 150, 42, 9, 1000];
    let qp = device.alloc_qpair();
    for (i, &lba) in lbas.iter().enumerate() {
        let mut block = vec![0u8; BLOCK_SIZE];
        let next = lbas.get(i + 1).copied().unwrap_or(u64::MAX);
        block[0..8].copy_from_slice(&next.to_le_bytes());
        block[16..24].copy_from_slice(&(0xC0FFEE00 + i as u64).to_le_bytes());
        device.submit_write(qp, i as u64 + 1, lba, &block).unwrap();
        while device.in_flight(qp) > 0 {
            if let Some(t) = device.next_deadline() {
                rt.clock().advance_to(t);
            }
            device.poll_completions(qp, 16);
        }
    }
    let spec = ChainSpec {
        start_lba: lbas[0],
        pointer_offset: 0,
        sentinel: u64::MAX,
        max_hops: 32,
    };
    let pop_block = |qt| match rt.wait(qt, None).unwrap() {
        OperationResult::Pop { sga, .. } => sga.to_vec(),
        other => panic!("chase returned {other:?}"),
    };
    let s0 = catfs.device_stats();
    let host_block = pop_block(catfs.chase_host(spec));
    let s1 = catfs.device_stats();
    let dev_block = pop_block(catfs.chase(spec));
    let s2 = catfs.device_stats();
    (
        s1.reads - s0.reads,
        s2.reads - s1.reads,
        s2.chases - s1.chases,
        s2.chase_hops - s1.chase_hops,
        host_block == dev_block,
    )
}

/// The `Map` device path rewrites frames in place: zero heap allocations
/// and zero copy fallbacks across a burst of exclusive buffers.
fn assert_map_device_path_zero_alloc() {
    let mut nic = SmartNic::new(2);
    nic.install(NicProgram::Map {
        transform: Rc::new(|f: &mut [u8]| {
            for b in f.iter_mut() {
                *b = b.wrapping_add(1);
            }
        }),
        cycles_per_frame: 2,
    })
    .unwrap();
    let mut frames: Vec<DemiBuffer> = (0..256)
        .map(|i| DemiBuffer::from_slice(&[i as u8; 64]))
        .collect();
    let before = ALLOCS.load(Ordering::Relaxed);
    for f in frames.iter_mut() {
        nic.process_rx(f, SimTime::ZERO);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    assert_eq!(allocs, 0, "Map must rewrite frames in place, not allocate");
    assert_eq!(
        nic.slot_stats()[0].copy_fallbacks,
        0,
        "exclusive buffers must never trigger the copy fallback"
    );
    println!("paper check: 256 frames mapped on-device with {allocs} heap allocations\n");
}

fn experiment_tables() {
    let mut table = Table::new(
        "E17: host work per op, host-served vs NIC-served (64 ops each)",
        &[
            "path",
            "host frames/op",
            "device served",
            "device cycles",
            "p50 RTT",
        ],
    );
    let mut check = |label: &str, host: &PathReport, dev: &PathReport| {
        for (tag, r) in [("host", host), ("NIC", dev)] {
            table.row(&[
                format!("{label} ({tag})"),
                format!("{:.2}", r.host_frames_per_op),
                format!("{}", r.device_served),
                format!("{}", r.device_cycles),
                format!("{}ns", r.hist.p50()),
            ]);
        }
        assert_eq!(
            dev.device_served, OPS as u64,
            "{label}: every op must be served on the device"
        );
        assert!(
            dev.device_cycles >= dev.device_served,
            "{label}: device-served ops must charge device cycles"
        );
        assert_eq!(host.device_served, 0, "{label}: host path has no device");
        assert!(
            dev.host_frames_per_op <= 0.2 * host.host_frames_per_op,
            "{label}: offload must cut host work per op by >=80% \
             (host {:.2} frames/op, device {:.2})",
            host.host_frames_per_op,
            dev.host_frames_per_op
        );
    };
    let (echo_host, echo_dev) = (echo_path(false, 64), echo_path(true, 64));
    check("TCP echo 64B", &echo_host, &echo_dev);
    let (kv_host, kv_dev) = (kv_path(false), kv_path(true));
    check("KV GET", &kv_host, &kv_dev);
    table.print();

    let (host_reads, dev_reads, chases, hops, same) = chase_ab();
    let mut t2 = Table::new(
        "E17: 8-hop chained lookup — host read loop vs device resubmission",
        &["path", "host submissions", "device hops"],
    );
    t2.row(&["host loop".into(), format!("{host_reads}"), "0".into()]);
    t2.row(&[
        "device chase".into(),
        format!("{chases}"),
        format!("{hops}"),
    ]);
    t2.print();
    assert_eq!(host_reads, 8, "host loop pays one submission per hop");
    assert_eq!(chases, 1, "device chase is exactly one host submission");
    assert_eq!(dev_reads, 0, "device hops are not host-visible reads");
    assert_eq!(hops, 8, "device walks the full chain");
    assert!(same, "both walks must end on identical bytes");
    println!(
        "paper check: 8-hop chase = {host_reads} host submissions on the host \
         loop vs {chases} with device-side resubmission\n"
    );

    // Plottable artifact: device-served echo RTT by payload size.
    let mut curve = Curve::new("E17 NIC-served TCP echo, closed loop; offered = payload bytes");
    for payload in [16usize, 64, 256, 1024] {
        let r = echo_path(true, payload);
        curve.push(CurvePoint::from_histogram(
            payload as f64,
            r.elapsed_ns,
            &r.hist,
        ));
    }
    let json = curve.to_json();
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/bench_e17.json", &json).expect("write curve artifact");
    println!(
        "curve artifact: target/bench_e17.json ({} bytes)",
        json.len()
    );
}

fn bench(c: &mut Criterion) {
    assert_map_device_path_zero_alloc();
    experiment_tables();
    let mut group = c.benchmark_group("e17_offload");
    group.sample_size(10);
    group.bench_function("host_echo_world", |b| {
        b.iter(|| echo_path(criterion::black_box(false), 64))
    });
    group.bench_function("device_echo_world", |b| {
        b.iter(|| echo_path(criterion::black_box(true), 64))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
