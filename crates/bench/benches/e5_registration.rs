//! E5 — §2/§3.1/§4.5: memory registration and receive provisioning.
//!
//! Three parts, matching the paper's sentences:
//! (a) "Applications have to register memory before using it for I/O" —
//!     explicit per-buffer registration cost vs the libOS's pre-registered
//!     pools (transparent registration);
//! (b) "allocating too few buffers causes communication to fail" and
//!     "buffers of the right size" — RDMA receive under-provisioning;
//! (c) "allocating too many buffers wastes memory ... any registered
//!     memory must be pinned" — the pin-vs-allocation-cost trade-off.

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demi_memory::MemoryManager;
use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catcorn_pair, host_ip};
use demikernel::types::Sga;
use net_stack::types::SocketAddr;
use rdma_sim::{device::registration_cost, MrAccess, QpState, RdmaDevice};
use sim_fabric::{Fabric, MacAddress, SimTime};

fn part_a_registration_amortization() {
    const OPS: u64 = 10_000;
    const SIZE: usize = 4096;
    // Explicit path: register + deregister around every I/O buffer, the
    // discipline raw verbs forces on applications.
    let per_op = registration_cost(SIZE);
    let explicit_total = SimTime::from_nanos(per_op.as_nanos() * OPS);
    // Transparent path: the libOS pools pre-register; count actual
    // registrations for the same traffic.
    let mgr = MemoryManager::warmed();
    let warm_regs_before = mgr.region_stats().registrations;
    for _ in 0..OPS {
        let _buf = mgr.alloc(SIZE);
    }
    let transparent_regs = mgr.region_stats().registrations - warm_regs_before;

    let mut table = Table::new(
        "E5a: registration cost for 10k × 4KiB I/O buffers",
        &["strategy", "registrations", "registration time", "per op"],
    );
    table.row(&[
        "explicit (per buffer)".into(),
        format!("{OPS}"),
        format!("{explicit_total}"),
        format!("{per_op}"),
    ]);
    table.row(&[
        "transparent (libOS pools)".into(),
        format!("{transparent_regs}"),
        "0ns (amortized at startup)".into(),
        "0ns".into(),
    ]);
    table.print();
    assert_eq!(transparent_regs, 0);
}

fn part_b_receive_provisioning() {
    // Raw verbs: a sender bursts 8 messages at receivers that posted
    // {0, 4, 8} buffers of {right, too-small} sizes.
    let run = |posted: usize, buf_size: usize| -> (u64, u64, bool) {
        let fabric = Fabric::new(5);
        let a = RdmaDevice::new(&fabric, MacAddress::from_last_octet(1));
        let b = RdmaDevice::new(&fabric, MacAddress::from_last_octet(2));
        let (apd, acq) = (a.alloc_pd(), a.create_cq());
        let aqp = a.create_qp(apd, acq, acq);
        let (bpd, bcq) = (b.alloc_pd(), b.create_cq());
        let bqp = b.create_qp(bpd, bcq, bcq);
        b.listen(18515).unwrap();
        a.connect(aqp, b.mac(), 18515, fabric.clock().now())
            .unwrap();
        for _ in 0..10_000 {
            a.poll(fabric.clock().now());
            b.poll(fabric.clock().now());
            let _ = b.accept(18515, bqp, fabric.clock().now());
            if a.qp_state(aqp) == Ok(QpState::Rts) && b.qp_state(bqp) == Ok(QpState::Rts) {
                break;
            }
            if !fabric.advance_to_next_event() {
                if let Some(t) = [a.next_deadline(), b.next_deadline()]
                    .into_iter()
                    .flatten()
                    .min()
                {
                    fabric.clock().advance_to(t);
                }
            }
        }
        let send_mr = a.register_mr(apd, 8 * 512, MrAccess::LOCAL_ONLY);
        let recv_mr = b.register_mr(bpd, 8 * 4096, MrAccess::LOCAL_ONLY);
        for i in 0..posted {
            b.post_recv(bqp, i as u64, recv_mr, i * 4096, buf_size)
                .unwrap();
        }
        for i in 0..8u64 {
            a.post_send(
                aqp,
                i,
                send_mr,
                (i as usize) * 512,
                512,
                fabric.clock().now(),
            )
            .unwrap();
        }
        let mut ok = 0u64;
        let mut failed = 0u64;
        for _ in 0..500_000 {
            a.poll(fabric.clock().now());
            b.poll(fabric.clock().now());
            for c in a.poll_cq(acq, 16) {
                if c.status.is_ok() {
                    ok += 1;
                } else {
                    failed += 1;
                }
            }
            for _ in b.poll_cq(bcq, 16) {}
            if ok + failed == 8 {
                break;
            }
            if !fabric.advance_to_next_event() {
                match [a.next_deadline(), b.next_deadline()]
                    .into_iter()
                    .flatten()
                    .min()
                {
                    Some(t) => fabric.clock().advance_to(t),
                    None => break,
                }
            }
        }
        let broke = a.qp_state(aqp) == Ok(QpState::Error);
        (ok, failed, broke)
    };

    let mut table = Table::new(
        "E5b: raw RDMA — receiver provisioning for an 8×512B burst",
        &[
            "posted recvs",
            "buffer size",
            "sends ok",
            "sends failed",
            "conn broke",
        ],
    );
    for (posted, size, label) in [
        (8usize, 4096usize, "8 × right size"),
        (4, 4096, "4 × right size (too few)"),
        (8, 256, "8 × too small"),
    ] {
        let (ok, failed, broke) = run(posted, size);
        table.row(&[
            label.into(),
            format!("{size}B"),
            format!("{ok}"),
            format!("{failed}"),
            format!("{broke}"),
        ]);
    }
    table.print();

    // Through catcorn, the same burst just works: the libOS provisioned.
    let (_rt, _fabric, client, server) = catcorn_pair(51);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server
        .bind(lqd, SocketAddr::new(host_ip(2), 18515))
        .unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 18515))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();
    let tokens: Vec<_> = (0..8u64)
        .map(|i| client.push(cqd, &Sga::from_slice(&[i as u8; 512])).unwrap())
        .collect();
    for _ in 0..8 {
        let _ = server.blocking_pop(sqd).unwrap().expect_pop();
    }
    assert!(client
        .wait_all(&tokens, None)
        .unwrap()
        .iter()
        .all(|r| !r.is_failed()));
    println!("through catcorn: 8/8 delivered, 0 RNR — the libOS manages the buffers\n");
}

fn part_c_pin_tradeoff() {
    // Hold H live buffers: pinned bytes grow with provisioning while the
    // cold (registration-bearing) allocation fraction falls.
    let mut table = Table::new(
        "E5c: pinned memory vs registration-bearing allocations (4KiB bufs)",
        &["live buffers", "pinned bytes", "cold allocs", "warm allocs"],
    );
    for &live in &[16usize, 64, 256, 1024] {
        let mgr = MemoryManager::new();
        let mut held = Vec::new();
        for _ in 0..live {
            held.push(mgr.alloc(4096));
        }
        // Steady-state traffic on top of the held set.
        for _ in 0..4096 {
            let _ = mgr.alloc(4096);
        }
        let pool = mgr.pool_stats();
        table.row(&[
            format!("{live}"),
            format!("{}", mgr.region_stats().pinned_bytes),
            format!("{}", pool.cold_allocs),
            format!("{}", pool.warm_allocs),
        ]);
    }
    table.print();
}

fn bench(c: &mut Criterion) {
    part_a_registration_amortization();
    part_b_receive_provisioning();
    part_c_pin_tradeoff();
    let mut group = c.benchmark_group("e5_registration");
    group.sample_size(10);
    let mgr = MemoryManager::warmed();
    group.bench_function("pooled_alloc_4k", |b| {
        b.iter(|| criterion::black_box(mgr.alloc(4096)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
