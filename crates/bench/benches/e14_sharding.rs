//! E14 — RSS flow steering with sharded per-queue stacks and the
//! hierarchical timer wheel.
//!
//! Kernel-bypass stacks scale by giving each core its own NIC queue and
//! its own stack shard, with device RSS steering flows so the data path
//! never coordinates across cores. This experiment drives the sharded
//! catnip stack and checks three claims:
//!
//! * **flow affinity**: a 4-shard pair serving 64 TCP flows sees *zero*
//!   cross-shard demux events (asserted) — the device's RSS hash and the
//!   stack's `shard_for` agree by construction, so every frame lands on
//!   the shard that owns its connection.
//! * **idle connections are free**: 10,000 established-but-idle
//!   connections add < 5% to a single flow's echo RTT (asserted). The
//!   timing wheel charges nothing for parked timers — the wheel counters
//!   stay frozen during the loaded run (asserted) and the virtual-time
//!   RTT is bit-identical to the unloaded one (asserted).
//! * **shard scaling**: for a uniform 64-flow workload, aggregate ops per
//!   unit of modeled per-shard work is ≥ 3× higher with 4 shards than
//!   with 1 (asserted). Makespan is set by the busiest shard; with flows
//!   spread evenly each shard carries ~1/4 of the frames.

use std::net::Ipv4Addr;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demi_memory::DemiBuffer;
use dpdk_sim::{rss, DpdkPort, PortConfig};
use net_stack::tcp::State;
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, StackConfig};
use sim_fabric::{Fabric, MacAddress, SimTime};

const PAYLOAD: usize = 64;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

fn host(fabric: &Fabric, last: u8, queues: u16, sharded: bool) -> NetworkStack {
    let port = DpdkPort::new(
        fabric,
        PortConfig {
            num_rx_queues: queues,
            ..PortConfig::basic(MacAddress::from_last_octet(last))
        },
    );
    NetworkStack::new(
        port,
        fabric.clock(),
        StackConfig {
            sharded,
            ..StackConfig::new(ip(last))
        },
    )
}

/// Runs the world until `until` returns true or the simulation wedges.
fn settle(fabric: &Fabric, stacks: &[&NetworkStack], mut until: impl FnMut() -> bool) {
    for _ in 0..1_000_000 {
        for s in stacks {
            s.poll();
        }
        if until() {
            return;
        }
        if fabric.advance_to_next_event() {
            continue;
        }
        let deadline = stacks.iter().filter_map(|s| s.next_deadline()).min();
        match deadline {
            Some(t) => fabric.clock().advance_to(t),
            None => return, // Fully quiescent.
        }
    }
    panic!("simulation did not settle");
}

// ---------------------------------------------------------------------
// Part 1: flow affinity — 64 TCP flows, zero cross-shard demux.
// ---------------------------------------------------------------------

fn flow_affinity_table() {
    let fabric = Fabric::new(1301);
    let a = host(&fabric, 1, 4, true);
    let b = host(&fabric, 2, 4, true);
    assert_eq!(a.num_shards(), 4);

    let lid = b.tcp_listen(80, 128).unwrap();
    let conns: Vec<_> = (0..64)
        .map(|_| a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap())
        .collect();
    settle(&fabric, &[&a, &b], || {
        conns
            .iter()
            .all(|&c| a.tcp_state(c) == Ok(State::Established))
    });
    let mut accepted = Vec::new();
    settle(&fabric, &[&a, &b], || {
        while let Ok(Some(c)) = b.tcp_accept(lid) {
            accepted.push(c);
        }
        accepted.len() == conns.len()
    });

    for &conn in &conns {
        a.tcp_send(conn, DemiBuffer::from_slice(&[0xA5; PAYLOAD]))
            .unwrap();
    }
    let mut echoed = 0;
    settle(&fabric, &[&a, &b], || {
        for &sc in &accepted {
            if let Ok(Some(chunk)) = b.tcp_recv(sc) {
                b.tcp_send(sc, chunk).unwrap();
            }
        }
        for &conn in &conns {
            if a.tcp_recv(conn).ok().flatten().is_some() {
                echoed += 1;
            }
        }
        echoed == conns.len()
    });

    let mut table = Table::new(
        "E14: 64 TCP echo flows over a 4-shard pair (frames per shard)",
        &["shard", "client rx", "server rx", "mismatches", "handoffs"],
    );
    let mut server_shards_loaded = 0;
    for i in 0..4 {
        let ca = a.shard_stats(i);
        let cb = b.shard_stats(i);
        table.row(&[
            format!("{i}"),
            format!("{}", ca.rx_frames),
            format!("{}", cb.rx_frames),
            format!("{}", ca.steering_mismatches + cb.steering_mismatches),
            format!("{}", ca.handoffs_in + cb.handoffs_in),
        ]);
        for s in [ca, cb] {
            assert_eq!(s.steering_mismatches, 0, "RSS and shard_for agree");
            assert_eq!(s.handoffs_in, 0, "no cross-shard frame traffic");
        }
        if cb.rx_frames > 0 {
            server_shards_loaded += 1;
        }
    }
    table.print();
    assert!(
        server_shards_loaded >= 3,
        "64 flows must load nearly every shard, got {server_shards_loaded}"
    );
    println!("paper check: 64 flows, 0 steering mismatches, 0 cross-shard handoffs\n");
}

// ---------------------------------------------------------------------
// Part 2: idle connections are free — 10k parked conns, one hot flow.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct IdleStats {
    /// Best-of-trials wall-clock cost per echo round.
    wall_ns_per_round: f64,
    /// Virtual time per echo round (deterministic; must not move).
    virt_per_round: SimTime,
    /// Timer-wheel entries fired during the measured rounds.
    timers_fired: u64,
}

fn echo_round(fabric: &Fabric, a: &NetworkStack, b: &NetworkStack) {
    a.udp_sendto(9000, SocketAddr::new(ip(2), 7), &[0xA5; PAYLOAD])
        .unwrap();
    settle(fabric, &[a, b], || b.udp_pending(7) > 0);
    let (from, data) = b.udp_recv_from(7).unwrap();
    b.udp_sendto(7, from, data.as_slice()).unwrap();
    settle(fabric, &[a, b], || a.udp_pending(9000) > 0);
    a.udp_recv_from(9000).unwrap();
}

fn echo_rtt_with_idle(idle: usize, rounds: u32, trials: u32) -> IdleStats {
    let fabric = Fabric::new(2203);
    let a = host(&fabric, 1, 4, true);
    let b = host(&fabric, 2, 4, true);

    if idle > 0 {
        let lid = b.tcp_listen(80, 512).unwrap();
        let mut opened = 0usize;
        let mut accepted = 0usize;
        while opened < idle {
            // Batched so the SYN bursts never overflow the RX rings.
            let batch = 256.min(idle - opened);
            let conns: Vec<_> = (0..batch)
                .map(|_| a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap())
                .collect();
            opened += batch;
            settle(&fabric, &[&a, &b], || {
                conns
                    .iter()
                    .all(|&c| a.tcp_state(c) == Ok(State::Established))
            });
            settle(&fabric, &[&a, &b], || {
                while let Ok(Some(_)) = b.tcp_accept(lid) {
                    accepted += 1;
                }
                accepted == opened
            });
        }
        // Drain every handshake and delayed-ACK timer; from here on the
        // parked connections have nothing scheduled.
        settle(&fabric, &[&a, &b], || false);
    }

    b.udp_bind(7).unwrap();
    a.udp_bind(9000).unwrap();
    echo_round(&fabric, &a, &b); // Warm ARP both ways.

    let wheel_before = net_stack::counters::shard_snapshot();
    let mut best = f64::INFINITY;
    let mut virt_per_round = SimTime::ZERO;
    for _ in 0..trials {
        let wall0 = Instant::now();
        let virt0 = fabric.clock().now();
        for _ in 0..rounds {
            echo_round(&fabric, &a, &b);
        }
        best = best.min(wall0.elapsed().as_secs_f64() * 1e9 / rounds as f64);
        virt_per_round = SimTime::from_nanos(
            fabric.clock().now().saturating_since(virt0).as_nanos() / rounds as u64,
        );
    }
    let timers_fired = net_stack::counters::shard_snapshot()
        .delta(&wheel_before)
        .timers_fired;
    IdleStats {
        wall_ns_per_round: best,
        virt_per_round,
        timers_fired,
    }
}

fn idle_cost_table() {
    const ROUNDS: u32 = 2_000;
    const TRIALS: u32 = 7;
    let unloaded = echo_rtt_with_idle(0, ROUNDS, TRIALS);
    let loaded = echo_rtt_with_idle(10_000, ROUNDS, TRIALS);

    let mut table = Table::new(
        "E14: 1-flow UDP echo RTT with parked TCP connections resident",
        &[
            "idle conns",
            "wall ns/round (best)",
            "virtual RTT",
            "timers fired",
        ],
    );
    for (label, s) in [("0", unloaded), ("10000", loaded)] {
        table.row(&[
            label.into(),
            format!("{:.0}", s.wall_ns_per_round),
            format!("{:?}", s.virt_per_round),
            format!("{}", s.timers_fired),
        ]);
    }
    table.print();

    assert_eq!(
        loaded.virt_per_round, unloaded.virt_per_round,
        "parked connections must not move the virtual-time RTT"
    );
    assert_eq!(
        loaded.timers_fired, 0,
        "parked connections keep the timer wheel silent"
    );
    let ratio = loaded.wall_ns_per_round / unloaded.wall_ns_per_round;
    assert!(
        ratio <= 1.05,
        "10k idle conns must add < 5% to echo RTT, got {ratio:.3}x"
    );
    println!(
        "paper check: 10k idle conns cost {:.1}% extra wall time per echo \
         round (virtual RTT identical)\n",
        (ratio - 1.0) * 100.0
    );
}

// ---------------------------------------------------------------------
// Part 3: shard scaling — uniform 64-flow workload, makespan model.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
struct ShardLoad {
    ops: u64,
    per_shard_frames: Vec<u64>,
}

impl ShardLoad {
    fn total(&self) -> u64 {
        self.per_shard_frames.iter().sum()
    }

    /// Makespan model: shards are cores, per-frame cost is constant, so
    /// completion time is proportional to the busiest shard's frame count.
    fn busiest(&self) -> u64 {
        *self.per_shard_frames.iter().max().unwrap()
    }

    fn ops_per_unit_work(&self) -> f64 {
        self.ops as f64 / self.busiest() as f64
    }
}

/// 16 client ports per RSS bucket: the flow set is uniform per flow *and*
/// spreads evenly across the 4 hash buckets, so the sharded run models a
/// well-balanced RSS deployment.
fn balanced_ports() -> Vec<u16> {
    let mut ports = Vec::new();
    let mut per_bucket = [0usize; 4];
    let mut candidate = 20_000u16;
    while ports.len() < 64 {
        let q = rss::queue_for_tuple(ip(1), candidate, ip(2), 7, 4) as usize;
        if per_bucket[q] < 16 {
            per_bucket[q] += 1;
            ports.push(candidate);
        }
        candidate += 1;
    }
    ports
}

fn uniform_workload(sharded: bool, rounds: usize) -> ShardLoad {
    let queues = if sharded { 4 } else { 1 };
    let fabric = Fabric::new(3407);
    let a = host(&fabric, 1, queues, sharded);
    let b = host(&fabric, 2, queues, sharded);

    b.udp_bind(7).unwrap();
    let ports = balanced_ports();
    for &p in &ports {
        a.udp_bind(p).unwrap();
    }
    let dst = SocketAddr::new(ip(2), 7);
    // Warm ARP in both directions so measurement is pure data frames.
    a.udp_sendto(ports[0], dst, b"warm").unwrap();
    settle(&fabric, &[&a, &b], || b.udp_pending(7) > 0);
    let (from, _) = b.udp_recv_from(7).unwrap();
    b.udp_sendto(7, from, b"warm").unwrap();
    settle(&fabric, &[&a, &b], || a.udp_pending(ports[0]) > 0);
    a.udp_recv_from(ports[0]).unwrap();

    let before: Vec<u64> = (0..b.num_shards())
        .map(|i| b.shard_stats(i).rx_frames)
        .collect();
    let payload = [0x5Au8; PAYLOAD];
    let mut got = 0usize;
    for round in 0..rounds {
        for &p in &ports {
            a.udp_sendto(p, dst, &payload).unwrap();
        }
        settle(&fabric, &[&a, &b], || b.udp_pending(7) == ports.len());
        while let Some((from, data)) = b.udp_recv_from(7) {
            b.udp_sendto(7, from, data.as_slice()).unwrap();
        }
        let want = ports.len() * (round + 1);
        settle(&fabric, &[&a, &b], || {
            for &p in &ports {
                while a.udp_recv_from(p).is_some() {
                    got += 1;
                }
            }
            got == want
        });
    }

    ShardLoad {
        ops: (ports.len() * rounds) as u64,
        per_shard_frames: (0..b.num_shards())
            .map(|i| b.shard_stats(i).rx_frames - before[i])
            .collect(),
    }
}

fn scaling_table() {
    const ROUNDS: usize = 8;
    let four = uniform_workload(true, ROUNDS);
    let one = uniform_workload(false, ROUNDS);

    let mut table = Table::new(
        "E14: uniform 64-flow echo workload, server frames by shard (makespan model)",
        &[
            "shards",
            "ops",
            "frames/shard",
            "busiest",
            "ops per unit work",
        ],
    );
    for (label, load) in [("1", &one), ("4", &four)] {
        table.row(&[
            label.into(),
            format!("{}", load.ops),
            format!("{:?}", load.per_shard_frames),
            format!("{}", load.busiest()),
            format!("{:.3}", load.ops_per_unit_work()),
        ]);
    }
    table.print();

    assert_eq!(
        one.total(),
        four.total(),
        "same workload, same total frame work"
    );
    let speedup = four.ops_per_unit_work() / one.ops_per_unit_work();
    assert!(
        speedup >= 3.0,
        "4 shards must sustain >= 3x aggregate ops per unit work, got {speedup:.2}x"
    );
    println!(
        "paper check: {speedup:.2}x aggregate ops per unit of per-shard work \
         at 4 shards vs 1\n"
    );
}

fn experiment_table() {
    flow_affinity_table();
    idle_cost_table();
    scaling_table();
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e14_sharding");
    group.sample_size(10);
    group.bench_function("uniform_64flows/4_shards", |bch| {
        bch.iter(|| uniform_workload(criterion::black_box(true), 2))
    });
    group.bench_function("uniform_64flows/1_shard", |bch| {
        bch.iter(|| uniform_workload(criterion::black_box(false), 2))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
