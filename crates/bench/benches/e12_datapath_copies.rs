//! E12 — the zero-copy datapath: headroom prepend vs legacy Vec builders.
//!
//! The paper's §3.2/§4.5 architecture promises that a kernel-bypass libOS
//! moves payload bytes zero times between the application and the wire.
//! This experiment checks the promise in both domains:
//!
//! * **counters** (asserted, not just printed): on the catnip UDP echo
//!   path, each packet costs exactly one pool allocation — the
//!   application's own `sgaalloc` — and zero payload-byte copies, TX and
//!   RX combined. Headers are prepended into the buffer's headroom and the
//!   same storage crosses the simulated wire.
//! * **wall clock** (criterion): building a frame by prepending headers in
//!   place vs the legacy `build_datagram`/`build_packet`/`build_frame`
//!   Vec chain (kept behind the `legacy_copy_path` feature), which
//!   allocates three vectors and copies the payload three times per packet.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::net::Ipv4Addr;

use demi_bench::Table;
use demi_memory::{counters, DemiBuffer};
use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnip_pair, host_ip};
use net_stack::eth::{build_frame, EthHeader, EtherType, ETH_HEADER_LEN};
use net_stack::ipv4::{build_packet, IpProtocol, Ipv4Header, IPV4_HEADER_LEN};
use net_stack::stack::MAX_HEADER_LEN;
use net_stack::types::SocketAddr;
use net_stack::udp::{UdpHeader, UDP_HEADER_LEN};
use sim_fabric::MacAddress;

/// Payload size of the headline comparison (a full-MTU-ish Redis value).
const PAYLOAD: usize = 1400;

fn experiment_table() {
    // End to end: the catnip echo path, measured by the demi-memory
    // datapath counters.
    let (_rt, _fabric, client, server) = catnip_pair(512);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();
    for _ in 0..20 {
        let sga = client.sgaalloc(PAYLOAD);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    const ROUNDS: u64 = 200;
    let before = counters::snapshot();
    for _ in 0..ROUNDS {
        let sga = client.sgaalloc(PAYLOAD);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    let d = counters::snapshot().delta(&before);

    let mut table = Table::new(
        "E12: per-packet datapath cost, 1400B UDP, TX+RX combined",
        &["path", "allocs/pkt", "copies/pkt", "bytes copied/pkt"],
    );
    table.row(&[
        "catnip headroom prepend (measured)".into(),
        format!("{:.2}", d.allocs as f64 / ROUNDS as f64),
        format!("{:.2}", d.copies as f64 / ROUNDS as f64),
        format!("{:.0}", d.bytes_copied as f64 / ROUNDS as f64),
    ]);
    // The legacy Vec chain is structural: UDP, IP, and Ethernet builders
    // each allocate a vector and re-copy header+payload, then the device
    // copies the frame into an mbuf.
    table.row(&[
        "legacy Vec builders (by construction)".into(),
        "4.00".into(),
        "4.00".into(),
        format!("{}", 4 * PAYLOAD),
    ]);
    table.print();

    assert_eq!(
        d.allocs, ROUNDS,
        "zero-copy path: exactly one pool allocation per packet"
    );
    assert_eq!(d.copies, 0, "zero-copy path: no payload copies");
    println!(
        "paper check: {} packets, {} allocs, {} payload bytes copied\n",
        ROUNDS, d.allocs, d.bytes_copied
    );
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let src_ip = Ipv4Addr::new(10, 0, 0, 1);
    let dst_ip = Ipv4Addr::new(10, 0, 0, 2);
    let udp = UdpHeader {
        src_port: 9000,
        dst_port: 7,
    };
    let eth = EthHeader {
        dst: MacAddress::from_last_octet(2),
        src: MacAddress::from_last_octet(1),
        ethertype: EtherType::Ipv4,
    };
    let mut group = c.benchmark_group("e12_datapath");
    for &size in &[64usize, 512, PAYLOAD] {
        let data = vec![0xA5u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        // Legacy: three Vec builders, three payload copies per frame.
        group.bench_with_input(
            BenchmarkId::new("legacy_vec_builders", size),
            &size,
            |b, _| {
                b.iter(|| {
                    let dg = udp.build_datagram(src_ip, dst_ip, criterion::black_box(&data));
                    let ip = Ipv4Header {
                        src: src_ip,
                        dst: dst_ip,
                        protocol: IpProtocol::Udp,
                        payload_len: dg.len(),
                    };
                    let pkt = build_packet(&ip, &dg);
                    criterion::black_box(build_frame(&eth, &pkt))
                })
            },
        );
        // Zero-copy: prepend headers into headroom, trim back to reuse the
        // same buffer (steady-state mbuf behavior: no allocation at all).
        let mut buf = DemiBuffer::zeroed_with_headroom(MAX_HEADER_LEN, size);
        buf.try_mut().unwrap().copy_from_slice(&data);
        group.bench_with_input(BenchmarkId::new("headroom_prepend", size), &size, |b, _| {
            b.iter(|| {
                udp.prepend_onto(src_ip, dst_ip, &mut buf).unwrap();
                let ip = Ipv4Header {
                    src: src_ip,
                    dst: dst_ip,
                    protocol: IpProtocol::Udp,
                    payload_len: buf.len(),
                };
                ip.prepend_onto(&mut buf).unwrap();
                eth.prepend_onto(&mut buf).unwrap();
                criterion::black_box(buf.len());
                buf.trim_front(ETH_HEADER_LEN + IPV4_HEADER_LEN + UDP_HEADER_LEN);
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
