//! E19 — the KV server at scale: pipelined zero-copy RESP serving over
//! catnip TCP with group-committed durability.
//!
//! E18 proved the *connection layer* holds 100k established flows with a
//! flat fast path. This experiment stacks the Redis-class application on
//! top (demi-kv: RESP parse → LRU/TTL store → coalesced replies) and
//! checks the four application-level claims:
//!
//! * **pipelining pays**: GET throughput at depth 16 (16 commands per
//!   burst, replies coalesced into one TX pass) is ≥ 4× depth 1 —
//!   asserted, best-of-trials wall clock.
//! * **zero payload copies**: a warmed pipelined GET — parse over RX
//!   views, store lookup, reply sharing the value's buffer — moves zero
//!   payload bytes through `memcpy`, measured by the datapath copy
//!   counters under a counting global allocator (asserted; parser
//!   reassembly fallbacks also asserted zero on the happy path).
//! * **flat under connections**: GET p99 over the same 64 hot
//!   connections stays ≤ 1.5× as the table grows 1k → 100k established
//!   (small absolute floor for wall-clock noise) — asserted.
//! * **acknowledged = durable**: SET bursts group-commit as one catfs
//!   record each; after a crash that loses an *unpushed* batch, replay
//!   rebuilds exactly the acknowledged state — asserted key-for-key.
//!
//! An open-loop Poisson sweep (GET/SET mixes × depths 1 and 16, on
//! virtual time so coordinated omission cannot hide) produces the
//! throughput–latency curve written to `target/e19_kv_server.json`.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demi_kv::log::{apply, decode_batch};
use demi_kv::resp::encode_command;
use demi_kv::store::KvStore;
use demi_kv::{KvConn, KvEngine, KvEngineConfig};
use demi_memory::{counters as mem_counters, DemiBuffer, MemoryManager};
use demi_telemetry::hist::Histogram;
use demi_telemetry::loadgen::{poisson_schedule, Curve, CurvePoint};
use demikernel::libos::catfs::Catfs;
use demikernel::libos::LibOs;
use demikernel::runtime::Runtime;
use demikernel::types::Sga;
use net_stack::tcp::{ConnId, ListenerId, State, TcpConfig, TcpPeer, TcpSegmentOut};
use net_stack::types::SocketAddr;
use sim_fabric::SimTime;
use spdk_sim::nvme::{NvmeConfig, NvmeDevice};

/// Counts every heap allocation so "zero payload copies" is reported
/// alongside the allocator traffic that remains (burst building, reply
/// vectors) rather than conflated with it.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Full scale: 100k server-side connections from 4 client peers. Debug
/// builds run a CI-sized version; `just bench-kv` runs release.
const CONNS: usize = if cfg!(debug_assertions) {
    2_000
} else {
    100_000
};
const SMALL_CONNS: usize = if cfg!(debug_assertions) { 200 } else { 1_000 };
const CLIENTS: usize = 4;
const SAMPLE: usize = 64;
const BACKLOG: usize = if cfg!(debug_assertions) { 64 } else { 256 };
/// Hot key set; every key/value pair is fixed-width so reply sizes are
/// exact and bursts stay inside one MSS (the zero-copy happy path).
const KEYS: usize = 64;
const DEPTH: usize = 16;
/// The paper's Redis figure: ~2µs of application work per request.
const SERVICE_NS: u64 = 2_000;
const PIPE_CMDS: usize = if cfg!(debug_assertions) { 512 } else { 4_096 };
const OPS_WARMUP: usize = 200;
const OPS_PER_TRIAL: usize = if cfg!(debug_assertions) { 200 } else { 1_000 };
const TRIALS: usize = 5;
const ZC_BURSTS: usize = if cfg!(debug_assertions) { 200 } else { 2_000 };
const POISSON_ARRIVALS: usize = if cfg!(debug_assertions) { 300 } else { 2_000 };

fn server_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 2)
}

fn client_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 10 + i as u8)
}

fn key(i: usize) -> Vec<u8> {
    format!("k{:04}", i % KEYS).into_bytes()
}

fn value(i: usize) -> Vec<u8> {
    format!("val-{:04}", i % KEYS).into_bytes()
}

/// GET reply: `$8\r\n` + 8 value bytes + `\r\n`.
const GET_REPLY: usize = 14;
/// SET reply: `+OK\r\n`.
const SET_REPLY: usize = 5;

/// A pipelined burst of `depth` GETs rotating over the hot keys.
/// Returns the RESP bytes and the exact reply size.
fn get_burst(depth: usize, cursor: &mut usize) -> (Vec<u8>, usize) {
    let mut b = Vec::with_capacity(depth * 24);
    for _ in 0..depth {
        encode_command(&mut b, &[b"GET", &key(*cursor)]);
        *cursor += 1;
    }
    (b, depth * GET_REPLY)
}

/// A mixed burst: every 4th command is a SET overwriting a hot key with
/// a same-width value (so GET reply sizes stay exact), the rest GETs.
fn mixed_burst(depth: usize, cursor: &mut usize) -> (Vec<u8>, usize) {
    let mut b = Vec::with_capacity(depth * 40);
    let mut expect = 0;
    for j in 0..depth {
        if j % 4 == 3 {
            encode_command(&mut b, &[b"SET", &key(*cursor), &value(*cursor)]);
            expect += SET_REPLY;
        } else {
            encode_command(&mut b, &[b"GET", &key(*cursor)]);
            expect += GET_REPLY;
        }
        *cursor += 1;
    }
    (b, expect)
}

/// One server peer running the KV engine, [`CLIENTS`] client peers, and
/// the segment scratch that shuttles wire traffic between them.
struct World {
    server: TcpPeer,
    lid: ListenerId,
    clients: Vec<TcpPeer>,
    scratch: Vec<(Ipv4Addr, TcpSegmentOut)>,
    accepted: HashMap<(Ipv4Addr, u16), ConnId>,
    engine: KvEngine,
    conns: HashMap<ConnId, KvConn>,
    now: SimTime,
}

impl World {
    fn new() -> Self {
        let mut server = TcpPeer::new(server_ip(), TcpConfig::default());
        let lid = server.listen(6379, BACKLOG).unwrap();
        let now = SimTime::from_millis(1);
        World {
            server,
            lid,
            clients: (0..CLIENTS)
                .map(|i| TcpPeer::new(client_ip(i), TcpConfig::default()))
                .collect(),
            scratch: Vec::new(),
            accepted: HashMap::new(),
            // Network phases are non-durable: every reply is immediate,
            // so the wire path is measured without a storage device in
            // the loop (the durability claim gets its own phase).
            engine: KvEngine::new(
                KvEngineConfig {
                    byte_budget: 1 << 20,
                    durable: false,
                },
                MemoryManager::new(),
                now,
            ),
            conns: HashMap::new(),
            now,
        }
    }

    /// Delivers all in-flight segments until the wire is quiet.
    fn shuttle(&mut self) {
        for _ in 0..64 {
            let mut quiet = true;
            let mut scratch = std::mem::take(&mut self.scratch);
            for i in 0..CLIENTS {
                self.clients[i].drain_segments(&mut scratch);
                for (_, seg) in scratch.drain(..) {
                    quiet = false;
                    self.server
                        .on_segment(client_ip(i), &seg.header, seg.payload, self.now);
                }
            }
            self.server.drain_segments(&mut scratch);
            for (dst, seg) in scratch.drain(..) {
                quiet = false;
                if let Some(i) = (0..CLIENTS).find(|&i| client_ip(i) == dst) {
                    self.clients[i].on_segment(server_ip(), &seg.header, seg.payload, self.now);
                }
            }
            self.scratch = scratch;
            if quiet {
                return;
            }
        }
        panic!("wire did not go quiet");
    }

    /// Advances virtual time to `target`, firing every timer deadline
    /// (delayed ACKs, compaction) and delivering whatever they emit.
    fn advance_to(&mut self, target: SimTime) {
        loop {
            let next = std::iter::once(self.server.next_deadline())
                .chain(self.clients.iter_mut().map(|c| c.next_deadline()))
                .flatten()
                .min();
            match next {
                Some(t) if t <= target => {
                    self.now = t;
                    self.server.on_tick(t);
                    for c in &mut self.clients {
                        c.on_tick(t);
                    }
                    self.shuttle();
                }
                _ => break,
            }
        }
        self.now = target;
    }

    fn advance_by(&mut self, dt: SimTime) {
        self.advance_to(self.now.saturating_add(dt));
    }

    /// Opens `total` connections split across the client peers in waves
    /// no larger than half the SYN table (see E18).
    fn establish(&mut self, total: usize) -> Vec<(usize, ConnId)> {
        let mut conns = Vec::with_capacity(total);
        let wave = BACKLOG / 2;
        let mut done = 0;
        while done < total {
            let n = wave.min(total - done);
            let start = conns.len();
            for k in 0..n {
                let i = (done + k) % CLIENTS;
                let c = self.clients[i]
                    .connect(SocketAddr::new(server_ip(), 6379), self.now)
                    .unwrap();
                conns.push((i, c));
            }
            self.shuttle();
            self.drain_accepts();
            for &(i, c) in &conns[start..] {
                assert_eq!(
                    self.clients[i].state(c),
                    Ok(State::Established),
                    "handshake wave at {start} must complete"
                );
            }
            done += n;
        }
        conns
    }

    fn drain_accepts(&mut self) {
        while let Ok(Some(s)) = self.server.accept(self.lid) {
            let r = self.server.remote(s).unwrap();
            self.accepted.insert((r.ip, r.port), s);
        }
    }

    /// Pairs every client conn with its accepted server conn and gives
    /// each server conn a RESP parser.
    fn pair(&mut self, conns: &[(usize, ConnId)]) -> Vec<ConnId> {
        conns
            .iter()
            .map(|&(i, c)| {
                let l = self.clients[i].local(c).unwrap();
                let s = self.accepted[&(client_ip(i), l.port)];
                self.conns.entry(s).or_default();
                s
            })
            .collect()
    }

    /// One pipelined KV round trip: the client sends a `depth`-command
    /// burst as one TX, the server drains the WHOLE burst in one engine
    /// pass and coalesces the replies into one TX burst, the client
    /// drains the exact reply bytes. Virtual time then advances by the
    /// burst's application work (`depth · 2µs`, the paper's Redis
    /// figure), firing delayed-ACK timers along the way.
    fn kv_op(&mut self, i: usize, c: ConnId, s: ConnId, burst: Vec<u8>, expect: usize) {
        let depth = {
            // Vec → DemiBuffer takes ownership: building the request
            // costs no datapath copy.
            self.clients[i]
                .send(c, DemiBuffer::from(burst), self.now)
                .unwrap();
            self.shuttle();
            while let Ok(Some(chunk)) = self.server.recv(s) {
                self.conns.get_mut(&s).unwrap().feed(chunk);
            }
            let conn = self.conns.get_mut(&s).unwrap();
            let r = self.engine.drain(conn, self.now);
            assert!(r.batch.is_none(), "non-durable phases never group-commit");
            assert!(!r.disconnect, "benchmark traffic is protocol-clean");
            let depth = r.depth;
            for seg in r.immediate {
                self.server.send(s, seg, self.now).unwrap();
            }
            depth
        };
        self.advance_by(SimTime::from_nanos(depth as u64 * SERVICE_NS));
        self.shuttle();
        let mut got = 0;
        while let Ok(Some(chunk)) = self.clients[i].recv(c) {
            got += chunk.len();
        }
        assert_eq!(got, expect, "reply burst must be exact");
    }
}

/// Best GET throughput (commands per wall-clock second) over several
/// trials at a given pipeline depth.
fn measure_throughput(world: &mut World, sample: &[(usize, ConnId, ConnId)], depth: usize) -> f64 {
    let mut cursor = 0usize;
    for op in 0..32 {
        let (i, c, s) = sample[op % sample.len()];
        let (b, e) = get_burst(depth, &mut cursor);
        world.kv_op(i, c, s, b, e);
    }
    let mut best = 0.0f64;
    for _ in 0..TRIALS {
        let mut done = 0usize;
        let mut k = 0usize;
        let t0 = Instant::now();
        while done < PIPE_CMDS {
            let (i, c, s) = sample[k % sample.len()];
            k += 1;
            let (b, e) = get_burst(depth, &mut cursor);
            world.kv_op(i, c, s, b, e);
            done += depth;
        }
        best = best.max(PIPE_CMDS as f64 / t0.elapsed().as_secs_f64());
    }
    best
}

/// Best p99 over several trials of depth-1 GET round trips on the sample
/// connections (minimum across trials rejects host scheduler noise).
fn measure_p99(world: &mut World, sample: &[(usize, ConnId, ConnId)]) -> u64 {
    let mut cursor = 0usize;
    for op in 0..OPS_WARMUP {
        let (i, c, s) = sample[op % sample.len()];
        let (b, e) = get_burst(1, &mut cursor);
        world.kv_op(i, c, s, b, e);
    }
    let mut best = u64::MAX;
    for _ in 0..TRIALS {
        let mut hist = Histogram::new();
        for op in 0..OPS_PER_TRIAL {
            let (i, c, s) = sample[op % sample.len()];
            let (b, e) = get_burst(1, &mut cursor);
            let t0 = Instant::now();
            world.kv_op(i, c, s, b, e);
            hist.record(t0.elapsed().as_nanos() as u64);
        }
        best = best.min(hist.p99());
    }
    best
}

/// One open-loop Poisson point on virtual time: bursts of `depth`
/// commands (3:1 GET:SET at depth ≥ 4) arrive at `util` of the service
/// capacity; sojourn is measured from the *scheduled* arrival so
/// queueing delay counts against the laggard (no coordinated omission).
fn poisson_point(
    world: &mut World,
    sample: &[(usize, ConnId, ConnId)],
    util: f64,
    depth: usize,
    seed: u64,
) -> CurvePoint {
    let burst_rate = util * 1e9 / (depth as f64 * SERVICE_NS as f64);
    let sched = poisson_schedule(seed, world.now.as_nanos(), burst_rate, POISSON_ARRIVALS);
    let start = world.now;
    let mut hist = Histogram::new();
    let mut cursor = 0usize;
    for (k, &arr) in sched.iter().enumerate() {
        if arr > world.now.as_nanos() {
            world.advance_to(SimTime::from_nanos(arr));
        }
        let (i, c, s) = sample[k % sample.len()];
        let (b, e) = mixed_burst(depth, &mut cursor);
        world.kv_op(i, c, s, b, e);
        hist.record(world.now.as_nanos() - arr);
    }
    let elapsed = world.now.as_nanos() - start.as_nanos();
    let mut point = CurvePoint::from_histogram(burst_rate * depth as f64, elapsed, &hist);
    // The histogram counts bursts; offered and achieved are both in
    // commands per second.
    point.achieved_ops_per_sec *= depth as f64;
    point.at_scale(world.server.conn_count() as u64, depth as u64)
}

/// The durability phase: SET bursts group-commit one catfs record each;
/// the final batch is deliberately "lost" (crash before the storage
/// push, so its replies were never released). Replay on a fresh catfs
/// instance must rebuild exactly the acknowledged state. Returns
/// (records replayed, keys recovered).
fn crash_replay() -> (usize, usize) {
    let rt = Runtime::new();
    let device = NvmeDevice::new(rt.clock().clone(), NvmeConfig::default());
    let fs = Catfs::new(&rt, device.clone());
    let qd = fs.create("e19.aof").expect("create log");
    let mut engine = KvEngine::new(
        KvEngineConfig {
            byte_budget: 1 << 20,
            durable: true,
        },
        MemoryManager::new(),
        rt.now(),
    );
    let mut conn = KvConn::new();
    let mut acked: HashMap<Vec<u8>, Vec<u8>> = HashMap::new();
    let mut pushed = 0usize;
    let rounds = 8usize;
    for round in 0..rounds {
        let crash_round = round + 1 == rounds;
        let mut burst = Vec::new();
        let mut staged: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
        for j in 0..4 {
            let (k, v) = if crash_round {
                (format!("lost{j}").into_bytes(), b"never-acked".to_vec())
            } else {
                (key(round * 4 + j), format!("rv{round}-{j}").into_bytes())
            };
            encode_command(&mut burst, &[b"SET", &k, &v]);
            staged.push((k, v));
        }
        conn.feed(DemiBuffer::from(burst));
        let r = engine.drain(&mut conn, rt.now());
        let batch = r.batch.expect("a SET burst group-commits");
        assert!(
            r.immediate.is_empty(),
            "no SET may be acknowledged ahead of its log record"
        );
        assert!(!r.deferred.is_empty(), "acks ride behind the record");
        if crash_round {
            // Crash before the push: the record never reaches the
            // device and the deferred replies are never released.
            continue;
        }
        let record = Sga::from_bufs(vec![DemiBuffer::from(batch)]);
        fs.blocking_push(qd, &record).expect("group commit");
        pushed += 1;
        // Only now are the deferred replies releasable = acknowledged.
        for (k, v) in staged {
            acked.insert(k, v);
        }
    }

    // Crash: a fresh catfs instance scans the same device and replays.
    let rt2 = Runtime::with_clock(rt.clock().clone());
    let fs2 = Catfs::new(&rt2, device);
    let rqd = fs2.recover("e19.aof").expect("recover");
    let mut store = KvStore::new(1 << 20, rt2.now());
    for _ in 0..pushed {
        let (_, sga) = fs2.blocking_pop(rqd).expect("pop record").expect_pop();
        for entry in decode_batch(&sga.to_vec()).expect("valid record") {
            apply(&mut store, &entry, rt2.now());
        }
    }
    let mut dump = store.dump(rt2.now());
    dump.sort();
    let mut want: Vec<(Vec<u8>, Vec<u8>)> = acked.into_iter().collect();
    want.sort();
    assert_eq!(
        dump, want,
        "replay must rebuild exactly the acknowledged state"
    );
    assert!(
        dump.iter().all(|(k, _)| !k.starts_with(b"lost")),
        "the unpushed batch was never acknowledged and must not replay"
    );
    (pushed, dump.len())
}

fn experiment() {
    let mut table = Table::new(
        "E19: KV server at scale (pipelined zero-copy RESP, group-committed durability)",
        &["phase", "scale", "value", "bound"],
    );
    let mut world = World::new();

    // -- Setup: baseline connections, hot-key preload over the wire. ---
    let small = world.establish(SMALL_CONNS);
    let small_srv = world.pair(&small);
    let sample: Vec<(usize, ConnId, ConnId)> = (0..SAMPLE)
        .map(|k| {
            let (i, c) = small[k % small.len()];
            (i, c, small_srv[k % small.len()])
        })
        .collect();
    // Preload through TCP so stored values are zero-copy sub-views of
    // the RX buffers that carried them (the end-to-end claim).
    {
        let (i, c, s) = sample[0];
        for wave in 0..(KEYS / DEPTH) {
            let mut b = Vec::new();
            for j in 0..DEPTH {
                let idx = wave * DEPTH + j;
                encode_command(&mut b, &[b"SET", &key(idx), &value(idx)]);
            }
            world.kv_op(i, c, s, b, DEPTH * SET_REPLY);
        }
    }

    // -- Phase 1: pipelining pays — depth 16 vs depth 1 throughput. ----
    let thr1 = measure_throughput(&mut world, &sample, 1);
    let thr16 = measure_throughput(&mut world, &sample, DEPTH);
    let speedup = thr16 / thr1;
    assert!(
        speedup >= 4.0,
        "depth-{DEPTH} pipelining must be >= 4x depth-1: {thr1:.0} -> {thr16:.0} ops/s \
         ({speedup:.2}x)"
    );
    table.row(&[
        "GET ops/s depth 1".into(),
        format!("{SMALL_CONNS}"),
        format!("{thr1:.0}"),
        "-".into(),
    ]);
    table.row(&[
        format!("GET ops/s depth {DEPTH}"),
        format!("{SMALL_CONNS}"),
        format!("{thr16:.0} ({speedup:.1}x)"),
        ">=4x".into(),
    ]);

    // -- Phase 2: zero payload copies on the warmed pipelined GET. -----
    // Commands build into owned Vecs (no datapath copy), parse as pure
    // sub-views of single RX segments, values reply as shared handles:
    // the only bytes that may move are pooled protocol headers, which
    // the copy counters exclude by design.
    let reasm_before: u64 = sample
        .iter()
        .map(|&(_, _, s)| world.conns[&s].parser_stats().reassembled_args)
        .sum();
    let mem_before = mem_counters::snapshot();
    let allocs_before = ALLOCS.load(Ordering::Relaxed);
    let mut cursor = 0usize;
    for op in 0..ZC_BURSTS {
        let (i, c, s) = sample[op % sample.len()];
        let (b, e) = get_burst(DEPTH, &mut cursor);
        world.kv_op(i, c, s, b, e);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - allocs_before;
    let mem_delta = mem_counters::snapshot().delta(&mem_before);
    let reasm_after: u64 = sample
        .iter()
        .map(|&(_, _, s)| world.conns[&s].parser_stats().reassembled_args)
        .sum();
    assert_eq!(
        mem_delta.bytes_copied, 0,
        "a warmed pipelined GET must move zero payload bytes \
         ({} copies seen)",
        mem_delta.copies
    );
    assert_eq!(mem_delta.copies, 0, "no copy calls on the GET path");
    assert_eq!(
        reasm_after - reasm_before,
        0,
        "single-segment bursts never take the parser's reassembly fallback"
    );
    table.row(&[
        "payload bytes copied".into(),
        format!("{ZC_BURSTS} GET bursts"),
        format!("{}", mem_delta.bytes_copied),
        "=0".into(),
    ]);
    table.row(&[
        "allocs / GET burst".into(),
        format!("{ZC_BURSTS} GET bursts"),
        format!("{:.1}", allocs as f64 / ZC_BURSTS as f64),
        "reported".into(),
    ]);

    // -- Phase 3: p99 flatness as the connection table grows. ----------
    let p99_small = measure_p99(&mut world, &sample);
    let big = world.establish(CONNS - SMALL_CONNS);
    let _big_srv = world.pair(&big);
    // Park past the compact delay so idle connections cost slab-only.
    world.advance_by(SimTime::from_millis(20));
    let p99_big = measure_p99(&mut world, &sample);
    let flat_bound = ((p99_small as f64 * 1.5) as u64).max(p99_small + 3_000);
    assert!(
        p99_big <= flat_bound,
        "GET p99 must stay flat {SMALL_CONNS} -> {CONNS} conns: {p99_small}ns -> {p99_big}ns \
         (bound {flat_bound}ns)"
    );
    table.row(&[
        "GET p99 (baseline)".into(),
        format!("{SMALL_CONNS}"),
        format!("{p99_small}ns"),
        "-".into(),
    ]);
    table.row(&[
        "GET p99 (full scale)".into(),
        format!("{CONNS}"),
        format!("{p99_big}ns"),
        format!("<=1.5x = {flat_bound}ns"),
    ]);

    // -- Phase 4: open-loop Poisson curve at full scale. ---------------
    let mut curve = Curve::new("demi-kv RESP over catnip, open loop, GET/SET 3:1");
    let mut seed = 19_001u64;
    for &depth in &[1usize, DEPTH] {
        for &util in &[0.5f64, 0.8, 0.95] {
            let point = poisson_point(&mut world, &sample, util, depth, seed);
            seed += 1;
            table.row(&[
                format!("poisson p99, depth {depth}"),
                format!("{:.0}% util", util * 100.0),
                format!("{}ns", point.p99_ns),
                format!("{:.0} ops/s", point.achieved_ops_per_sec),
            ]);
            curve.push(point);
        }
    }

    // -- Phase 5: crash-replay — acknowledged SETs survive. ------------
    let (replayed, recovered) = crash_replay();
    table.row(&[
        "crash-replay keys".into(),
        format!("{replayed} records"),
        format!("{recovered}"),
        "acked state only".into(),
    ]);

    let stats = world.engine.stats();
    let replies = world.engine.reply_stats();
    table.print();

    let json = format!(
        "{{\n  \"experiment\": \"e19_kv_server\",\n  \"conns\": {CONNS},\n  \
         \"pipeline_depth\": {DEPTH},\n  \
         \"throughput_depth1_ops_per_sec\": {thr1:.1},\n  \
         \"throughput_depth{DEPTH}_ops_per_sec\": {thr16:.1},\n  \
         \"pipeline_speedup\": {speedup:.2},\n  \
         \"warmed_get_bytes_copied\": {},\n  \
         \"allocs_per_get_burst\": {:.2},\n  \
         \"p99_ns_small\": {p99_small},\n  \"p99_ns_full\": {p99_big},\n  \
         \"commands\": {},\n  \"bursts\": {},\n  \"max_burst\": {},\n  \
         \"prepend_hits\": {},\n  \"prepend_fallbacks\": {},\n  \
         \"replayed_records\": {replayed},\n  \"recovered_keys\": {recovered},\n  \
         \"curve\": {}\n}}\n",
        mem_delta.bytes_copied,
        allocs as f64 / ZC_BURSTS as f64,
        stats.commands,
        stats.bursts,
        stats.max_burst,
        replies.prepend_hits,
        replies.prepend_fallbacks,
        curve.to_json()
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/e19_kv_server.json", &json).expect("write artifact");
    println!(
        "paper check: pipelining {speedup:.1}x at depth {DEPTH}; {} payload bytes copied over \
         {ZC_BURSTS} warmed GET bursts; p99 {p99_small}ns -> {p99_big}ns ({SMALL_CONNS} -> \
         {CONNS} conns); {recovered} keys replayed from {replayed} group commits\n\
         artifact: target/e19_kv_server.json ({} bytes)\n",
        mem_delta.bytes_copied,
        json.len()
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut group = c.benchmark_group("e19_kv_server");
    group.sample_size(10);
    group.bench_function("get_burst_depth16", |b| {
        let mut world = World::new();
        let conns = world.establish(SMALL_CONNS.min(128));
        let srv = world.pair(&conns);
        let (i0, c0) = conns[0];
        let s0 = srv[0];
        let mut cursor = 0usize;
        for idx in 0..KEYS {
            let mut burst = Vec::new();
            encode_command(&mut burst, &[b"SET", &key(idx), &value(idx)]);
            world.kv_op(i0, c0, s0, burst, SET_REPLY);
        }
        let mut k = 0usize;
        b.iter(|| {
            let (i, c) = conns[k % conns.len()];
            let s = srv[k % srv.len()];
            k += 1;
            let (burst, expect) = get_burst(DEPTH, &mut cursor);
            world.kv_op(criterion::black_box(i), c, s, burst, expect)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
