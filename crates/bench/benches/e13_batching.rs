//! E13 — end-to-end I/O batching: device handoffs, ACK frames, and
//! completion delivery all amortize with burst depth.
//!
//! Kernel-bypass stacks go fast by *amortizing* per-I/O costs: DPDK's
//! burst API exists so one doorbell covers many frames, and mTCP-style
//! stacks batch event delivery the same way. This experiment drives the
//! catnip UDP echo at burst depths {1, 8, 32} and checks three claims:
//!
//! * **TX coalescing**: `tx_burst` device handoffs per echo op shrink at
//!   least 4× from depth 1 to depth 32 (asserted) — one poll-end flush
//!   hands the device the whole burst.
//! * **no latency tax**: at depth 1 the coalesced path's RTT matches the
//!   per-frame baseline within 5% (asserted) — the flush happens before
//!   any blocking wait can advance virtual time.
//! * **ACK coalescing**: a streamed TCP transfer emits ≤ 0.55 pure-ACK
//!   frames per data segment with delayed ACKs on (asserted), vs ~1.0
//!   with the ack-every-segment baseline.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use demi_bench::Table;
use demi_memory::DemiBuffer;
use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnip_pair, catnip_pair_with, host_ip};
use demikernel::types::{QToken, Sga};
use dpdk_sim::counters::BURST_BUCKET_LABELS;
use dpdk_sim::{DpdkPort, PortConfig};
use net_stack::tcp::State;
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, StackConfig};
use sim_fabric::{Fabric, MacAddress, SimTime};

const PAYLOAD: usize = 64;
const ROUNDS: u32 = 50;

#[derive(Debug, Clone, Copy)]
struct BurstStats {
    /// Virtual time per round (one full burst echoed back).
    round_time: SimTime,
    /// Device handoffs per echo op, both hosts combined.
    tx_bursts_per_op: f64,
    /// Frames-per-burst histogram (buckets 1, 2-7, 8-31, 32+).
    burst_hist: [u64; dpdk_sim::counters::BURST_BUCKETS],
}

/// Echoes `rounds` bursts of `depth` datagrams; `batched` toggles the TX
/// coalescing ring (the unbatched world is one device handoff per frame).
fn burst_echo(seed: u64, depth: usize, rounds: u32, batched: bool) -> BurstStats {
    let (rt, _fabric, client, server) = if batched {
        catnip_pair(seed)
    } else {
        catnip_pair_with(seed, |mut c| {
            c.tx_coalesce = false;
            c.tcp.delayed_acks = false;
            c
        })
    };
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();
    let dst = SocketAddr::new(host_ip(2), 7);
    let payload = vec![0xA5u8; PAYLOAD];

    // Warm ARP in both directions so measurement is pure data frames.
    let qt = client.pushto(cqd, &Sga::from_slice(b"warm"), dst).unwrap();
    rt.wait(qt, None).unwrap();
    let (from, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
    let from = from.unwrap();
    let qt = server.pushto(sqd, &sga, from).unwrap();
    rt.wait(qt, None).unwrap();
    client.blocking_pop(cqd).unwrap();

    rt.metrics().reset();
    let t0 = rt.now();
    for _ in 0..rounds {
        let pushes: Vec<QToken> = (0..depth)
            .map(|_| client.pushto(cqd, &Sga::from_slice(&payload), dst).unwrap())
            .collect();
        rt.wait_all(&pushes, None).unwrap();
        let pops: Vec<QToken> = (0..depth).map(|_| server.pop(sqd).unwrap()).collect();
        let echoes: Vec<QToken> = rt
            .wait_all(&pops, None)
            .unwrap()
            .into_iter()
            .map(|r| {
                let (_, sga) = r.expect_pop();
                server.pushto(sqd, &sga, from).unwrap()
            })
            .collect();
        rt.wait_all(&echoes, None).unwrap();
        let cpops: Vec<QToken> = (0..depth).map(|_| client.pop(cqd).unwrap()).collect();
        rt.wait_all(&cpops, None).unwrap();
    }
    let elapsed = rt.now().saturating_since(t0);
    let m = rt.metrics().snapshot();
    let ops = rounds as u64 * depth as u64;
    BurstStats {
        round_time: SimTime::from_nanos(elapsed.as_nanos() / rounds as u64),
        tx_bursts_per_op: m.tx_burst_calls as f64 / ops as f64,
        burst_hist: m.tx_frames_per_burst,
    }
}

/// Streams `chunks` MSS-sized chunks over TCP and reports (data segments
/// sent, pure ACKs sent, ACKs coalesced away).
fn tcp_stream_acks(seed: u64, chunks: usize, delayed: bool) -> (u64, u64, u64) {
    let fabric = Fabric::new(seed);
    let mk = |last: u8| {
        let port = DpdkPort::new(
            &fabric,
            PortConfig::basic(MacAddress::from_last_octet(last)),
        );
        let mut cfg = StackConfig::new(host_ip(last));
        cfg.tcp.delayed_acks = delayed;
        NetworkStack::new(port, fabric.clock(), cfg)
    };
    let a = mk(1);
    let b = mk(2);
    let settle = |until: &mut dyn FnMut() -> bool| {
        for _ in 0..1_000_000 {
            a.poll();
            b.poll();
            if until() {
                return;
            }
            if fabric.advance_to_next_event() {
                continue;
            }
            let deadline = [a.next_deadline(), b.next_deadline()]
                .into_iter()
                .flatten()
                .min();
            match deadline {
                Some(t) => fabric.clock().advance_to(t),
                None => return,
            }
        }
        panic!("ack stream did not settle");
    };

    let lid = b.tcp_listen(80, 16).unwrap();
    let conn = a.tcp_connect(SocketAddr::new(host_ip(2), 80)).unwrap();
    settle(&mut || a.tcp_state(conn) == Ok(State::Established));
    let mut sconn = None;
    settle(&mut || {
        sconn = b.tcp_accept(lid).unwrap();
        sconn.is_some()
    });
    let sconn = sconn.unwrap();

    let mss = StackConfig::new(host_ip(1)).tcp.mss;
    // 8 segments per send keeps the receive window open while the stream
    // is long enough for every-2nd-segment ACKing to dominate.
    let chunk = vec![0x5Au8; 8 * mss];
    let mut total = 0usize;
    for _ in 0..chunks {
        a.tcp_send(conn, DemiBuffer::from_slice(&chunk)).unwrap();
        total += chunk.len();
        let drained = total;
        let mut got = 0usize;
        settle(&mut || {
            while let Ok(Some(buf)) = b.tcp_recv(sconn) {
                got += buf.len();
            }
            got > 0
                && b.tcp_conn_stats(sconn).unwrap().in_order_segments * mss as u64 >= drained as u64
        });
    }
    let sender = a.tcp_conn_stats(conn).unwrap();
    let receiver = b.tcp_conn_stats(sconn).unwrap();
    (
        sender.segments_sent + sender.retransmissions,
        receiver.acks_sent,
        receiver.acks_coalesced,
    )
}

fn experiment_table() {
    let mut table = Table::new(
        "E13: UDP burst echo, 64B, coalesced TX ring vs per-frame handoffs",
        &[
            "depth",
            "mode",
            "round RTT",
            "tx_bursts/op",
            &format!("bursts by frames {:?}", BURST_BUCKET_LABELS),
        ],
    );
    let mut batched_by_depth = Vec::new();
    let mut unbatched_depth1 = None;
    for &depth in &[1usize, 8, 32] {
        let b = burst_echo(97, depth, ROUNDS, true);
        let u = burst_echo(97, depth, ROUNDS, false);
        table.row(&[
            format!("{depth}"),
            "coalesced".into(),
            format!("{:?}", b.round_time),
            format!("{:.3}", b.tx_bursts_per_op),
            format!("{:?}", b.burst_hist),
        ]);
        table.row(&[
            format!("{depth}"),
            "per-frame".into(),
            format!("{:?}", u.round_time),
            format!("{:.3}", u.tx_bursts_per_op),
            format!("{:?}", u.burst_hist),
        ]);
        batched_by_depth.push((depth, b));
        if depth == 1 {
            unbatched_depth1 = Some(u);
        }
    }
    table.print();

    let d1 = batched_by_depth[0].1;
    let d32 = batched_by_depth[2].1;
    let amortization = d1.tx_bursts_per_op / d32.tx_bursts_per_op;
    assert!(
        amortization >= 4.0,
        "depth-32 bursts must amortize device handoffs >= 4x vs depth 1, got {amortization:.1}x"
    );
    let u1 = unbatched_depth1.unwrap();
    let rtt_ratio = d1.round_time.as_nanos() as f64 / u1.round_time.as_nanos() as f64;
    assert!(
        (rtt_ratio - 1.0).abs() <= 0.05,
        "coalescing must not tax depth-1 latency: coalesced/per-frame RTT = {rtt_ratio:.3}"
    );
    println!(
        "paper check: {amortization:.1}x fewer device handoffs per op at depth 32, \
         depth-1 RTT ratio {rtt_ratio:.3}\n"
    );

    let mut acks = Table::new(
        "E13: TCP streamed transfer, pure-ACK frames per data segment",
        &["mode", "segments", "pure ACKs", "coalesced", "ACKs/segment"],
    );
    let (seg_d, ack_d, coal_d) = tcp_stream_acks(41, 24, true);
    let (seg_i, ack_i, coal_i) = tcp_stream_acks(41, 24, false);
    let per_seg_d = ack_d as f64 / seg_d as f64;
    let per_seg_i = ack_i as f64 / seg_i as f64;
    acks.row(&[
        "delayed (RFC 1122)".into(),
        format!("{seg_d}"),
        format!("{ack_d}"),
        format!("{coal_d}"),
        format!("{per_seg_d:.3}"),
    ]);
    acks.row(&[
        "ack-every-segment".into(),
        format!("{seg_i}"),
        format!("{ack_i}"),
        format!("{coal_i}"),
        format!("{per_seg_i:.3}"),
    ]);
    acks.print();
    assert!(
        per_seg_d <= 0.55,
        "delayed ACKs must emit <= 0.55 ACK frames per segment, got {per_seg_d:.3}"
    );
    assert!(
        per_seg_i >= 0.9,
        "the baseline should ack roughly every segment, got {per_seg_i:.3}"
    );
    println!("paper check: {per_seg_d:.3} ACK frames/segment delayed vs {per_seg_i:.3} baseline\n");
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e13_batching");
    group.sample_size(10);
    for &depth in &[1usize, 32] {
        group.bench_with_input(BenchmarkId::new("coalesced", depth), &depth, |b, &d| {
            b.iter(|| burst_echo(criterion::black_box(7), d, 10, true))
        });
        group.bench_with_input(BenchmarkId::new("per_frame", depth), &depth, |b, &d| {
            b.iter(|| burst_echo(criterion::black_box(7), d, 10, false))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
