//! E10 — §5.3: "Existing disk layouts (e.g., ext4) may impose unnecessary
//! overhead since each Demikernel libOS supports only a single
//! application, which may not require an entire UNIX file system."
//!
//! Regenerates: device block writes per append (write amplification) and
//! virtual time per operation for catfs's single-application log layout
//! vs the ext4-like layout (inodes + bitmap + indirect blocks), on the
//! identical simulated NVMe device.

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demikernel::libos::catfs::Catfs;
use demikernel::libos::LibOs;
use demikernel::runtime::Runtime;
use demikernel::types::Sga;
use posix_sim::Ext4Sim;
use sim_fabric::{SimClock, SimTime};
use spdk_sim::nvme::{NvmeConfig, NvmeDevice};

struct LayoutResult {
    blocks_per_append: f64,
    time_per_append: SimTime,
    metadata_share: f64,
}

fn run_catfs(appends: u32, size: usize) -> LayoutResult {
    let rt = Runtime::new();
    let device = NvmeDevice::new(rt.clock().clone(), NvmeConfig::default());
    let fs = Catfs::new(&rt, device.clone());
    let qd = fs.create("bench").unwrap();
    let payload = vec![0xCDu8; size];
    let before = device.stats().blocks_written;
    let t0 = rt.now();
    for _ in 0..appends {
        fs.blocking_push(qd, &Sga::from_slice(&payload)).unwrap();
    }
    let blocks = device.stats().blocks_written - before;
    let elapsed = rt.now().saturating_since(t0);
    LayoutResult {
        blocks_per_append: blocks as f64 / appends as f64,
        time_per_append: SimTime::from_nanos(elapsed.as_nanos() / appends as u64),
        metadata_share: 0.0, // The log layout has no metadata write class.
    }
}

fn run_ext4(appends: u32, size: usize) -> LayoutResult {
    let clock = SimClock::new();
    let device = NvmeDevice::new(clock.clone(), NvmeConfig::default());
    let mut fs = Ext4Sim::format(device.clone(), clock.clone(), None);
    let fd = fs.create("bench").unwrap();
    let payload = vec![0xCDu8; size];
    let before = device.stats().blocks_written;
    let t0 = clock.now();
    for _ in 0..appends {
        fs.append(fd, &payload).unwrap();
    }
    let blocks = device.stats().blocks_written - before;
    let elapsed = clock.now().saturating_since(t0);
    let stats = fs.stats();
    LayoutResult {
        blocks_per_append: blocks as f64 / appends as f64,
        time_per_append: SimTime::from_nanos(elapsed.as_nanos() / appends as u64),
        metadata_share: stats.metadata_writes as f64
            / (stats.metadata_writes + stats.data_writes) as f64,
    }
}

fn experiment_table() {
    let mut table = Table::new(
        "E10: storage layout comparison (500 appends, same NVMe device)",
        &[
            "record size",
            "layout",
            "blocks/append",
            "time/append",
            "metadata share",
        ],
    );
    for &size in &[128usize, 1024, 4096] {
        let log = run_catfs(500, size);
        let ext4 = run_ext4(500, size);
        table.row(&[
            format!("{size}B"),
            "catfs log".into(),
            format!("{:.2}", log.blocks_per_append),
            format!("{}", log.time_per_append),
            format!("{:.0}%", log.metadata_share * 100.0),
        ]);
        table.row(&[
            format!("{size}B"),
            "ext4-like".into(),
            format!("{:.2}", ext4.blocks_per_append),
            format!("{}", ext4.time_per_append),
            format!("{:.0}%", ext4.metadata_share * 100.0),
        ]);
        assert!(
            ext4.blocks_per_append > log.blocks_per_append,
            "the general-purpose layout must write more blocks"
        );
        assert!(ext4.time_per_append.as_nanos() > log.time_per_append.as_nanos());
    }
    table.print();
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e10_storage_layout");
    group.sample_size(10);
    group.bench_function("catfs_100_appends", |b| {
        b.iter(|| run_catfs(criterion::black_box(100), 128))
    });
    group.bench_function("ext4_100_appends", |b| {
        b.iter(|| run_ext4(criterion::black_box(100), 128))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
