//! E16 — thread-per-shard multi-core execution.
//!
//! E14 measured shard scaling through a makespan *model* (frames on the
//! busiest shard as a proxy for the busiest core). This experiment
//! retires the proxy: the same shard worlds now run on real OS threads
//! ([`demikernel::exec::run_shards`]), so aggregate throughput is a
//! *wall-clock* measurement — fixed total work, sequential vs threaded,
//! speedup = t(1 thread) / t(N threads).
//!
//! Claims checked:
//!
//! * **correctness is mode-independent** (asserted always): every world's
//!   echo stream survives byte-identical and every KV reply is right, in
//!   both execution modes; total completed ops are conserved.
//! * **tails don't collapse** (asserted always): each shard world's
//!   virtual-time op-latency p99 under threaded execution stays within
//!   1.5x of the single-world baseline p99 — sharding buys throughput
//!   without trading away per-flow latency.
//! * **>= 3x wall-clock speedup at 4 threads** (asserted only when the
//!   machine has >= 4 CPUs, per `std::thread::available_parallelism`):
//!   shard worlds share nothing but lock-free rings and a port bitmap,
//!   so with a core per world the speedup is bounded by spawn overhead,
//!   not by coordination. On smaller hosts the measured ratio is printed
//!   for the record and the threshold is skipped — a 1-core container
//!   cannot exhibit parallelism, only the absence of slowdown.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demi_telemetry::stage::{self, Stage};
use demikernel::exec::{ExecMode, ShardSpec};
use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnip_shard_world, host_ip, ShardWorld};
use demikernel::types::{QDesc, Sga};
use net_stack::types::SocketAddr;

const WORLDS: usize = 4;
const ECHO_OPS_PER_WORLD: usize = 200;
const KV_OPS_PER_WORLD: usize = 150;
const PAYLOAD: usize = 64;
const TRIALS: usize = 3;

/// What one shard world reports back: completed operations and the
/// world's virtual-time op-latency tail (measured on the world's own
/// thread, where its stage histograms live).
struct WorldOut {
    ops: u64,
    p99_virt_ns: u64,
}

/// Builds the world, runs `work`, and measures the per-world op-latency
/// histogram around it. The reset keeps sequential mode honest: all
/// worlds share the main thread's histograms there, so each world must
/// start from a clean slate.
fn instrumented(spec: ShardSpec, work: impl FnOnce(&ShardWorld) -> u64) -> WorldOut {
    let world = catnip_shard_world(spec, 0xE16, |c| c);
    stage::reset();
    demi_telemetry::set_enabled(true);
    let ops = work(&world);
    demi_telemetry::set_enabled(false);
    WorldOut {
        ops,
        p99_virt_ns: stage::snapshot(Stage::OpLatency).p99(),
    }
}

fn connect_pair(world: &ShardWorld, port: u16) -> (QDesc, QDesc) {
    let (client, server) = (&world.client, &world.server);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), port)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), port))
        .unwrap();
    let sqd: QDesc = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();
    (cqd, sqd)
}

/// Pipelined TCP echo: 8-deep batches of `PAYLOAD`-byte messages, each
/// batch relayed by the server and checked byte-for-byte at the client.
fn echo_work(world: &ShardWorld) -> u64 {
    let (cqd, sqd) = connect_pair(world, 7000);
    let (client, server) = (&world.client, &world.server);
    let mut done = 0u64;
    let batch = 8;
    while (done as usize) < ECHO_OPS_PER_WORLD {
        let n = batch.min(ECHO_OPS_PER_WORLD - done as usize);
        let mut sent = Vec::new();
        for i in 0..n {
            let msg = vec![(done as u8).wrapping_add(i as u8); PAYLOAD];
            client.blocking_push(cqd, &Sga::from_slice(&msg)).unwrap();
            sent.extend_from_slice(&msg);
        }
        let mut relayed = 0;
        while relayed < sent.len() {
            let (_, chunk) = server.blocking_pop(sqd).unwrap().expect_pop();
            relayed += chunk.len();
            server.blocking_push(sqd, &chunk).unwrap();
        }
        let mut got = Vec::new();
        while got.len() < sent.len() {
            let (_, chunk) = client.blocking_pop(cqd).unwrap().expect_pop();
            got.extend_from_slice(&chunk.to_vec());
        }
        assert_eq!(got, sent, "echo stream corrupted");
        done += n as u64;
    }
    done
}

/// Request-response KV: alternating `S<key>=<value>` / `G<key>` ops with
/// every reply verified (the kv_store example's wire protocol).
fn kv_work(world: &ShardWorld) -> u64 {
    let (cqd, sqd) = connect_pair(world, 6379);
    let (client, server) = (&world.client, &world.server);
    let mut map: HashMap<String, Vec<u8>> = HashMap::new();
    let mut done = 0u64;
    for i in 0..KV_OPS_PER_WORLD {
        let key = format!("k{}", i % 32);
        let request = if i % 2 == 0 {
            let value = vec![i as u8; 24];
            map.insert(key.clone(), value.clone());
            let mut msg = format!("S{key}=").into_bytes();
            msg.extend_from_slice(&value);
            msg
        } else {
            format!("G{key}").into_bytes()
        };
        client
            .blocking_push(cqd, &Sga::from_slice(&request))
            .unwrap();
        let (_, req) = server.blocking_pop(sqd).unwrap().expect_pop();
        let bytes = req.to_vec();
        let reply = match bytes.first() {
            Some(b'S') => {
                // Server-side store is implicit here — the client's map is
                // the oracle; the server just acknowledges.
                b"O".to_vec()
            }
            Some(b'G') => {
                let k = String::from_utf8_lossy(&bytes[1..]).into_owned();
                match map.get(&k) {
                    Some(v) => {
                        let mut r = b"V".to_vec();
                        r.extend_from_slice(v);
                        r
                    }
                    None => b"N".to_vec(),
                }
            }
            _ => panic!("malformed request"),
        };
        server.blocking_push(sqd, &Sga::from_slice(&reply)).unwrap();
        let (_, got) = client.blocking_pop(cqd).unwrap().expect_pop();
        let got = got.to_vec();
        if bytes.first() == Some(&b'S') {
            assert_eq!(got, b"O", "SET not acknowledged");
        } else {
            let k = String::from_utf8_lossy(&bytes[1..]).into_owned();
            let want = match map.get(&k) {
                Some(v) => {
                    let mut r = b"V".to_vec();
                    r.extend_from_slice(v);
                    r
                }
                None => b"N".to_vec(),
            };
            assert_eq!(got, want, "GET returned the wrong value");
        }
        done += 1;
    }
    done
}

/// Runs the fixed workload over `worlds` shard worlds under `mode`;
/// returns wall-clock time and per-world outputs.
fn run_fixed(
    mode: ExecMode,
    worlds: usize,
    work: impl Fn(&ShardWorld) -> u64 + Send + Sync,
) -> (Duration, Vec<WorldOut>) {
    let start = Instant::now();
    let outs = demikernel::run_shards(mode, worlds, 2, 256, |spec| instrumented(spec, &work));
    (start.elapsed(), outs)
}

/// Best-of-trials wall time for one (mode, workload) cell, with the
/// outputs of the last trial for the correctness checks.
fn best_of(
    mode: ExecMode,
    worlds: usize,
    work: impl Fn(&ShardWorld) -> u64 + Send + Sync + Copy,
) -> (Duration, Vec<WorldOut>) {
    let mut best = Duration::MAX;
    let mut outs = Vec::new();
    for _ in 0..TRIALS {
        let (t, o) = run_fixed(mode, worlds, work);
        if t < best {
            best = t;
        }
        outs = o;
    }
    (best, outs)
}

fn experiment(
    name: &str,
    ops_per_world: usize,
    work: impl Fn(&ShardWorld) -> u64 + Send + Sync + Copy,
) {
    // Single-world baseline: the tail-latency reference.
    let (_, baseline) = run_fixed(ExecMode::SingleThread, 1, work);
    let p99_single = baseline[0].p99_virt_ns.max(1);

    let (t_seq, seq_outs) = best_of(ExecMode::SingleThread, WORLDS, work);
    let (t_par, par_outs) = best_of(ExecMode::ThreadPerShard, WORLDS, work);

    let total_ops = (WORLDS * ops_per_world) as u64;
    for (label, outs) in [("sequential", &seq_outs), ("threaded", &par_outs)] {
        let sum: u64 = outs.iter().map(|o| o.ops).sum();
        assert_eq!(sum, total_ops, "{name}/{label}: ops not conserved");
    }

    let speedup = t_seq.as_secs_f64() / t_par.as_secs_f64();
    let mut table = Table::new(
        &format!("E16: {name} — fixed {total_ops} ops over {WORLDS} worlds (wall clock)"),
        &["mode", "wall ms (best)", "ops/s", "per-world p99 (virt ns)"],
    );
    for (label, t, outs) in [
        ("1 thread", t_seq, &seq_outs),
        (&format!("{WORLDS} threads"), t_par, &par_outs),
    ] {
        let p99s: Vec<u64> = outs.iter().map(|o| o.p99_virt_ns).collect();
        table.row(&[
            label.into(),
            format!("{:.2}", t.as_secs_f64() * 1e3),
            format!("{:.0}", total_ops as f64 / t.as_secs_f64()),
            format!("{p99s:?}"),
        ]);
    }
    table.print();

    for (w, out) in par_outs.iter().enumerate() {
        let ratio = out.p99_virt_ns as f64 / p99_single as f64;
        assert!(
            ratio <= 1.5,
            "{name}: world {w} p99 {}ns is {ratio:.2}x the single-world \
             baseline {p99_single}ns (limit 1.5x)",
            out.p99_virt_ns
        );
    }

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    if cpus >= WORLDS {
        assert!(
            speedup >= 3.0,
            "{name}: {WORLDS} shard threads on {cpus} CPUs must run >= 3x \
             faster than sequential, got {speedup:.2}x"
        );
        println!("paper check: {name} {speedup:.2}x wall-clock speedup at {WORLDS} threads\n");
    } else {
        println!(
            "paper check: {name} measured {speedup:.2}x at {WORLDS} threads on \
             {cpus} CPU(s) — >= 3x threshold requires >= {WORLDS} CPUs, skipped\n"
        );
    }
}

fn experiment_table() {
    experiment("tcp_echo", ECHO_OPS_PER_WORLD, echo_work);
    experiment("kv_store", KV_OPS_PER_WORLD, kv_work);
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e16_multicore");
    group.sample_size(10);
    group.bench_function("echo_4worlds/sequential", |b| {
        b.iter(|| {
            run_fixed(
                criterion::black_box(ExecMode::SingleThread),
                WORLDS,
                echo_work,
            )
        })
    });
    group.bench_function("echo_4worlds/threaded", |b| {
        b.iter(|| {
            run_fixed(
                criterion::black_box(ExecMode::ThreadPerShard),
                WORLDS,
                echo_work,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
