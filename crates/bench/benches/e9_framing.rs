//! E9 — §5.2: to carry atomic units over a stream, "the libOS could
//! insert the needed framing itself (e.g., atop a TCP stream) ...
//! alternatively, the libOS could use framing available in an existing
//! protocol (e.g., HTTPS, REST), but this approach trades off libOS
//! generality."
//!
//! Regenerates: byte overhead and parse cost for the 8-byte length-prefix
//! framing vs HTTP-shaped framing, both preserving message boundaries.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demi_bench::httpframe::{encode_http, HttpDecoder};
use demi_bench::Table;
use demi_memory::DemiBuffer;
use net_stack::framing::{encode_message, FrameDecoder, FRAME_HEADER_LEN};

fn run_demi(messages: &[Vec<u8>]) -> (usize, u64) {
    let mut decoder = FrameDecoder::new();
    let mut wire_bytes = 0usize;
    let mut out = 0u64;
    for m in messages {
        let wire = encode_message(m);
        wire_bytes += wire.len();
        decoder.push_chunk(DemiBuffer::from_slice(&wire));
        while let Ok(Some(got)) = decoder.next_message() {
            assert_eq!(&got.to_vec(), m, "boundary violated");
            out += 1;
        }
    }
    (wire_bytes, out)
}

fn run_http(messages: &[Vec<u8>]) -> (usize, u64, u64) {
    let mut decoder = HttpDecoder::new();
    let mut wire_bytes = 0usize;
    for m in messages {
        let wire = encode_http(m);
        wire_bytes += wire.len();
        decoder.push(&wire);
        while let Some(got) = decoder.next_message() {
            assert_eq!(&got, m, "boundary violated");
        }
    }
    (wire_bytes, decoder.messages, decoder.bytes_scanned)
}

fn experiment_table() {
    let mut table = Table::new(
        "E9: framing strategies for atomic units over a stream (1000 msgs)",
        &["msg size", "framer", "wire overhead/msg", "parse work/msg"],
    );
    for &size in &[64usize, 512, 4096] {
        let messages: Vec<Vec<u8>> = (0..1000u32).map(|i| vec![(i % 251) as u8; size]).collect();
        let payload: usize = messages.iter().map(|m| m.len()).sum();

        let (demi_wire, demi_msgs) = run_demi(&messages);
        assert_eq!(demi_msgs, 1000);
        table.row(&[
            format!("{size}B"),
            "length-prefix (libOS)".into(),
            format!("{}B", (demi_wire - payload) / 1000),
            "O(1) header decode".into(),
        ]);

        let (http_wire, http_msgs, scanned) = run_http(&messages);
        assert_eq!(http_msgs, 1000);
        table.row(&[
            format!("{size}B"),
            "HTTP-like (protocol)".into(),
            format!("{}B", (http_wire - payload) / 1000),
            format!("{} bytes scanned", scanned / 1000),
        ]);
        assert!(http_wire > demi_wire, "HTTP framing costs more bytes");
    }
    table.print();
    println!(
        "both preserve boundaries; the libOS framing costs {FRAME_HEADER_LEN}B \
         and constant parse work, the protocol framing costs ~6× the bytes \
         and a header scan — the generality trade-off §5.2 describes\n"
    );
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e9_framing");
    for &size in &[64usize, 4096] {
        let messages: Vec<Vec<u8>> = (0..200u32).map(|i| vec![(i % 251) as u8; size]).collect();
        group.throughput(Throughput::Elements(200));
        group.bench_with_input(
            BenchmarkId::new("length_prefix", size),
            &messages,
            |b, msgs| b.iter(|| run_demi(criterion::black_box(msgs))),
        );
        group.bench_with_input(BenchmarkId::new("http_like", size), &messages, |b, msgs| {
            b.iter(|| run_http(criterion::black_box(msgs)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
