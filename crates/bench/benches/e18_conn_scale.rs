//! E18 — connection scale: the fast path must not care how many
//! connections exist.
//!
//! The paper's datacenter story (§3) assumes a server holding tens of
//! thousands of mostly-idle connections while a handful are hot. This
//! experiment drives the TCP peer directly — no device, no fabric — so
//! every nanosecond measured is protocol work, and checks the four
//! connection-scale claims of the slab/demux/TIME_WAIT/SYN-table design:
//!
//! * **bounded idle footprint**: 100k established connections parked past
//!   the compact delay cost ≤ 2 KiB each (slab slot + demux entry, zero
//!   queue-box heap) — asserted from [`TcpMemStats`].
//! * **flat-cost demux**: echo RTT p99 over the same 64 connections is
//!   flat as the table grows 100 → 100k established (≤ 1.2× with a small
//!   absolute floor for wall-clock noise) — asserted, best-of-trials.
//! * **zero steady-state allocations**: a warmed echo op — send, demux,
//!   receive, echo back, delayed-ACK ticks — performs *zero* heap
//!   allocations, measured by a counting global allocator (asserted).
//! * **SYN-flood isolation**: a 10× flood (ten forged SYNs per echo op)
//!   degrades established-flow p99 ≤ 2×, evicts oldest-first from a
//!   fixed table (`syn_table_bytes` constant, no control blocks), and a
//!   churn epilogue shows TIME_WAIT records expiring at 2·MSL with slab
//!   slots and ephemeral ports recycled (asserted).
//!
//! Results are written to `target/e18_conn_scale.json` as a plottable
//! artifact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demi_memory::DemiBuffer;
use demi_telemetry::hist::Histogram;
use net_stack::counters as nsc;
use net_stack::tcp::header::{TcpFlags, TcpHeader};
use net_stack::tcp::{ConnId, ListenerId, SeqNum, State, TcpConfig, TcpPeer, TcpSegmentOut};
use net_stack::types::SocketAddr;
use sim_fabric::SimTime;

/// Counts every heap allocation so the zero-alloc claim is measured, not
/// assumed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Full scale: 100k server-side connections from 4 client peers (each
/// client owns its own ephemeral range). Debug builds run a CI-sized
/// version; `just bench-connscale` runs release.
const CONNS: usize = if cfg!(debug_assertions) {
    2_000
} else {
    100_000
};
const SMALL_CONNS: usize = 100;
const CLIENTS: usize = 4;
const SAMPLE: usize = 64;
const BACKLOG: usize = if cfg!(debug_assertions) { 64 } else { 256 };
const OPS_WARMUP: usize = 200;
const OPS_PER_TRIAL: usize = if cfg!(debug_assertions) { 200 } else { 1_000 };
const TRIALS: usize = 5;
const ZERO_ALLOC_OPS: usize = if cfg!(debug_assertions) {
    1_000
} else {
    10_000
};
const FLOOD_FACTOR: usize = 10;
const CHURN: usize = if cfg!(debug_assertions) { 100 } else { 1_000 };
/// A 4 KiB message spans three MSS-sized segments, so every echo op puts
/// consecutive same-flow segments on the wire — the last-flow demux
/// cache's target pattern (single-segment ops rotating across flows would
/// never hit it).
const PAYLOAD: usize = 4_096;

fn server_ip() -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 2)
}

fn client_ip(i: usize) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, 10 + i as u8)
}

/// One server peer, [`CLIENTS`] client peers, and the reusable segment
/// scratch that shuttles wire traffic between them.
struct World {
    server: TcpPeer,
    lid: ListenerId,
    clients: Vec<TcpPeer>,
    scratch: Vec<(Ipv4Addr, TcpSegmentOut)>,
    /// Accepted server conns keyed by the client end of the 4-tuple; a
    /// recycled port overwrites its predecessor's (dead) entry.
    accepted: HashMap<(Ipv4Addr, u16), ConnId>,
    now: SimTime,
}

impl World {
    fn new() -> Self {
        let mut server = TcpPeer::new(server_ip(), TcpConfig::default());
        let lid = server.listen(80, BACKLOG).unwrap();
        World {
            server,
            lid,
            clients: (0..CLIENTS)
                .map(|i| TcpPeer::new(client_ip(i), TcpConfig::default()))
                .collect(),
            scratch: Vec::new(),
            accepted: HashMap::new(),
            now: SimTime::from_millis(1),
        }
    }

    /// Delivers all in-flight segments until the wire is quiet. Segments
    /// addressed to hosts that are neither the server nor a client (the
    /// forged flood sources) fall on the floor.
    fn shuttle(&mut self) {
        for _ in 0..64 {
            let mut quiet = true;
            let mut scratch = std::mem::take(&mut self.scratch);
            for i in 0..CLIENTS {
                self.clients[i].drain_segments(&mut scratch);
                for (_, seg) in scratch.drain(..) {
                    quiet = false;
                    self.server
                        .on_segment(client_ip(i), &seg.header, seg.payload, self.now);
                }
            }
            self.server.drain_segments(&mut scratch);
            for (dst, seg) in scratch.drain(..) {
                quiet = false;
                if let Some(i) = (0..CLIENTS).find(|&i| client_ip(i) == dst) {
                    self.clients[i].on_segment(server_ip(), &seg.header, seg.payload, self.now);
                }
            }
            self.scratch = scratch;
            if quiet {
                return;
            }
        }
        panic!("wire did not go quiet");
    }

    /// Advances virtual time to `target`, firing every timer deadline on
    /// the way (delayed ACKs, compaction, TIME_WAIT expiry) and delivering
    /// whatever the firings emit.
    fn advance_to(&mut self, target: SimTime) {
        loop {
            let next = std::iter::once(self.server.next_deadline())
                .chain(self.clients.iter_mut().map(|c| c.next_deadline()))
                .flatten()
                .min();
            match next {
                Some(t) if t <= target => {
                    self.now = t;
                    self.server.on_tick(t);
                    for c in &mut self.clients {
                        c.on_tick(t);
                    }
                    self.shuttle();
                }
                _ => break,
            }
        }
        self.now = target;
    }

    fn advance_by(&mut self, dt: SimTime) {
        self.advance_to(self.now.saturating_add(dt));
    }

    /// Opens `total` connections split evenly across the client peers and
    /// runs the handshakes to completion. Connects go out in waves no
    /// larger than half the SYN table: the table is fixed-size and the
    /// accept queue refuses completions past the backlog, so an unbounded
    /// burst would evict its own half-open entries. Returns the new
    /// client-side handles as `(client index, conn)`.
    fn establish(&mut self, total: usize) -> Vec<(usize, ConnId)> {
        let mut conns = Vec::with_capacity(total);
        let wave = BACKLOG / 2;
        let mut done = 0;
        while done < total {
            let n = wave.min(total - done);
            let start = conns.len();
            for k in 0..n {
                let i = (done + k) % CLIENTS;
                let c = self.clients[i]
                    .connect(SocketAddr::new(server_ip(), 80), self.now)
                    .unwrap();
                conns.push((i, c));
            }
            self.shuttle();
            self.drain_accepts();
            for &(i, c) in &conns[start..] {
                assert_eq!(
                    self.clients[i].state(c),
                    Ok(State::Established),
                    "handshake {start} wave must complete"
                );
            }
            done += n;
        }
        conns
    }

    /// Drains the listener into the 4-tuple-keyed accept map.
    fn drain_accepts(&mut self) {
        while let Ok(Some(s)) = self.server.accept(self.lid) {
            let r = self.server.remote(s).unwrap();
            self.accepted.insert((r.ip, r.port), s);
        }
    }

    /// Pairs every client conn with the accepted server conn holding the
    /// mirrored 4-tuple.
    fn pair(&mut self, conns: &[(usize, ConnId)]) -> Vec<ConnId> {
        conns
            .iter()
            .map(|&(i, c)| {
                let l = self.clients[i].local(c).unwrap();
                self.accepted[&(client_ip(i), l.port)]
            })
            .collect()
    }

    /// One synchronous echo: client sends `payload`, server receives and
    /// echoes it byte-for-byte, client drains the echo; then time advances
    /// 10 µs. Delayed-ACK timers (50 µs) fire a few ops later, well before
    /// any RTO; the step is small enough that rotating over the sample
    /// set re-touches every connection inside the compact delay, so the
    /// steady state never thrashes queue boxes.
    fn echo_op(&mut self, i: usize, c: ConnId, s: ConnId, payload: &DemiBuffer) {
        self.clients[i].send(c, payload.clone(), self.now).unwrap();
        self.shuttle();
        let mut echoed = 0;
        while let Ok(Some(chunk)) = self.server.recv(s) {
            echoed += chunk.len();
            self.server.send(s, chunk, self.now).unwrap();
        }
        assert_eq!(echoed, payload.len());
        self.shuttle();
        let mut got = 0;
        while let Ok(Some(chunk)) = self.clients[i].recv(c) {
            got += chunk.len();
        }
        assert_eq!(got, payload.len());
        self.advance_by(SimTime::from_micros(10));
    }

    /// Injects one forged SYN (unique source each call) at the listener.
    fn forged_syn(&mut self, k: u32) {
        let syn = TcpHeader {
            src_port: 1_024 + (k % 60_000) as u16,
            dst_port: 80,
            seq: SeqNum(k.wrapping_mul(2_654_435_761)),
            ack: SeqNum(0),
            flags: TcpFlags::SYN,
            window: 65_535,
            mss: Some(1_460),
        };
        let src = Ipv4Addr::new(10, 0, 1, (k % 250) as u8);
        self.server
            .on_segment(src, &syn, DemiBuffer::empty(), self.now);
    }
}

/// Best p99 over several trials of echo RTTs on the sample connections.
/// Taking the minimum across trials rejects scheduler noise — the claim
/// is about the code path's cost, not the host's jitter.
fn measure_p99(
    world: &mut World,
    sample: &[(usize, ConnId, ConnId)],
    payload: &DemiBuffer,
    flood: bool,
) -> u64 {
    let mut flood_k = 0u32;
    for op in 0..OPS_WARMUP {
        let (i, c, s) = sample[op % sample.len()];
        world.echo_op(i, c, s, payload);
    }
    let mut best = u64::MAX;
    for _ in 0..TRIALS {
        let mut hist = Histogram::new();
        for op in 0..OPS_PER_TRIAL {
            let (i, c, s) = sample[op % sample.len()];
            if flood {
                for _ in 0..FLOOD_FACTOR {
                    world.forged_syn(flood_k);
                    flood_k = flood_k.wrapping_add(1);
                }
            }
            let t0 = Instant::now();
            world.echo_op(i, c, s, payload);
            hist.record(t0.elapsed().as_nanos() as u64);
        }
        best = best.min(hist.p99());
    }
    best
}

fn experiment() {
    let mut table = Table::new(
        "E18: connection-scale fast path (slab TCBs, flat demux, compact TIME_WAIT, bounded accept)",
        &["phase", "conns", "value", "bound"],
    );
    let mut world = World::new();
    let payload = DemiBuffer::from_slice(&[0x5au8; PAYLOAD]);

    // -- Phase 1: flatness baseline at 100 connections. ----------------
    let small = world.establish(SMALL_CONNS);
    let small_srv = world.pair(&small);
    let sample: Vec<(usize, ConnId, ConnId)> = (0..SAMPLE)
        .map(|k| {
            let (i, c) = small[k % small.len()];
            (i, c, small_srv[k % small.len()])
        })
        .collect();
    let p99_small = measure_p99(&mut world, &sample, &payload, false);
    table.row(&[
        "echo p99 (baseline)".into(),
        format!("{SMALL_CONNS}"),
        format!("{p99_small}ns"),
        "-".into(),
    ]);

    // -- Phase 2: grow to full scale, park, and check the footprint. ---
    let big = world.establish(CONNS - SMALL_CONNS);
    let _big_srv = world.pair(&big);
    // Park everyone past the compact delay: drained queue boxes return to
    // the allocator and idle connections fall back to their slab slots.
    world.advance_by(SimTime::from_millis(20));
    let mem = world.server.mem_stats();
    assert_eq!(mem.live_conns, CONNS);
    let per_conn = (mem.slab_bytes + mem.cb_heap_bytes + mem.demux_bytes) / mem.live_conns;
    assert!(
        per_conn <= 2_048,
        "idle established connection must cost <= 2 KiB, got {per_conn} \
         (slab={} cb_heap={} demux={})",
        mem.slab_bytes,
        mem.cb_heap_bytes,
        mem.demux_bytes
    );
    assert_eq!(
        mem.cb_heap_bytes, 0,
        "parked connections must hold no queue-box heap"
    );
    table.row(&[
        "idle bytes/conn".into(),
        format!("{CONNS}"),
        format!("{per_conn}B"),
        "<=2048B".into(),
    ]);

    // -- Phase 3: p99 flatness at full scale, same 64 connections. -----
    let p99_big = measure_p99(&mut world, &sample, &payload, false);
    let flat_bound = ((p99_small as f64 * 1.2) as u64).max(p99_small + 2_000);
    assert!(
        p99_big <= flat_bound,
        "echo p99 must stay flat {SMALL_CONNS} -> {CONNS} conns: {p99_small}ns -> {p99_big}ns \
         (bound {flat_bound}ns)"
    );
    table.row(&[
        "echo p99 (full scale)".into(),
        format!("{CONNS}"),
        format!("{p99_big}ns"),
        format!("<=1.2x = {flat_bound}ns"),
    ]);

    // -- Phase 4: zero allocations on the warmed echo path. ------------
    // The sample connections are warm: queue boxes exist, scratch and
    // wheel slots are at capacity, payload handles are cloned not copied.
    let conn_before = nsc::conn_snapshot();
    let before = ALLOCS.load(Ordering::Relaxed);
    for op in 0..ZERO_ALLOC_OPS {
        let (i, c, s) = sample[op % sample.len()];
        world.echo_op(i, c, s, &payload);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    let conn_delta = nsc::conn_snapshot().delta(&conn_before);
    assert_eq!(
        allocs, 0,
        "steady-state echo (send, demux, recv, echo, ACK ticks) must not allocate"
    );
    assert_eq!(
        conn_delta.tcb_queue_allocs, 0,
        "no queue boxes in steady state"
    );
    assert_eq!(
        conn_delta.outbox_scratch_grows, 0,
        "TX scratch never regrows"
    );
    assert!(
        conn_delta.demux_cache_hits > 0,
        "the last-flow cache must see the synchronous echo pattern"
    );
    table.row(&[
        "allocs / echo op".into(),
        format!("{CONNS}"),
        format!("{allocs} in {ZERO_ALLOC_OPS} ops"),
        "=0".into(),
    ]);

    // -- Phase 5: 10x SYN flood around the established flows. ----------
    let syn_bytes_before = world.server.mem_stats().syn_table_bytes;
    let live_before = world.server.conn_count();
    let flood_before = nsc::conn_snapshot();
    let p99_flood = measure_p99(&mut world, &sample, &payload, true);
    let flood_delta = nsc::conn_snapshot().delta(&flood_before);
    let flood_bound = ((p99_big as f64 * 2.0) as u64).max(p99_big + 4_000);
    assert!(
        p99_flood <= flood_bound,
        "a 10x SYN flood must degrade established p99 <= 2x: {p99_big}ns -> {p99_flood}ns \
         (bound {flood_bound}ns)"
    );
    assert_eq!(
        world.server.mem_stats().syn_table_bytes,
        syn_bytes_before,
        "half-open state is O(backlog): the SYN table never grows"
    );
    assert_eq!(
        world.server.conn_count(),
        live_before,
        "the flood must pin no control blocks"
    );
    assert!(
        flood_delta.syns_evicted > 0,
        "a flood 10x the service rate must overflow the table oldest-first"
    );
    table.row(&[
        "echo p99 under flood".into(),
        format!("{CONNS}"),
        format!("{p99_flood}ns"),
        format!("<=2x = {flood_bound}ns"),
    ]);

    // -- Phase 6: churn epilogue — TIME_WAIT compaction and recycling. --
    let churn: Vec<(usize, ConnId)> = big.iter().copied().take(CHURN).collect();
    let churn_srv = world.pair(&churn);
    let slab_before = world.clients[churn[0].0].mem_stats().slab_bytes;
    for &(i, c) in &churn {
        world.clients[i].close(c, world.now).unwrap();
    }
    world.shuttle();
    for &s in &churn_srv {
        assert!(world.server.at_eof(s));
        world.server.close(s, world.now).unwrap();
    }
    world.shuttle();
    let tw = nsc::conn_snapshot();
    // Ride past 2*MSL: every record expires and returns its port.
    world.advance_by(SimTime::from_millis(25));
    let tw_delta = nsc::conn_snapshot().delta(&tw);
    assert_eq!(
        tw_delta.tw_expired as usize, CHURN,
        "every TIME_WAIT record expires at 2*MSL"
    );
    let mut recycled = 0;
    for i in 0..CLIENTS {
        while world.clients[i].pop_released_port().is_some() {
            recycled += 1;
        }
    }
    assert_eq!(recycled, CHURN, "every ephemeral port came back");
    let reopened = world.establish(CHURN);
    let _ = world.pair(&reopened);
    let slab_after: usize = reopened
        .iter()
        .map(|&(i, _)| i)
        .take(1)
        .map(|i| world.clients[i].mem_stats().slab_bytes)
        .sum();
    assert!(
        slab_after <= slab_before,
        "reopened connections must reuse freed slab slots ({slab_before}B -> {slab_after}B)"
    );
    table.row(&[
        "churn: TW expired / ports back".into(),
        format!("{CHURN}"),
        format!("{}/{recycled}", tw_delta.tw_expired),
        format!("{CHURN}/{CHURN}"),
    ]);

    table.print();

    let json = format!(
        "{{\n  \"experiment\": \"e18_conn_scale\",\n  \"conns\": {CONNS},\n  \
         \"idle_bytes_per_conn\": {per_conn},\n  \"p99_ns_small\": {p99_small},\n  \
         \"p99_ns_full\": {p99_big},\n  \"p99_ns_flood\": {p99_flood},\n  \
         \"allocs_per_{ZERO_ALLOC_OPS}_ops\": {allocs},\n  \
         \"demux_cache_hits\": {},\n  \"syns_evicted\": {},\n  \
         \"tw_expired\": {}\n}}\n",
        conn_delta.demux_cache_hits, flood_delta.syns_evicted, tw_delta.tw_expired
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/e18_conn_scale.json", &json).expect("write artifact");
    println!(
        "paper check: {CONNS} conns at {per_conn}B/conn idle; p99 {p99_small}ns -> {p99_big}ns \
         ({SMALL_CONNS} -> {CONNS} conns); flood p99 {p99_flood}ns; {allocs} allocs in \
         {ZERO_ALLOC_OPS} warmed echo ops\nartifact: target/e18_conn_scale.json ({} bytes)\n",
        json.len()
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut group = c.benchmark_group("e18_conn_scale");
    group.sample_size(10);
    group.bench_function("echo_op_100_conns", |b| {
        let mut world = World::new();
        let conns = world.establish(SMALL_CONNS);
        let srv = world.pair(&conns);
        let payload = DemiBuffer::from_slice(&[0x5au8; PAYLOAD]);
        let mut k = 0usize;
        b.iter(|| {
            let (i, c) = conns[k % conns.len()];
            let s = srv[k % srv.len()];
            k += 1;
            world.echo_op(criterion::black_box(i), c, s, &payload)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
