//! E3 — §3.2: "UNIX pipes force applications to operate on streams of
//! data; however, applications like Redis operate on atomic units... by
//! the time Redis has inspected a pipe and found that its read operation
//! is incomplete, it could have processed a request that was ready."
//!
//! Regenerates: wasted partial-request inspections for a stream interface
//! vs a queue interface, as requests arrive fragmented; plus the same
//! contrast through the full stack (catnap POSIX reads vs catnip pops).

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demi_memory::DemiBuffer;
use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnap_pair, catnip_pair, host_ip};
use demikernel::types::Sga;
use net_stack::framing::{encode_message, FrameDecoder};
use net_stack::types::SocketAddr;

/// Stream server model: the app is woken per arriving fragment and
/// re-inspects the pipe each time (Redis with epoll).
fn stream_inspections(messages: usize, size: usize, fragments: usize) -> (u64, u64) {
    let mut decoder = FrameDecoder::new();
    let mut complete = 0u64;
    for m in 0..messages {
        let wire = encode_message(&vec![(m % 251) as u8; size]);
        let frag_len = wire.len().div_ceil(fragments);
        for chunk in wire.chunks(frag_len) {
            decoder.push_chunk(DemiBuffer::from_slice(chunk));
            // The app inspects after every wakeup; most inspections find
            // an incomplete request.
            while let Ok(Some(_)) = decoder.next_message() {
                complete += 1;
            }
        }
    }
    (decoder.stats().partial_inspections, complete)
}

fn experiment_table() {
    let mut table = Table::new(
        "E3a: wasted partial-request inspections (1000 × 4KiB requests)",
        &["fragments/req", "stream wasted inspections", "queue wasted"],
    );
    for &fragments in &[1usize, 2, 4, 8, 16] {
        let (wasted, complete) = stream_inspections(1000, 4096, fragments);
        assert_eq!(complete, 1000);
        // The queue abstraction pops only complete elements: zero waste by
        // construction (verified across the whole test suite).
        table.row(&[format!("{fragments}"), format!("{wasted}"), "0".into()]);
    }
    table.print();

    // E3b: the same contrast through the full stack. 8 KiB messages cross
    // several TCP segments; count app-level receive operations.
    let rounds = 100u64;
    let size = 8192usize;

    let (_rt, _fabric, client, server) = catnip_pair(31);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), 80)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();
    let payload = vec![7u8; size];
    for _ in 0..rounds {
        client
            .blocking_push(cqd, &Sga::from_slice(&payload))
            .unwrap();
        let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        assert_eq!(sga.len(), size);
    }
    let demi_ops = client.runtime().metrics().snapshot().pops;

    let (_rt2, _fabric2, kclient, kserver) = catnap_pair(32);
    let lqd = kserver.socket(SocketKind::Tcp).unwrap();
    kserver.bind(lqd, SocketAddr::new(host_ip(2), 80)).unwrap();
    kserver.listen(lqd, 8).unwrap();
    let aqt = kserver.accept(lqd).unwrap();
    let cqd = kclient.socket(SocketKind::Tcp).unwrap();
    let cqt = kclient
        .connect(cqd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    let sqd = kserver.wait(aqt, None).unwrap().expect_accept();
    kclient.wait(cqt, None).unwrap();
    kserver.sim_kernel().reset_stats();
    for _ in 0..rounds {
        kclient
            .blocking_push(cqd, &Sga::from_slice(&payload))
            .unwrap();
        let (_, sga) = kserver.blocking_pop(sqd).unwrap().expect_pop();
        assert_eq!(sga.len(), size);
    }
    let posix_reads = kserver.kernel_stats().unwrap().syscalls;

    let mut t2 = Table::new(
        "E3b: app receive operations per 8KiB request (full stack, 100 reqs)",
        &["interface", "receive ops", "ops/request"],
    );
    t2.row(&[
        "POSIX read (stream)".into(),
        format!("{posix_reads}"),
        format!("{:.1}", posix_reads as f64 / rounds as f64),
    ]);
    t2.row(&[
        "Demikernel pop (queue)".into(),
        format!("{demi_ops}"),
        format!("{:.1}", demi_ops as f64 / rounds as f64),
    ]);
    t2.print();
    assert!(posix_reads as f64 / rounds as f64 > 1.0);
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e3_atomic_units");
    group.sample_size(10);
    group.bench_function("stream_reassembly_4frag", |b| {
        b.iter(|| stream_inspections(criterion::black_box(100), 4096, 4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
