//! E6 — §4.2/§4.3: filters offload to the device ("libOSes always
//! implement filters directly on supported devices but default to the
//! CPU"), and "filters ... can improve cache utilization by steering I/O
//! to CPUs based on application-specific parameters (e.g., keys in a
//! key-value store)".

use std::rc::Rc;

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::{CoreCaches, SteeringPolicy, Table, ZipfKeys};
use demikernel::libos::catnip::Catnip;
use demikernel::libos::{LibOs, SocketKind};
use demikernel::ops::Demikernel;
use demikernel::runtime::Runtime;
use demikernel::testing::{host_ip, host_mac};
use demikernel::types::Sga;
use dpdk_sim::PortConfig;
use net_stack::types::SocketAddr;
use sim_fabric::Fabric;

/// Runs the filter placement experiment; returns
/// (cpu_evals, device_cycles, device_filtered).
fn filter_placement(slots: usize, packets: u32, match_pct: u32) -> (u64, u64, u64) {
    let fabric = Fabric::new(61);
    let rt = Runtime::with_fabric(fabric.clone());
    let sender = Catnip::new(&rt, &fabric, host_mac(1), host_ip(1));
    let receiver_libos = Catnip::with_port_config(
        &rt,
        &fabric,
        PortConfig {
            mac: host_mac(2),
            num_rx_queues: 1,
            rx_ring_size: 4096,
            smartnic_slots: slots,
        },
        host_ip(2),
    );
    let receiver = Demikernel::new(Rc::new(receiver_libos.clone()));

    let raw = receiver.socket(SocketKind::Udp).unwrap();
    receiver
        .bind(raw, SocketAddr::new(host_ip(2), 514))
        .unwrap();
    let wanted = receiver
        .filter(raw, Rc::new(|sga: &Sga| sga.to_vec()[0] == 1))
        .unwrap();

    let tx = sender.socket(SocketKind::Udp).unwrap();
    sender.bind(tx, SocketAddr::new(host_ip(1), 9000)).unwrap();
    let mut expected = 0u32;
    let period = 100 / match_pct; // Matches spread evenly through the run.
    for i in 0..packets {
        let tag = u32::from(i % period == 0);
        expected += tag;
        sender
            .pushto(
                tx,
                &Sga::from_slice(&[tag as u8, i as u8]),
                SocketAddr::new(host_ip(2), 514),
            )
            .unwrap();
    }
    for _ in 0..expected {
        let (_, sga) = receiver.blocking_pop(wanted).unwrap().expect_pop();
        assert_eq!(sga.to_vec()[0], 1);
    }
    let ops = receiver.ops_stats();
    let nic = receiver_libos.port().smartnic_stats();
    (ops.cpu_filter_evals, nic.device_cycles, nic.frames_filtered)
}

fn experiment_tables() {
    let mut t1 = Table::new(
        "E6a: filter placement (1000 packets, 10% match)",
        &["device", "host evals", "device cycles", "device-dropped"],
    );
    for (slots, label) in [
        (0usize, "plain NIC (CPU filter)"),
        (4, "SmartNIC (offloaded)"),
    ] {
        let (evals, cycles, dropped) = filter_placement(slots, 1000, 10);
        t1.row(&[
            label.into(),
            format!("{evals}"),
            format!("{cycles}"),
            format!("{dropped}"),
        ]);
        if slots == 0 {
            assert!(evals >= 900, "CPU does the filtering work: {evals}");
        } else {
            assert_eq!(evals, 0, "offloaded filter must not burn host evals");
            assert!(dropped >= 890);
        }
    }
    t1.print();

    // E6b: key-based steering vs RSS, per-core caches.
    let mut t2 = Table::new(
        "E6b: cache hit rate — RSS vs key steering (zipf 0.99, 4 cores)",
        &["cache entries/core", "RSS hit rate", "steered hit rate"],
    );
    for &capacity in &[64usize, 256, 1024] {
        let mut rss = CoreCaches::new(4, capacity);
        let mut steered = CoreCaches::new(4, capacity);
        let mut keys = ZipfKeys::new(62, 4096, 0.99);
        for i in 0..100_000u64 {
            let key = keys.next_key();
            let flow = i % 257; // Many client connections.
            rss.access(SteeringPolicy::Rss, key, flow);
            steered.access(SteeringPolicy::ByKey, key, flow);
        }
        assert!(steered.hit_rate() > rss.hit_rate());
        t2.row(&[
            format!("{capacity}"),
            format!("{:.1}%", rss.hit_rate() * 100.0),
            format!("{:.1}%", steered.hit_rate() * 100.0),
        ]);
    }
    t2.print();
}

fn bench(c: &mut Criterion) {
    experiment_tables();
    let mut group = c.benchmark_group("e6_offload_steering");
    group.sample_size(10);
    group.bench_function("cpu_filter_world", |b| {
        b.iter(|| filter_placement(0, criterion::black_box(200), 10))
    });
    group.bench_function("device_filter_world", |b| {
        b.iter(|| filter_placement(4, criterion::black_box(200), 10))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
