//! E8 — §6: "We explored mTCP but found it to be too expensive; for
//! example, its latency was higher than the Linux kernel's."
//!
//! Regenerates: echo RTT for three stacks on identical fabric/devices —
//! the Demikernel (catnip), the in-kernel POSIX path (catnap), and the
//! mTCP model (POSIX-preserving user stack with batching epochs).
//! Expected shape: demikernel < kernel < mTCP on latency, while mTCP
//! keeps POSIX's copies and zero syscalls.

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::{catnap_udp_echo, catnip_udp_echo, mtcp_echo_world, Table};
use sim_fabric::SimTime;

fn experiment_table() {
    const ROUNDS: u32 = 100;
    const SIZE: usize = 1024;

    let demi = catnip_udp_echo(81, SIZE, ROUNDS);
    let kernel = catnap_udp_echo(82, SIZE, ROUNDS);
    let mut table = Table::new(
        "E8: stack latency comparison (1KiB echo, 100 rounds)",
        &["stack", "mean RTT", "syscalls/req", "copies/req"],
    );
    table.row(&[
        "demikernel (catnip)".into(),
        format!("{}", demi.mean_rtt),
        format!("{:.1}", demi.crossings_per_req),
        format!("{:.1}", demi.copies_per_req),
    ]);
    table.row(&[
        "kernel (catnap)".into(),
        format!("{}", kernel.mean_rtt),
        format!("{:.1}", kernel.crossings_per_req),
        format!("{:.1}", kernel.copies_per_req),
    ]);
    for &epoch_us in &[10u64, 32] {
        let mtcp = mtcp_echo_world(83, SIZE, ROUNDS, SimTime::from_micros(epoch_us));
        table.row(&[
            format!("mTCP model (epoch {epoch_us}µs)"),
            format!("{}", mtcp.mean_rtt),
            format!("{:.1}", mtcp.crossings_per_req),
            format!("{:.1}", mtcp.copies_per_req),
        ]);
        // The paper's ordering: user-level batching beats nothing on
        // latency — it is worse than the kernel.
        assert!(
            mtcp.mean_rtt.as_nanos() > kernel.mean_rtt.as_nanos(),
            "mTCP (epoch {epoch_us}µs) must be slower than the kernel: \
             {} vs {}",
            mtcp.mean_rtt,
            kernel.mean_rtt
        );
        assert_eq!(mtcp.crossings_per_req, 0.0, "no syscalls — kernel bypassed");
        assert!(
            mtcp.copies_per_req >= 2.0,
            "POSIX interface keeps the copies"
        );
    }
    assert!(demi.mean_rtt.as_nanos() < kernel.mean_rtt.as_nanos());
    table.print();
    println!(
        "shape check: demikernel < kernel < mTCP on latency — matches the paper's \
         related-work observation\n"
    );
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e8_mtcp_latency");
    group.sample_size(10);
    group.bench_function("mtcp_world_20rounds", |b| {
        b.iter(|| mtcp_echo_world(criterion::black_box(9), 1024, 20, SimTime::from_micros(10)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
