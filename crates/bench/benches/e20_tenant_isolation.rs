//! E20 — multi-tenant device sharing under an adversarial neighbour.
//!
//! The paper's multiplexing argument (§2, §4) says a kernel-bypass device
//! can be shared between untrusting applications only if the policy that
//! protection used to provide moves into the datapath: private mempool
//! partitions, bounded per-tenant queues, and weighted-fair transmission.
//! This experiment runs a well-behaved victim and a hostile tenant through
//! one simulated NIC and measures what the hostile tenant can and cannot
//! do to its neighbour:
//!
//! * **tail-latency isolation**: the victim's echo RTT p99 (virtual time,
//!   deterministic) under a hostile TX flood ≥ 10× the hostile tenant's
//!   fair share stays ≤ 2× the hostile-absent baseline (asserted). The
//!   same flood through a shared FIFO — no per-tenant lanes — is measured
//!   as the contrast case and must blow past that bound.
//! * **weighted fairness**: under bilateral saturation the victim (weight
//!   3) sustains ≥ 90% of its 3/4 weighted share of the per-pass byte
//!   budget (asserted).
//! * **pool containment**: the hostile tenant leaking buffers exhausts
//!   only its own budgeted partition — a typed [`PoolExhausted`] naming
//!   the tenant — while the victim's partition allocates undisturbed
//!   (asserted).
//! * **partitioned TCP state**: a SYN spray at the hostile tenant's
//!   listener fills only that listener's fixed table; the victim's SYN
//!   partition, TIME_WAIT records, and established connection ride out
//!   the flood untouched (asserted).
//! * **zero cross-tenant views**: every attempt to view, clone, mutate,
//!   or prepend into the victim's buffers from the hostile tenant's
//!   context fails typed — the hostile tenant never observes a single
//!   victim payload byte (asserted).
//!
//! Results are written to `target/e20_tenant_isolation.json` as a
//! plottable artifact.

use std::net::Ipv4Addr;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demi_memory::{BufferPool, DemiBuffer, DEFAULT_HEADROOM};
use demi_telemetry::hist::Histogram;
use demi_tenant::{TenantId, TenantRegistry, TenantSpec};
use net_stack::counters as nsc;
use net_stack::tcp::State;
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, StackConfig, TenancyCfg, TenantLaneStats};
use sim_fabric::{Fabric, MacAddress};

/// Sized so one wire frame (ETH 14 + IP 20 + UDP 8 + payload) is exactly
/// the 1500-byte MTU the DRR quantum is denominated in: quanta are then
/// integral in frames and the weighted shares come out exact instead of
/// drifting on banked sub-frame deficits.
const PAYLOAD: usize = 1_458;
/// Wire bytes of one echo/flood frame.
const FRAME: u64 = PAYLOAD as u64 + 42;
const VICTIM_WEIGHT: u32 = 3;
const HOSTILE_WEIGHT: u32 = 1;
/// Per-poll-pass TX byte budget: four frames, split 3:1 by DRR weight.
const PASS_BYTES: u64 = 4 * FRAME;
/// Poll-pass interval: one pass budget every 1042ns offers ~32 Gbps to
/// the 40 Gbps line, i.e. the admission budget is provisioned *below*
/// line rate. Provisioning at exactly line rate would let the flood keep
/// a standing never-draining queue at the serializer and every op would
/// deepen it by one frame — queueing theory, not an isolation failure.
const PASS_NS: u64 = PASS_BYTES * 8 * 1_000_000_000 / 32_000_000_000;
/// Frames the hostile tenant keeps staged ahead of every victim op —
/// 64× its one-frame-per-pass fair share, comfortably past the 10×
/// oversubscription the experiment calls for.
const HOSTILE_BACKLOG: usize = 64;
const OPS: usize = if cfg!(debug_assertions) { 60 } else { 240 };
const WARMUP_OPS: usize = 5;
/// SYN spray: 4× the hostile listener's backlog in half-open SYNs.
const SYN_BACKLOG: usize = 4;
const SYN_FLOOD: usize = 16;
/// Byte budget of each tenant's private pool partition in the leak phase.
const POOL_BUDGET: u64 = 256 * 1024;
const LEAK_ALLOC: usize = 2_048;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

fn plain_host(fabric: &Fabric, last: u8) -> NetworkStack {
    let port = dpdk_sim::DpdkPort::new(
        fabric,
        dpdk_sim::PortConfig::basic(MacAddress::from_last_octet(last)),
    );
    NetworkStack::new(port, fabric.clock(), StackConfig::new(ip(last)))
}

fn tenant_host(fabric: &Fabric, last: u8, tenancy: TenancyCfg) -> NetworkStack {
    let port = dpdk_sim::DpdkPort::new(
        fabric,
        dpdk_sim::PortConfig::basic(MacAddress::from_last_octet(last)),
    );
    let mut cfg = StackConfig::new(ip(last));
    cfg.tenancy = Some(tenancy);
    NetworkStack::new(port, fabric.clock(), cfg)
}

/// Runs the world until `until` returns true or the simulation wedges.
fn settle(fabric: &Fabric, stacks: &[&NetworkStack], mut until: impl FnMut() -> bool) {
    for _ in 0..400_000 {
        for s in stacks {
            s.poll();
        }
        if until() {
            return;
        }
        if fabric.advance_to_next_event() {
            continue;
        }
        let deadline = stacks.iter().filter_map(|s| s.next_deadline()).min();
        match deadline {
            Some(t) => fabric.clock().advance_to(t),
            None => panic!("simulation went quiescent before the condition held"),
        }
    }
    panic!("simulation did not settle");
}

/// Resolves ARP in both directions over a throwaway host-owned UDP port.
fn warm_arp(fabric: &Fabric, a: &NetworkStack, b: &NetworkStack) {
    a.udp_bind(9901).unwrap();
    b.udp_bind(9901).unwrap();
    let to_b = SocketAddr::new(b.local_ip(), 9901);
    let to_a = SocketAddr::new(a.local_ip(), 9901);
    a.udp_sendto(9901, to_b, DemiBuffer::from_slice(b"warm"))
        .unwrap();
    b.udp_sendto(9901, to_a, DemiBuffer::from_slice(b"warm"))
        .unwrap();
    settle(fabric, &[a, b], || {
        a.udp_pending(9901) > 0 && b.udp_pending(9901) > 0
    });
    while a.udp_recv_from(9901).is_some() {}
    while b.udp_recv_from(9901).is_some() {}
}

fn tenant_payload(pool: &BufferPool, len: usize, fill: u8) -> DemiBuffer {
    let mut buf = pool.alloc_with_headroom(DEFAULT_HEADROOM, len);
    buf.try_mut().expect("fresh buffer is exclusive").fill(fill);
    buf
}

fn lane(stats: &[TenantLaneStats], t: TenantId) -> TenantLaneStats {
    stats
        .iter()
        .find(|s| s.tenant == t.0)
        .copied()
        .expect("tenant lane exists")
}

const VICTIM_PORT: u16 = 7100;
const HOSTILE_PORT: u16 = 7200;

/// One device shared by a victim echo session and a hostile sprayer. With
/// `isolated`, each tenant gets its own weighted DRR lane; without, both
/// squeeze through a single FIFO lane — the "no policy in the datapath"
/// contrast case — under the same per-pass byte budget.
struct EchoWorld {
    fabric: Fabric,
    a: NetworkStack,
    b: NetworkStack,
    victim: TenantId,
    hostile: TenantId,
    vpool: BufferPool,
    hpool: BufferPool,
}

impl EchoWorld {
    fn new(isolated: bool) -> Self {
        let fabric = Fabric::new(0xE20);
        let registry = Arc::new(TenantRegistry::new());
        let (victim, hostile) = if isolated {
            (
                registry.register(TenantSpec::named("victim", VICTIM_WEIGHT)),
                registry.register(TenantSpec::named("hostile", HOSTILE_WEIGHT)),
            )
        } else {
            // A single lane both tenants share: what the device looks
            // like when nobody polices it.
            let shared = registry.register(TenantSpec::named("shared", 1));
            (shared, shared)
        };
        registry.grant_port(victim, VICTIM_PORT);
        registry.grant_port(hostile, HOSTILE_PORT);
        let mut tenancy = TenancyCfg::new(Arc::clone(&registry));
        tenancy.tx_pass_bytes = Some(PASS_BYTES);
        let a = tenant_host(&fabric, 1, tenancy);
        let b = plain_host(&fabric, 2);
        warm_arp(&fabric, &a, &b);
        demi_tenant::scope(victim, || a.udp_bind(VICTIM_PORT).unwrap());
        demi_tenant::scope(hostile, || a.udp_bind(HOSTILE_PORT).unwrap());
        b.udp_bind(VICTIM_PORT).unwrap();
        let vpool = BufferPool::for_tenant(victim, None);
        let hpool = BufferPool::for_tenant(hostile, None);
        EchoWorld {
            fabric,
            a,
            b,
            victim,
            hostile,
            vpool,
            hpool,
        }
    }

    /// Keeps the hostile tenant's staging backlogged at `HOSTILE_BACKLOG`
    /// frames, sprayed at an unbound peer port: pure device pressure.
    fn top_up_hostile(&self) {
        let staged = lane(&self.a.tenant_stats(), self.hostile).staged_frames;
        for _ in staged..HOSTILE_BACKLOG as u64 {
            let _ = self.a.udp_sendto(
                HOSTILE_PORT,
                SocketAddr::new(ip(2), 9),
                tenant_payload(&self.hpool, PAYLOAD, 0xEE),
            );
        }
    }

    /// One victim request/response over the shared device; returns the
    /// virtual-time RTT in nanoseconds and checks the echoed bytes.
    ///
    /// The drive loop is paced to the line rate — one poll pass per the
    /// time the 40 Gbps link needs to serialize one pass budget — so the
    /// device queue models a steadily-driven NIC. An unpaced spin would
    /// push passes onto the wire faster than virtual time drains them
    /// and every measurement would collapse into line-queueing noise.
    fn echo_rtt(&self, flood: bool) -> u64 {
        if flood {
            self.top_up_hostile();
        }
        let t0 = self.fabric.clock().now().as_nanos();
        self.a
            .udp_sendto(
                VICTIM_PORT,
                SocketAddr::new(ip(2), VICTIM_PORT),
                tenant_payload(&self.vpool, PAYLOAD, 0x5A),
            )
            .unwrap();
        for _ in 0..100_000 {
            self.a.poll();
            self.b.poll();
            let mut echoed = false;
            while let Some((from, buf)) = self.b.udp_recv_from(VICTIM_PORT) {
                self.b.udp_sendto(VICTIM_PORT, from, buf).unwrap();
                echoed = true;
            }
            if echoed {
                // Flush the coalesced echo right away: the response
                // should not wait a whole pass interval in staging.
                self.b.poll();
            }
            if self.a.udp_pending(VICTIM_PORT) > 0 {
                let (_, back) = self.a.udp_recv_from(VICTIM_PORT).unwrap();
                assert_eq!(back.len(), PAYLOAD);
                assert!(
                    back.as_slice().iter().all(|&x| x == 0x5A),
                    "the victim's payload came back intact"
                );
                return self.fabric.clock().now().as_nanos() - t0;
            }
            let next = self
                .fabric
                .clock()
                .now()
                .saturating_add(sim_fabric::SimTime::from_nanos(PASS_NS));
            self.fabric.advance_to(next);
        }
        panic!("echo never completed");
    }

    fn p99(&self, flood: bool) -> u64 {
        for _ in 0..WARMUP_OPS {
            self.echo_rtt(flood);
        }
        let mut hist = Histogram::new();
        for _ in 0..OPS {
            hist.record(self.echo_rtt(flood));
        }
        hist.p99()
    }
}

fn experiment() {
    let mut table = Table::new(
        "E20: multi-tenant isolation under an adversarial neighbour",
        &["metric", "victim", "hostile", "bound"],
    );

    // -- Phase 1: victim echo p99, hostile absent (the baseline). --
    let world = EchoWorld::new(true);
    let p99_base = world.p99(false);
    table.row(&[
        "echo p99, hostile idle".into(),
        format!("{p99_base}ns"),
        "-".into(),
        "baseline".into(),
    ]);

    // -- Phase 2: hostile floods TX at >= 10x its fair share. --
    let p99_flood = world.p99(true);
    let flood_bound = 2 * p99_base;
    assert!(
        p99_flood <= flood_bound,
        "a hostile flood behind its own lane must not degrade the victim's \
         p99 > 2x: {p99_base}ns -> {p99_flood}ns (bound {flood_bound}ns)"
    );
    table.row(&[
        "echo p99, hostile flooding".into(),
        format!("{p99_flood}ns"),
        format!("{HOSTILE_BACKLOG} staged"),
        format!("<=2x = {flood_bound}ns"),
    ]);

    // -- Phase 3: the same flood through a shared FIFO (contrast). --
    let fifo = EchoWorld::new(false);
    fifo.p99(false); // warm the lane bookkeeping before flooding
    let p99_fifo = fifo.p99(true);
    assert!(
        p99_fifo > flood_bound,
        "the contrast case must show the harm: a shared FIFO puts the \
         victim behind the flood ({p99_fifo}ns vs bound {flood_bound}ns)"
    );
    table.row(&[
        "echo p99, shared FIFO".into(),
        format!("{p99_fifo}ns"),
        "same flood".into(),
        "> bound (no isolation)".into(),
    ]);

    // -- Phase 4: weighted fair share under bilateral saturation. --
    const SATURATE_FRAMES: usize = 200;
    const PASSES: u64 = 20;
    for _ in 0..SATURATE_FRAMES {
        world
            .a
            .udp_sendto(
                VICTIM_PORT,
                SocketAddr::new(ip(2), VICTIM_PORT),
                tenant_payload(&world.vpool, PAYLOAD, 0x5A),
            )
            .unwrap();
    }
    world.top_up_hostile();
    let before = lane(&world.a.tenant_stats(), world.victim);
    for _ in 0..PASSES {
        world.a.poll();
        while world.fabric.advance_to_next_event() {}
        world.b.poll();
        world.top_up_hostile();
    }
    let after = lane(&world.a.tenant_stats(), world.victim);
    let victim_bytes = after.sent_bytes - before.sent_bytes;
    let offered = PASSES * PASS_BYTES;
    let fair = offered * VICTIM_WEIGHT as u64 / (VICTIM_WEIGHT + HOSTILE_WEIGHT) as u64;
    let share_pct = 100.0 * victim_bytes as f64 / fair as f64;
    assert!(
        victim_bytes * 10 >= fair * 9,
        "under saturation the victim must sustain >= 90% of its weighted \
         share: got {victim_bytes}B of {fair}B ({share_pct:.1}%)"
    );
    table.row(&[
        "fair-share throughput".into(),
        format!("{victim_bytes}B ({share_pct:.1}%)"),
        format!("{}B", offered - victim_bytes),
        format!(">=90% of {fair}B"),
    ]);

    // -- Phase 5: pool leak — exhaustion stays in the leaker's partition. --
    let tenant_before = demi_tenant::counters::snapshot();
    let hpool = BufferPool::for_tenant(world.hostile, Some(POOL_BUDGET));
    let vpool = BufferPool::for_tenant(world.victim, Some(POOL_BUDGET));
    let mut leaked = Vec::new();
    let exhausted = loop {
        match hpool.try_alloc(LEAK_ALLOC) {
            Ok(buf) => leaked.push(buf),
            Err(e) => break e,
        }
    };
    assert_eq!(
        exhausted.tenant, world.hostile,
        "the typed error names the tenant that leaked itself dry"
    );
    // The victim's partition is a different budget entirely: it still
    // allocates, and can consume its own full budget, while the hostile
    // partition sits exhausted.
    let victim_allocs: Vec<_> = (0..(POOL_BUDGET as usize / LEAK_ALLOC) / 2)
        .map(|_| {
            vpool
                .try_alloc(LEAK_ALLOC)
                .expect("the victim pool is untouched by the neighbour's leak")
        })
        .collect();
    let exhaustions = demi_tenant::counters::snapshot()
        .delta(&tenant_before)
        .pool_exhaustions;
    assert!(exhaustions >= 1, "exhaustion is a counted isolation event");
    drop(victim_allocs);
    let leaked_count = leaked.len();
    drop(leaked);
    hpool
        .try_alloc(LEAK_ALLOC)
        .expect("freeing the leak makes the partition allocate again");
    table.row(&[
        "pool leak containment".into(),
        "allocates".into(),
        format!("exhausted after {leaked_count}"),
        "victim unaffected".into(),
    ]);

    // -- Phase 6: SYN spray fills only the hostile listener's partition. --
    let fabric = Fabric::new(0xE21);
    let registry = Arc::new(TenantRegistry::new());
    let victim = registry.register(TenantSpec::named("victim", 1));
    let hostile = registry.register(TenantSpec::named("hostile", 1));
    registry.grant_port(victim, 80);
    registry.grant_port(hostile, 81);
    let a = tenant_host(&fabric, 1, TenancyCfg::new(Arc::clone(&registry)));
    let b = tenant_host(&fabric, 2, TenancyCfg::new(Arc::clone(&registry)));
    let lid = demi_tenant::scope(victim, || b.tcp_listen(80, 16).unwrap());
    demi_tenant::scope(hostile, || b.tcp_listen(81, SYN_BACKLOG).unwrap());

    // Victim state established before the spray: two closed connections
    // parked in TIME_WAIT plus one live connection.
    let to_victim = SocketAddr::new(ip(2), 80);
    let closed: Vec<_> = demi_tenant::scope(victim, || {
        (0..2).map(|_| a.tcp_connect(to_victim).unwrap()).collect()
    });
    let vc = demi_tenant::scope(victim, || a.tcp_connect(to_victim).unwrap());
    let mut accepted = Vec::new();
    settle(&fabric, &[&a, &b], || {
        while let Ok(Some(s)) = b.tcp_accept(lid) {
            accepted.push(s);
        }
        accepted.len() == 3
            && closed
                .iter()
                .chain(std::iter::once(&vc))
                .all(|&c| a.tcp_state(c) == Ok(State::Established))
    });
    // Full close walk on two of them: client FIN, server sees EOF and
    // closes back, client takes the TIME_WAIT records.
    for &c in &closed {
        a.tcp_close(c).unwrap();
    }
    settle(&fabric, &[&a, &b], || {
        accepted.iter().filter(|&&s| b.tcp_eof(s)).count() == 2
    });
    for &s in &accepted {
        if b.tcp_eof(s) {
            b.tcp_close(s).unwrap();
        }
    }
    settle(&fabric, &[&a, &b], || {
        closed
            .iter()
            .all(|&c| a.tcp_state(c) == Ok(State::TimeWait))
    });
    let tw_before = a.tcp_tw_count_for(victim.0);
    assert_eq!(tw_before, 2);

    // The spray: half-open SYNs at 4x the hostile listener's backlog. The
    // sprayer stops polling after emitting them so no handshake completes.
    let conn_before = nsc::conn_snapshot();
    let _sprayed: Vec<_> = demi_tenant::scope(hostile, || {
        (0..SYN_FLOOD)
            .map(|_| a.tcp_connect(SocketAddr::new(ip(2), 81)).unwrap())
            .collect()
    });
    for _ in 0..8 {
        a.poll();
    }
    for _ in 0..256 {
        b.poll();
        if !fabric.advance_to_next_event() {
            break;
        }
    }
    let syns_evicted = nsc::conn_snapshot().delta(&conn_before).syns_evicted;
    assert_eq!(
        b.tcp_syn_backlog_used(81),
        SYN_BACKLOG,
        "the hostile listener's fixed SYN table is full"
    );
    assert_eq!(
        b.tcp_syn_backlog_used(80),
        0,
        "the victim listener's SYN partition is untouched by the spray"
    );
    assert!(
        syns_evicted as usize >= SYN_FLOOD - SYN_BACKLOG,
        "overflow SYNs evict oldest-first from the hostile table"
    );
    assert_eq!(
        a.tcp_tw_count_for(victim.0),
        tw_before,
        "the victim's TIME_WAIT partition rode out the spray"
    );
    assert_eq!(
        a.tcp_state(vc),
        Ok(State::Established),
        "the victim's live connection rode out the spray"
    );
    table.row(&[
        "SYN spray containment".into(),
        format!("syn 0, tw {tw_before}"),
        format!("syn {SYN_BACKLOG}/{SYN_BACKLOG}, {syns_evicted} evicted"),
        "victim partitions untouched".into(),
    ]);

    // -- Phase 7: the hostile tenant never observes a victim byte. --
    let denial_before = demi_tenant::counters::snapshot();
    let mut secret = tenant_payload(&world.vpool, PAYLOAD, 0x5A);
    let mut observed = 0u32;
    demi_tenant::scope(world.hostile, || {
        observed += secret.try_slice(0, PAYLOAD).is_ok() as u32;
        observed += secret.try_clone().is_ok() as u32;
        observed += secret.try_mut().is_some() as u32;
        observed += secret.prepend(1).is_ok() as u32;
    });
    let denials = demi_tenant::counters::snapshot()
        .delta(&denial_before)
        .cross_tenant_denials;
    assert_eq!(observed, 0, "zero cross-tenant buffer views succeeded");
    assert!(denials >= 4, "every attempt was a counted, typed denial");
    assert!(secret.as_slice().iter().all(|&x| x == 0x5A));
    table.row(&[
        "cross-tenant views".into(),
        "bytes intact".into(),
        format!("0 of 4 ({denials} denied)"),
        "zero views".into(),
    ]);

    table.print();

    let json = format!(
        "{{\n  \"experiment\": \"e20_tenant_isolation\",\n  \"ops\": {OPS},\n  \
         \"p99_ns_base\": {p99_base},\n  \"p99_ns_drr_flood\": {p99_flood},\n  \
         \"p99_ns_shared_fifo_flood\": {p99_fifo},\n  \
         \"victim_share_pct\": {share_pct:.1},\n  \
         \"hostile_leaked_bufs\": {leaked_count},\n  \
         \"pool_exhaustions\": {exhaustions},\n  \
         \"syn_backlog_hostile\": {SYN_BACKLOG},\n  \"syn_backlog_victim\": 0,\n  \
         \"syns_evicted\": {syns_evicted},\n  \
         \"victim_tw_records\": {tw_before},\n  \
         \"cross_tenant_views\": 0,\n  \"cross_tenant_denials\": {denials}\n}}\n"
    );
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/e20_tenant_isolation.json", &json).expect("write artifact");
    println!(
        "paper check: victim p99 {p99_base}ns -> {p99_flood}ns under a 10x+ hostile \
         flood (shared FIFO: {p99_fifo}ns); victim share {share_pct:.1}% of fair; \
         leak contained after {leaked_count} buffers; 0 cross-tenant views\n\
         artifact: target/e20_tenant_isolation.json ({} bytes)\n",
        json.len()
    );
}

fn bench(c: &mut Criterion) {
    experiment();
    let mut group = c.benchmark_group("e20_tenant_isolation");
    group.sample_size(10);
    group.bench_function("victim_echo_under_flood", |b| {
        let world = EchoWorld::new(true);
        world.echo_rtt(true);
        b.iter(|| world.echo_rtt(criterion::black_box(true)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
