//! E7 — Table 1 + §2: the accelerator taxonomy, regenerated from device
//! capability probes, and the consequence the paper draws from it: the
//! same application runs over every category only because the libOS fills
//! each device's gaps.

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catcorn_pair, catnip_pair, host_ip};
use demikernel::types::Sga;
use net_stack::types::SocketAddr;
use sim_fabric::DeviceCaps;

fn caps_row(table: &mut Table, caps: &DeviceCaps) {
    let b = |v: bool| if v { "✓" } else { "–" }.to_string();
    table.row(&[
        caps.name.into(),
        caps.category.label().into(),
        b(caps.kernel_bypass),
        b(caps.reliable_transport),
        b(caps.network_stack),
        b(caps.buffer_management),
        b(caps.flow_control),
        b(caps.program_offload),
        b(caps.block_storage),
        caps.missing_os_features().len().to_string(),
    ]);
}

fn experiment_table() {
    let mut table = Table::new(
        "E7: Table 1 regenerated — what each device provides",
        &[
            "device", "category", "bypass", "reliable", "netstack", "bufmgmt", "flowctl",
            "offload", "storage", "#missing",
        ],
    );
    caps_row(&mut table, &dpdk_sim::capabilities());
    caps_row(&mut table, &spdk_sim::capabilities());
    caps_row(&mut table, &rdma_sim::capabilities());
    caps_row(&mut table, &dpdk_sim::smartnic_capabilities());
    table.print();

    // The consequence: one echo body, every device class, unmodified.
    fn echo(client: &dyn LibOs, server: &dyn LibOs, port: u16) {
        let lqd = server.socket(SocketKind::Tcp).unwrap();
        server.bind(lqd, SocketAddr::new(host_ip(2), port)).unwrap();
        server.listen(lqd, 8).unwrap();
        let aqt = server.accept(lqd).unwrap();
        let cqd = client.socket(SocketKind::Tcp).unwrap();
        let cqt = client
            .connect(cqd, SocketAddr::new(host_ip(2), port))
            .unwrap();
        let sqd = server.wait(aqt, None).unwrap().expect_accept();
        client.wait(cqt, None).unwrap();
        client
            .blocking_push(cqd, &Sga::from_slice(b"probe"))
            .unwrap();
        let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        assert_eq!(sga.to_vec(), b"probe");
    }

    let (_rt, _f, c, s) = catnip_pair(71);
    echo(&c, &s, 7000);
    println!("echo ran over catnip ({})", c.device_caps().unwrap().name);
    let (_rt, _f, c, s) = catcorn_pair(72);
    echo(&c, &s, 18515);
    println!("echo ran over catcorn ({})", c.device_caps().unwrap().name);
    println!("one source, two device classes — the libOS supplied the differences\n");
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e7_feature_matrix");
    group.sample_size(10);
    group.bench_function("capability_probe", |b| {
        b.iter(|| {
            criterion::black_box(dpdk_sim::capabilities().missing_os_features());
            criterion::black_box(rdma_sim::capabilities().missing_os_features());
            criterion::black_box(spdk_sim::capabilities().missing_os_features());
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
