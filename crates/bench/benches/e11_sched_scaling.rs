//! E11 — scheduler scaling: the cost of *waiting* must not depend on how
//! many operations are merely *outstanding*.
//!
//! The paper's wait/wait_any API invites applications to keep thousands of
//! pops in flight (one per connection). A sweep scheduler re-polls every
//! outstanding coroutine on every pass, so each completion costs O(pending)
//! polls; the waker-driven scheduler polls only tasks something actually
//! woke, so each completion costs O(1) regardless of the herd parked
//! behind it.
//!
//! Regenerates: wait-loop polls per completion and spurious polls for one
//! ready task among {10, 100, 1000, 10000} parked tasks, sweep vs wake.

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::Table;
use demi_sched::{yield_once, Condition, PollPolicy};
use demikernel::types::{OperationResult, QToken};
use demikernel::Runtime;

/// Runs `completions` one-shot ops to completion while `pending` ops sit
/// parked on never-signalled conditions. Returns (wait-loop polls per
/// completion, spurious polls, total scheduler polls).
fn run(policy: PollPolicy, pending: usize, completions: usize) -> (f64, u64, u64) {
    let rt = Runtime::new_with_policy(policy);
    let conds: Vec<Condition> = (0..pending).map(|_| Condition::new()).collect();
    let parked: Vec<QToken> = conds
        .iter()
        .map(|c| {
            let c = c.clone();
            rt.spawn_op("parked", async move {
                c.wait().await;
                OperationResult::Push
            })
        })
        .collect();
    // Drain the spawn polls so the parked herd is fully parked.
    rt.pump();
    rt.metrics().reset();
    let polls_before = rt.scheduler().stats().polls;

    for _ in 0..completions {
        let qt = rt.spawn_op("ready", async {
            yield_once().await;
            OperationResult::Push
        });
        rt.wait(qt, None).unwrap();
    }

    let stats = rt.scheduler().stats();
    let snap = rt.metrics().snapshot();
    let polls_per_completion = snap.wait_polls as f64 / completions as f64;

    // Unpark the herd so the world ends in a clean state.
    for c in &conds {
        c.signal();
    }
    for qt in parked {
        rt.wait(qt, None).unwrap();
    }
    (
        polls_per_completion,
        stats.spurious_polls,
        stats.polls - polls_before,
    )
}

fn experiment_table() {
    const COMPLETIONS: usize = 50;
    let mut table = Table::new(
        "E11: wait-loop polls per completion, 1 ready op among N parked",
        &[
            "N parked",
            "sweep polls/completion",
            "wake polls/completion",
            "sweep spurious",
            "wake spurious",
        ],
    );
    let mut wake_cost_at_smallest = None;
    for &n in &[10usize, 100, 1000, 10_000] {
        let (sweep_ppc, sweep_spurious, _) = run(PollPolicy::Sweep, n, COMPLETIONS);
        let (wake_ppc, wake_spurious, _) = run(PollPolicy::Wake, n, COMPLETIONS);
        // The claim under test: the wake scheduler's per-completion poll
        // count does not grow with the parked population, and it never
        // polls a task nothing woke.
        assert_eq!(wake_spurious, 0, "wake scheduler polled a parked task");
        let baseline = *wake_cost_at_smallest.get_or_insert(wake_ppc);
        assert!(
            (wake_ppc - baseline).abs() < f64::EPSILON,
            "wake polls/completion changed with parked population: {baseline} -> {wake_ppc}"
        );
        // The sweep scheduler, by construction, pays for the whole herd.
        assert!(
            sweep_ppc >= n as f64,
            "sweep should re-poll all {n} parked tasks per pass, got {sweep_ppc}"
        );
        table.row(&[
            format!("{n}"),
            format!("{sweep_ppc:.1}"),
            format!("{wake_ppc:.1}"),
            format!("{sweep_spurious}"),
            format!("{wake_spurious}"),
        ]);
    }
    table.print();
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e11_sched_scaling");
    group.sample_size(10);
    group.bench_function("sweep_1k_parked", |b| {
        b.iter(|| run(PollPolicy::Sweep, 1000, criterion::black_box(20)))
    });
    group.bench_function("wake_1k_parked", |b| {
        b.iter(|| run(PollPolicy::Wake, 1000, criterion::black_box(20)))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
