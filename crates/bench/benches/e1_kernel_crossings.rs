//! E1 — Fig. 1 / §1: "the kernel adds significant overhead to every I/O
//! access"; kernel bypass removes it from the data path.
//!
//! Regenerates: UDP echo RTT, kernel crossings per request, and copies per
//! request for catnip (kernel-bypass) vs catnap (traditional), across
//! message sizes. Expected shape: catnip RTT several× lower, with exactly
//! zero crossings and zero libOS copies.

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::{catnap_udp_echo, catnap_udp_echo_with_cost, catnip_udp_echo, Table};
use posix_sim::CostModel;
use sim_fabric::SimTime;

fn experiment_table() {
    let mut table = Table::new(
        "E1: data-path kernel involvement (UDP echo, 200 rounds)",
        &["size", "path", "mean RTT", "crossings/req", "copies/req"],
    );
    for &size in &[64usize, 512, 1400] {
        let bypass = catnip_udp_echo(1_000 + size as u64, size, 200);
        let kernel = catnap_udp_echo(2_000 + size as u64, size, 200);
        table.row(&[
            format!("{size}B"),
            "catnip (bypass)".into(),
            format!("{}", bypass.mean_rtt),
            format!("{:.1}", bypass.crossings_per_req),
            format!("{:.1}", bypass.copies_per_req),
        ]);
        table.row(&[
            format!("{size}B"),
            "catnap (kernel)".into(),
            format!("{}", kernel.mean_rtt),
            format!("{:.1}", kernel.crossings_per_req),
            format!("{:.1}", kernel.copies_per_req),
        ]);
        assert_eq!(bypass.crossings_per_req, 0.0, "bypass must not cross");
        assert!(
            kernel.mean_rtt.as_nanos() > bypass.mean_rtt.as_nanos(),
            "the kernel path must be slower"
        );
    }
    table.print();

    // Ablation: which kernel overhead dominates? Zero out one cost class
    // at a time (DESIGN.md's ablation of the Fig. 1 gap).
    let mut ablation = Table::new(
        "E1 ablation: kernel overhead decomposition (1400B echo)",
        &["cost model", "mean RTT"],
    );
    let full = catnap_udp_echo_with_cost(3_001, 1400, 200, CostModel::default());
    let no_crossings = catnap_udp_echo_with_cost(
        3_002,
        1400,
        200,
        CostModel {
            syscall: SimTime::ZERO,
            ..CostModel::default()
        },
    );
    let no_copies = catnap_udp_echo_with_cost(
        3_003,
        1400,
        200,
        CostModel {
            copy_per_kib: SimTime::ZERO,
            ..CostModel::default()
        },
    );
    let free = catnap_udp_echo_with_cost(3_004, 1400, 200, CostModel::free());
    for (label, stats) in [
        ("full kernel", full),
        ("crossings free (copies only)", no_crossings),
        ("copies free (crossings only)", no_copies),
        ("both free (stack + fabric only)", free),
    ] {
        ablation.row(&[label.into(), format!("{}", stats.mean_rtt)]);
    }
    ablation.print();
    assert!(full.mean_rtt.as_nanos() > no_crossings.mean_rtt.as_nanos());
    assert!(full.mean_rtt.as_nanos() > no_copies.mean_rtt.as_nanos());
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e1_kernel_crossings");
    group.sample_size(10);
    // Wall-clock cost of simulating one full echo world per path: a proxy
    // for host-side per-request processing work.
    group.bench_function("catnip_echo_world_64B", |b| {
        b.iter(|| catnip_udp_echo(criterion::black_box(7), 64, 50))
    });
    group.bench_function("catnap_echo_world_64B", |b| {
        b.iter(|| catnap_udp_echo(criterion::black_box(7), 64, 50))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
