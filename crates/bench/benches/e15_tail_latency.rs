//! E15 — tail latency under open-loop load: the throughput–latency curve.
//!
//! Mean latency under a closed loop hides what an operating system (or
//! its absence) does to the *tail*: a closed-loop generator slows down
//! with the system, so queueing never shows. This experiment drives the
//! catnip UDP echo with an **open-loop Poisson** arrival process on
//! virtual time — arrivals are scheduled up front and latency is
//! measured from the *scheduled* instant, so a request stuck behind a
//! burst is charged its full wait (no coordinated omission) — and maps
//! p50/p99/p999 against offered load. Checks four claims:
//!
//! * **no low-load tax**: open-loop p99 at the lowest offered rate is
//!   within 2× the unloaded closed-loop RTT p99 (asserted) — telemetry
//!   and the generator itself add no queueing of their own.
//! * **the curve bends**: p99 at the highest offered rate exceeds the
//!   low-load p99, and achieved throughput falls short of offered load
//!   past saturation (asserted) — the knee the paper's figures put at
//!   the heart of every latency story.
//! * **bypass beats the kernel baseline**: catnip's unloaded p99 is
//!   below catnap's, whose simulated kernel charges syscall/copy costs
//!   (asserted).
//! * **recording is free**: one histogram sample costs zero heap
//!   allocations (asserted via a counting global allocator) — telemetry
//!   cheap enough to leave on.
//!
//! The measured curve is written to `target/e15_tail_latency.json` as a
//! plottable artifact.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use criterion::{criterion_group, criterion_main, Criterion};
use demi_bench::loadgen::{closed_loop, open_loop};
use demi_bench::Table;
use demi_telemetry::hist::Histogram;
use demi_telemetry::loadgen::{Curve, CurvePoint};
use demi_telemetry::stage::{self, Stage};
use demikernel::testing::{catnap_pair, catnip_pair};

/// Counts every heap allocation so the hot-path claim is measured, not
/// assumed.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// 1 KiB payloads put line serialization (~213 ns at 40 Gbps) in play,
/// so the curve has a knee inside a simulable rate range.
const PAYLOAD: usize = 1024;
const ARRIVALS: usize = 200;
const RATES: [f64; 6] = [100e3, 500e3, 1e6, 2e6, 4e6, 6e6];
const SEED: u64 = 42;

fn assert_zero_alloc_recording() {
    demi_telemetry::set_enabled(true);
    let mut h = Box::new(Histogram::new());
    // Prime both paths once so one-time effects don't count as
    // per-sample cost.
    h.record(1);
    stage::record(Stage::OpLatency, 1);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 1..=100_000u64 {
        h.record(i);
        stage::record(Stage::OpLatency, i);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    demi_telemetry::set_enabled(false);
    stage::reset();
    assert_eq!(
        allocs, 0,
        "histogram + stage recording must not allocate on the sample path"
    );
    assert_eq!(h.count(), 100_001);
    println!("paper check: 200k samples recorded with {allocs} heap allocations\n");
}

fn experiment_table() {
    // Unloaded floors: one outstanding request, nothing to queue behind.
    let (rt, _f, c, s) = catnip_pair(SEED);
    let catnip_unloaded = closed_loop(&rt, &c, &s, PAYLOAD, 1, 64);
    let (rt, _f, c, s) = catnap_pair(SEED);
    let catnap_unloaded = closed_loop(&rt, &c, &s, PAYLOAD, 1, 64);

    let mut table = Table::new(
        "E15: open-loop Poisson UDP echo over catnip, 1KiB, 200 arrivals per rate",
        &[
            "offered ops/s",
            "achieved ops/s",
            "p50",
            "p90",
            "p99",
            "p999",
        ],
    );
    let mut curve = Curve::new("catnip UDP echo, 1KiB, open-loop Poisson");
    for &rate in &RATES {
        let (rt, _f, c, s) = catnip_pair(SEED);
        let run = open_loop(&rt, &c, &s, PAYLOAD, rate, ARRIVALS, 7);
        let point = CurvePoint::from_histogram(rate, run.elapsed_ns, &run.hist);
        table.row(&[
            format!("{rate:.0}"),
            format!("{:.0}", point.achieved_ops_per_sec),
            format!("{}ns", point.p50_ns),
            format!("{}ns", point.p90_ns),
            format!("{}ns", point.p99_ns),
            format!("{}ns", point.p999_ns),
        ]);
        curve.push(point);
    }
    table.print();

    let json = curve.to_json();
    std::fs::create_dir_all("target").ok();
    std::fs::write("target/e15_tail_latency.json", &json).expect("write curve artifact");
    println!(
        "curve artifact: target/e15_tail_latency.json ({} bytes)",
        json.len()
    );

    let low = &curve.points[0];
    let high = curve.points.last().unwrap();
    let unloaded_p99 = catnip_unloaded.hist.p99();
    assert!(
        low.p99_ns <= 2 * unloaded_p99,
        "low-load open-loop p99 {}ns must be within 2x the unloaded RTT p99 {}ns",
        low.p99_ns,
        unloaded_p99
    );
    assert!(
        high.p99_ns > low.p99_ns,
        "the curve must bend: p99 {}ns at {:.0} ops/s vs {}ns at {:.0} ops/s",
        high.p99_ns,
        high.offered_ops_per_sec,
        low.p99_ns,
        low.offered_ops_per_sec
    );
    assert!(
        high.achieved_ops_per_sec < 0.9 * high.offered_ops_per_sec,
        "past saturation achieved load {:.0} must fall short of offered {:.0}",
        high.achieved_ops_per_sec,
        high.offered_ops_per_sec
    );
    assert!(
        unloaded_p99 < catnap_unloaded.hist.p99(),
        "catnip unloaded p99 {}ns must beat the kernel baseline's {}ns",
        unloaded_p99,
        catnap_unloaded.hist.p99()
    );
    println!(
        "paper check: unloaded p99 catnip {}ns vs catnap {}ns; open-loop p99 \
         {}ns at {:.0} ops/s -> {}ns at {:.0} ops/s (achieved {:.0})\n",
        unloaded_p99,
        catnap_unloaded.hist.p99(),
        low.p99_ns,
        low.offered_ops_per_sec,
        high.p99_ns,
        high.offered_ops_per_sec,
        high.achieved_ops_per_sec
    );
}

fn bench(c: &mut Criterion) {
    assert_zero_alloc_recording();
    experiment_table();
    let mut group = c.benchmark_group("e15_tail_latency");
    group.sample_size(10);
    group.bench_function("closed_loop_unloaded", |b| {
        b.iter(|| {
            let (rt, _f, cl, s) = catnip_pair(criterion::black_box(7));
            closed_loop(&rt, &cl, &s, PAYLOAD, 1, 16)
        })
    });
    group.bench_function("open_loop_1m", |b| {
        b.iter(|| {
            let (rt, _f, cl, s) = catnip_pair(criterion::black_box(7));
            open_loop(&rt, &cl, &s, PAYLOAD, 1e6, 64, 9)
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
