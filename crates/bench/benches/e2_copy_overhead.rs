//! E2 — §3.2: "copying a 4k page takes 1µs on a 4Ghz CPU, adding 50%
//! overhead to Redis" (which spends ~2µs per request).
//!
//! Two measurement domains:
//! * real time (criterion): the actual memcpy cost per size on this host,
//!   scaled to the paper's 4 GHz frame for comparison;
//! * virtual time: the metered kernel's copy charge vs the paper's 2µs
//!   application budget — the overhead ratio the paper quotes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use demi_bench::Table;
use posix_sim::CostModel;
use sim_fabric::SimTime;

/// The paper's per-request application processing budget (Redis).
const APP_BUDGET: SimTime = SimTime::from_micros(2);

fn experiment_table() {
    let cost = CostModel::default();
    let mut table = Table::new(
        "E2: copy overhead vs the 2µs Redis request budget",
        &[
            "value size",
            "copy cost",
            "copy/app ratio",
            "zero-copy cost",
        ],
    );
    for &size in &[64usize, 512, 1024, 4096, 16384] {
        let copy = cost.copy_cost(size);
        let ratio = copy.as_nanos() as f64 / APP_BUDGET.as_nanos() as f64;
        table.row(&[
            format!("{size}B"),
            format!("{copy}"),
            format!("{:.0}%", ratio * 100.0),
            "0ns (handle clone)".into(),
        ]);
    }
    table.print();
    // The headline claim: at 4 KiB the copy is ~1µs ≈ 50% of 2µs.
    let at_4k = cost.copy_cost(4096);
    assert_eq!(at_4k, SimTime::from_micros(1), "paper's 4k number");
    println!(
        "paper check: 4 KiB copy = {at_4k} = {:.0}% of the {APP_BUDGET} request\n",
        100.0 * at_4k.as_nanos() as f64 / APP_BUDGET.as_nanos() as f64
    );
}

fn bench(c: &mut Criterion) {
    experiment_table();
    let mut group = c.benchmark_group("e2_copy_overhead");
    for &size in &[64usize, 1024, 4096, 16384] {
        let src = vec![0xA5u8; size];
        let mut dst = vec![0u8; size];
        group.throughput(Throughput::Bytes(size as u64));
        // The real memcpy this machine pays per POSIX read/write.
        group.bench_with_input(BenchmarkId::new("memcpy", size), &size, |b, _| {
            b.iter(|| dst.copy_from_slice(criterion::black_box(&src)))
        });
        // The zero-copy alternative: a buffer handle clone.
        let buf = demi_memory::DemiBuffer::from_slice(&src);
        group.bench_with_input(BenchmarkId::new("handle_clone", size), &size, |b, _| {
            b.iter(|| criterion::black_box(buf.clone()))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
