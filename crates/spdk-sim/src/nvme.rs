//! The NVMe-style device: queue pairs, async commands, polled completions.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::rc::Rc;

use sim_fabric::{SimClock, SimTime};

use crate::latency::FlashLatencyModel;

/// Logical block size in bytes (4 KiB, the native flash page).
pub const BLOCK_SIZE: usize = 4096;

/// Queue-pair handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpairId(pub u32);

/// Device construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct NvmeConfig {
    /// Namespace capacity in blocks.
    pub namespace_blocks: u64,
    /// Maximum in-flight commands per queue pair.
    pub qpair_depth: usize,
    /// Service-time model.
    pub latency: FlashLatencyModel,
}

impl Default for NvmeConfig {
    fn default() -> Self {
        NvmeConfig {
            namespace_blocks: 1 << 20, // 4 GiB at 4 KiB blocks.
            qpair_depth: 256,
            latency: FlashLatencyModel::default(),
        }
    }
}

/// Errors returned synchronously at submission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NvmeError {
    /// Unknown queue pair.
    BadQpair,
    /// The queue pair already holds `qpair_depth` in-flight commands.
    QueueFull,
    /// LBA range exceeds the namespace.
    OutOfRange,
    /// Write data length is not a whole number of blocks.
    BadLength,
}

impl fmt::Display for NvmeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NvmeError::BadQpair => write!(f, "bad queue pair"),
            NvmeError::QueueFull => write!(f, "queue pair full"),
            NvmeError::OutOfRange => write!(f, "LBA out of range"),
            NvmeError::BadLength => write!(f, "data length not block-aligned"),
        }
    }
}

impl std::error::Error for NvmeError {}

/// A completed command popped from a queue pair.
#[derive(Debug, Clone)]
pub struct NvmeCompletion {
    /// Caller-chosen command id.
    pub cmd_id: u64,
    /// Data, for reads (final block for chases).
    pub data: Option<Vec<u8>>,
    /// Device-side pointer hops taken (chase commands; 0 otherwise).
    pub hops: u32,
    /// Virtual instant the command completed inside the device.
    pub completed_at: SimTime,
}

/// Parameters of a device-side chained lookup ([`NvmeDevice::submit_chase`]).
///
/// This is the storage half of the offload-program model: a restricted,
/// verified "follow the pointer" program, not arbitrary code. Each block
/// carries a little-endian `u64` next-LBA at `pointer_offset`; the device
/// reads the start block and keeps following pointers *inside the device*
/// until it hits `sentinel`, runs out of `max_hops` budget, or a pointer
/// leaves the namespace. The host pays exactly one submission for the
/// whole walk; the device pays one flash read per hop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChainSpec {
    /// First block of the chain.
    pub start_lba: u64,
    /// Byte offset of the `u64` little-endian next-pointer within each
    /// block; must leave room for 8 bytes (`<= BLOCK_SIZE - 8`).
    pub pointer_offset: usize,
    /// Pointer value that terminates the chain (the final block is
    /// returned). Unwritten blocks read as zero, so a zero sentinel
    /// terminates on any unwritten block.
    pub sentinel: u64,
    /// Hop budget: the walk stops after reading this many blocks even if
    /// no sentinel was found (bounds device work, like a verifier would).
    pub max_hops: u32,
}

/// Device counters (experiment E10 reads `blocks_written` for
/// write-amplification accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NvmeStats {
    /// Read commands completed.
    pub reads: u64,
    /// Write commands completed.
    pub writes: u64,
    /// Flush commands completed.
    pub flushes: u64,
    /// Blocks read from media.
    pub blocks_read: u64,
    /// Blocks written to media.
    pub blocks_written: u64,
    /// Submissions rejected with `QueueFull`.
    pub queue_full_rejections: u64,
    /// Chase commands completed (each is ONE host submission).
    pub chases: u64,
    /// Total device-side pointer hops taken by chase commands.
    pub chase_hops: u64,
}

enum Command {
    Read {
        lba: u64,
        blocks: u64,
    },
    Write {
        lba: u64,
        data: Vec<u8>,
    },
    Flush,
    /// Chain walk, resolved at submission against current media state
    /// (the device sees its own media synchronously; the *latency* of
    /// every hop is still charged into the service time).
    Chase {
        hops: u32,
        data: Vec<u8>,
    },
}

struct InFlight {
    cmd_id: u64,
    complete_at: SimTime,
    command: Command,
}

struct Qpair {
    in_flight: VecDeque<InFlight>,
    busy_until: SimTime,
}

struct Inner {
    clock: SimClock,
    config: NvmeConfig,
    media: HashMap<u64, Box<[u8]>>,
    qpairs: HashMap<QpairId, Qpair>,
    next_qpair: u32,
    stats: NvmeStats,
}

/// One simulated NVMe namespace behind SPDK-style queue pairs.
///
/// Commands are asynchronous: submission returns immediately, and
/// completions become visible through [`NvmeDevice::poll_completions`] once
/// virtual time passes the command's service time. Commands on one queue
/// pair are serviced serially (per-queue flash channel); separate queue
/// pairs proceed in parallel.
#[derive(Clone)]
pub struct NvmeDevice {
    inner: Rc<RefCell<Inner>>,
}

impl NvmeDevice {
    /// Creates a device on the shared simulation clock.
    pub fn new(clock: SimClock, config: NvmeConfig) -> Self {
        NvmeDevice {
            inner: Rc::new(RefCell::new(Inner {
                clock,
                config,
                media: HashMap::new(),
                qpairs: HashMap::new(),
                next_qpair: 1,
                stats: NvmeStats::default(),
            })),
        }
    }

    /// Namespace capacity in blocks.
    pub fn namespace_blocks(&self) -> u64 {
        self.inner.borrow().config.namespace_blocks
    }

    /// Allocates an I/O queue pair.
    pub fn alloc_qpair(&self) -> QpairId {
        let mut inner = self.inner.borrow_mut();
        let id = QpairId(inner.next_qpair);
        inner.next_qpair += 1;
        inner.qpairs.insert(
            id,
            Qpair {
                in_flight: VecDeque::new(),
                busy_until: SimTime::ZERO,
            },
        );
        id
    }

    /// Submits an asynchronous read of `blocks` blocks starting at `lba`.
    pub fn submit_read(
        &self,
        qpair: QpairId,
        cmd_id: u64,
        lba: u64,
        blocks: u64,
    ) -> Result<(), NvmeError> {
        let mut inner = self.inner.borrow_mut();
        inner.check_range(lba, blocks)?;
        let service = inner.config.latency.read_time(blocks);
        inner.enqueue(qpair, cmd_id, service, Command::Read { lba, blocks })
    }

    /// Submits an asynchronous write of `data` (must be block-aligned)
    /// starting at `lba`.
    pub fn submit_write(
        &self,
        qpair: QpairId,
        cmd_id: u64,
        lba: u64,
        data: &[u8],
    ) -> Result<(), NvmeError> {
        let mut inner = self.inner.borrow_mut();
        if data.is_empty() || !data.len().is_multiple_of(BLOCK_SIZE) {
            return Err(NvmeError::BadLength);
        }
        let blocks = (data.len() / BLOCK_SIZE) as u64;
        inner.check_range(lba, blocks)?;
        let service = inner.config.latency.write_time(blocks);
        inner.enqueue(
            qpair,
            cmd_id,
            service,
            Command::Write {
                lba,
                data: data.to_vec(),
            },
        )
    }

    /// Submits a device-side chained lookup (see [`ChainSpec`]).
    ///
    /// An N-hop chain costs the host exactly one submission and one
    /// completion; the device charges N single-block read times into the
    /// command's service latency. The completion carries the final block
    /// (where the walk terminated) and the hop count.
    pub fn submit_chase(
        &self,
        qpair: QpairId,
        cmd_id: u64,
        spec: ChainSpec,
    ) -> Result<(), NvmeError> {
        let mut inner = self.inner.borrow_mut();
        if spec.pointer_offset + 8 > BLOCK_SIZE {
            return Err(NvmeError::BadLength);
        }
        if spec.max_hops == 0 {
            return Err(NvmeError::OutOfRange);
        }
        inner.check_range(spec.start_lba, 1)?;
        // Resolve the walk now (media mutations are synchronous at
        // submission in this device), charging one flash read per hop.
        let mut lba = spec.start_lba;
        let mut hops: u32 = 0;
        let mut service = SimTime::ZERO;
        let zero_block = [0u8; BLOCK_SIZE];
        let mut last: Vec<u8>;
        loop {
            let block: &[u8] = inner.media.get(&lba).map(|b| &b[..]).unwrap_or(&zero_block);
            hops += 1;
            service = service.saturating_add(inner.config.latency.read_time(1));
            last = block.to_vec();
            let next = u64::from_le_bytes(
                block[spec.pointer_offset..spec.pointer_offset + 8]
                    .try_into()
                    .expect("8 bytes"),
            );
            if next == spec.sentinel
                || hops >= spec.max_hops
                || next >= inner.config.namespace_blocks
            {
                break;
            }
            lba = next;
        }
        inner.stats.blocks_read += u64::from(hops);
        inner.enqueue(qpair, cmd_id, service, Command::Chase { hops, data: last })
    }

    /// Submits a flush (durability barrier).
    pub fn submit_flush(&self, qpair: QpairId, cmd_id: u64) -> Result<(), NvmeError> {
        let mut inner = self.inner.borrow_mut();
        let service = inner.config.latency.flush;
        inner.enqueue(qpair, cmd_id, service, Command::Flush)
    }

    /// Pops up to `max` completions whose service time has elapsed.
    pub fn poll_completions(&self, qpair: QpairId, max: usize) -> Vec<NvmeCompletion> {
        let mut inner = self.inner.borrow_mut();
        let now = inner.clock.now();
        let mut out = Vec::new();
        // Split borrows: temporarily detach the qpair queue.
        let Some(mut qp) = inner.qpairs.remove(&qpair) else {
            return out;
        };
        while out.len() < max {
            let Some(front) = qp.in_flight.front() else {
                break;
            };
            if front.complete_at > now {
                break;
            }
            let item = qp.in_flight.pop_front().expect("front exists");
            out.push(inner.execute(item));
        }
        inner.qpairs.insert(qpair, qp);
        out
    }

    /// In-flight command count on a queue pair.
    pub fn in_flight(&self, qpair: QpairId) -> usize {
        self.inner
            .borrow()
            .qpairs
            .get(&qpair)
            .map_or(0, |q| q.in_flight.len())
    }

    /// Earliest pending completion instant across all queue pairs.
    pub fn next_deadline(&self) -> Option<SimTime> {
        self.inner
            .borrow()
            .qpairs
            .values()
            .filter_map(|q| q.in_flight.front().map(|c| c.complete_at))
            .min()
    }

    /// Device counters.
    pub fn stats(&self) -> NvmeStats {
        self.inner.borrow().stats
    }
}

impl Inner {
    fn check_range(&self, lba: u64, blocks: u64) -> Result<(), NvmeError> {
        let end = lba.checked_add(blocks).ok_or(NvmeError::OutOfRange)?;
        if blocks == 0 || end > self.config.namespace_blocks {
            return Err(NvmeError::OutOfRange);
        }
        Ok(())
    }

    fn enqueue(
        &mut self,
        qpair: QpairId,
        cmd_id: u64,
        service: SimTime,
        command: Command,
    ) -> Result<(), NvmeError> {
        let now = self.clock.now();
        let depth = self.config.qpair_depth;
        let qp = self.qpairs.get_mut(&qpair).ok_or(NvmeError::BadQpair)?;
        if qp.in_flight.len() >= depth {
            self.stats.queue_full_rejections += 1;
            return Err(NvmeError::QueueFull);
        }
        let start = qp.busy_until.max(now);
        let complete_at = start.saturating_add(service);
        qp.busy_until = complete_at;
        qp.in_flight.push_back(InFlight {
            cmd_id,
            complete_at,
            command,
        });
        Ok(())
    }

    fn execute(&mut self, item: InFlight) -> NvmeCompletion {
        let mut hops = 0;
        let data = match item.command {
            Command::Read { lba, blocks } => {
                self.stats.reads += 1;
                self.stats.blocks_read += blocks;
                let mut out = vec![0u8; (blocks as usize) * BLOCK_SIZE];
                for i in 0..blocks {
                    if let Some(block) = self.media.get(&(lba + i)) {
                        let off = (i as usize) * BLOCK_SIZE;
                        out[off..off + BLOCK_SIZE].copy_from_slice(block);
                    }
                }
                Some(out)
            }
            Command::Write { lba, data } => {
                self.stats.writes += 1;
                let blocks = (data.len() / BLOCK_SIZE) as u64;
                self.stats.blocks_written += blocks;
                for i in 0..blocks {
                    let off = (i as usize) * BLOCK_SIZE;
                    self.media.insert(
                        lba + i,
                        data[off..off + BLOCK_SIZE].to_vec().into_boxed_slice(),
                    );
                }
                None
            }
            Command::Flush => {
                self.stats.flushes += 1;
                None
            }
            Command::Chase { hops: h, data } => {
                self.stats.chases += 1;
                self.stats.chase_hops += u64::from(h);
                hops = h;
                Some(data)
            }
        };
        NvmeCompletion {
            cmd_id: item.cmd_id,
            data,
            hops,
            completed_at: item.complete_at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn device() -> (SimClock, NvmeDevice) {
        let clock = SimClock::new();
        let dev = NvmeDevice::new(clock.clone(), NvmeConfig::default());
        (clock, dev)
    }

    /// Advances the clock far enough for everything submitted to finish.
    fn finish_all(clock: &SimClock) {
        clock.advance_by(SimTime::from_secs(1));
    }

    #[test]
    fn write_read_round_trip() {
        let (clock, dev) = device();
        let qp = dev.alloc_qpair();
        let data = vec![0xAB; BLOCK_SIZE * 2];
        dev.submit_write(qp, 1, 10, &data).unwrap();
        finish_all(&clock);
        assert_eq!(dev.poll_completions(qp, 8).len(), 1);
        dev.submit_read(qp, 2, 10, 2).unwrap();
        finish_all(&clock);
        let comps = dev.poll_completions(qp, 8);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].cmd_id, 2);
        assert_eq!(comps[0].data.as_deref(), Some(&data[..]));
    }

    #[test]
    fn unwritten_blocks_read_as_zero() {
        let (clock, dev) = device();
        let qp = dev.alloc_qpair();
        dev.submit_read(qp, 1, 500, 1).unwrap();
        finish_all(&clock);
        let comps = dev.poll_completions(qp, 8);
        assert_eq!(comps[0].data.as_deref(), Some(&vec![0u8; BLOCK_SIZE][..]));
    }

    #[test]
    fn completions_respect_virtual_time() {
        let (clock, dev) = device();
        let qp = dev.alloc_qpair();
        dev.submit_read(qp, 1, 0, 1).unwrap(); // 10µs service time.
        assert!(dev.poll_completions(qp, 8).is_empty(), "not done yet");
        clock.advance_by(SimTime::from_micros(9));
        assert!(dev.poll_completions(qp, 8).is_empty(), "still not done");
        clock.advance_by(SimTime::from_micros(1));
        let comps = dev.poll_completions(qp, 8);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].completed_at, SimTime::from_micros(10));
    }

    #[test]
    fn qpair_serializes_commands() {
        let (clock, dev) = device();
        let qp = dev.alloc_qpair();
        dev.submit_read(qp, 1, 0, 1).unwrap(); // Completes at 10µs.
        dev.submit_read(qp, 2, 0, 1).unwrap(); // Queued behind: 20µs.
        clock.advance_by(SimTime::from_micros(10));
        assert_eq!(dev.poll_completions(qp, 8).len(), 1);
        clock.advance_by(SimTime::from_micros(10));
        assert_eq!(dev.poll_completions(qp, 8).len(), 1);
    }

    #[test]
    fn separate_qpairs_run_in_parallel() {
        let (clock, dev) = device();
        let qp1 = dev.alloc_qpair();
        let qp2 = dev.alloc_qpair();
        dev.submit_read(qp1, 1, 0, 1).unwrap();
        dev.submit_read(qp2, 2, 0, 1).unwrap();
        clock.advance_by(SimTime::from_micros(10));
        assert_eq!(dev.poll_completions(qp1, 8).len(), 1);
        assert_eq!(dev.poll_completions(qp2, 8).len(), 1);
    }

    #[test]
    fn queue_depth_is_enforced() {
        let clock = SimClock::new();
        let dev = NvmeDevice::new(
            clock,
            NvmeConfig {
                qpair_depth: 2,
                ..NvmeConfig::default()
            },
        );
        let qp = dev.alloc_qpair();
        dev.submit_read(qp, 1, 0, 1).unwrap();
        dev.submit_read(qp, 2, 0, 1).unwrap();
        assert_eq!(dev.submit_read(qp, 3, 0, 1), Err(NvmeError::QueueFull));
        assert_eq!(dev.stats().queue_full_rejections, 1);
    }

    #[test]
    fn out_of_range_and_bad_length_rejected() {
        let (_clock, dev) = device();
        let qp = dev.alloc_qpair();
        let max = dev.namespace_blocks();
        assert_eq!(dev.submit_read(qp, 1, max, 1), Err(NvmeError::OutOfRange));
        assert_eq!(dev.submit_read(qp, 1, 0, 0), Err(NvmeError::OutOfRange));
        assert_eq!(
            dev.submit_write(qp, 1, 0, &[1, 2, 3]),
            Err(NvmeError::BadLength)
        );
        assert_eq!(dev.submit_write(qp, 1, 0, &[]), Err(NvmeError::BadLength));
    }

    #[test]
    fn flush_completes_and_counts() {
        let (clock, dev) = device();
        let qp = dev.alloc_qpair();
        dev.submit_flush(qp, 9).unwrap();
        finish_all(&clock);
        let comps = dev.poll_completions(qp, 8);
        assert_eq!(comps[0].cmd_id, 9);
        assert!(comps[0].data.is_none());
        assert_eq!(dev.stats().flushes, 1);
    }

    #[test]
    fn stats_track_block_counts_for_write_amp() {
        let (clock, dev) = device();
        let qp = dev.alloc_qpair();
        dev.submit_write(qp, 1, 0, &vec![1u8; BLOCK_SIZE * 3])
            .unwrap();
        dev.submit_read(qp, 2, 0, 2).unwrap();
        finish_all(&clock);
        let _ = dev.poll_completions(qp, 8);
        let s = dev.stats();
        assert_eq!(s.blocks_written, 3);
        assert_eq!(s.blocks_read, 2);
    }

    #[test]
    fn next_deadline_reports_earliest_completion() {
        let (clock, dev) = device();
        let qp1 = dev.alloc_qpair();
        let qp2 = dev.alloc_qpair();
        dev.submit_write(qp1, 1, 0, &vec![0u8; BLOCK_SIZE]).unwrap(); // 20µs
        dev.submit_read(qp2, 2, 0, 1).unwrap(); // 10µs
        assert_eq!(dev.next_deadline(), Some(SimTime::from_micros(10)));
        clock.advance_by(SimTime::from_micros(10));
        let _ = dev.poll_completions(qp2, 8);
        assert_eq!(dev.next_deadline(), Some(SimTime::from_micros(20)));
    }

    /// Writes a block whose `pointer_offset` bytes name `next`, with the
    /// rest filled with `fill`.
    fn write_chain_block(
        dev: &NvmeDevice,
        clock: &SimClock,
        qp: QpairId,
        lba: u64,
        next: u64,
        fill: u8,
    ) {
        let mut block = vec![fill; BLOCK_SIZE];
        block[0..8].copy_from_slice(&next.to_le_bytes());
        dev.submit_write(qp, 1000 + lba, lba, &block).unwrap();
        finish_all(clock);
        let _ = dev.poll_completions(qp, 8);
    }

    fn chain_spec(start_lba: u64) -> ChainSpec {
        ChainSpec {
            start_lba,
            pointer_offset: 0,
            sentinel: u64::MAX,
            max_hops: 16,
        }
    }

    #[test]
    fn chase_follows_chain_in_one_submission() {
        let (clock, dev) = device();
        let qp = dev.alloc_qpair();
        // 10 → 20 → 30 → end.
        write_chain_block(&dev, &clock, qp, 10, 20, 0xA);
        write_chain_block(&dev, &clock, qp, 20, 30, 0xB);
        write_chain_block(&dev, &clock, qp, 30, u64::MAX, 0xC);
        let before = dev.stats();
        dev.submit_chase(qp, 7, chain_spec(10)).unwrap();
        finish_all(&clock);
        let comps = dev.poll_completions(qp, 8);
        assert_eq!(comps.len(), 1);
        assert_eq!(comps[0].cmd_id, 7);
        assert_eq!(comps[0].hops, 3);
        let data = comps[0].data.as_ref().unwrap();
        assert_eq!(data[8], 0xC, "final block returned");
        let s = dev.stats();
        assert_eq!(s.chases - before.chases, 1, "one host submission");
        assert_eq!(s.chase_hops - before.chase_hops, 3);
        assert_eq!(s.reads, before.reads, "no per-hop host read commands");
        assert_eq!(
            s.blocks_read - before.blocks_read,
            3,
            "media reads are real"
        );
    }

    #[test]
    fn chase_charges_per_hop_latency() {
        let (clock, dev) = device();
        let qp = dev.alloc_qpair();
        write_chain_block(&dev, &clock, qp, 10, 20, 0);
        write_chain_block(&dev, &clock, qp, 20, u64::MAX, 0);
        let start = clock.now();
        dev.submit_chase(qp, 1, chain_spec(10)).unwrap();
        finish_all(&clock);
        let comps = dev.poll_completions(qp, 8);
        let per_hop = FlashLatencyModel::default().read_time(1);
        assert_eq!(
            comps[0].completed_at,
            start.saturating_add(per_hop).saturating_add(per_hop),
            "an N-hop chase costs N single-block read times"
        );
    }

    #[test]
    fn chase_respects_hop_budget_and_bad_pointers() {
        let (clock, dev) = device();
        let qp = dev.alloc_qpair();
        // A 2-cycle loop: the hop budget is the only terminator.
        write_chain_block(&dev, &clock, qp, 10, 20, 0);
        write_chain_block(&dev, &clock, qp, 20, 10, 0);
        dev.submit_chase(
            qp,
            1,
            ChainSpec {
                max_hops: 5,
                ..chain_spec(10)
            },
        )
        .unwrap();
        finish_all(&clock);
        assert_eq!(dev.poll_completions(qp, 8)[0].hops, 5);
        // A pointer outside the namespace stops the walk at that block.
        write_chain_block(&dev, &clock, qp, 40, dev.namespace_blocks() + 7, 0xD);
        dev.submit_chase(qp, 2, chain_spec(40)).unwrap();
        finish_all(&clock);
        let comps = dev.poll_completions(qp, 8);
        assert_eq!(comps[0].hops, 1);
        assert_eq!(comps[0].data.as_ref().unwrap()[8], 0xD);
    }

    #[test]
    fn chase_rejects_bad_specs() {
        let (_clock, dev) = device();
        let qp = dev.alloc_qpair();
        assert_eq!(
            dev.submit_chase(
                qp,
                1,
                ChainSpec {
                    pointer_offset: BLOCK_SIZE - 7,
                    ..chain_spec(0)
                }
            ),
            Err(NvmeError::BadLength)
        );
        assert_eq!(
            dev.submit_chase(
                qp,
                1,
                ChainSpec {
                    max_hops: 0,
                    ..chain_spec(0)
                }
            ),
            Err(NvmeError::OutOfRange)
        );
        assert_eq!(
            dev.submit_chase(qp, 1, chain_spec(dev.namespace_blocks())),
            Err(NvmeError::OutOfRange)
        );
    }

    #[test]
    fn bad_qpair_rejected() {
        let (_clock, dev) = device();
        assert_eq!(
            dev.submit_read(QpairId(99), 1, 0, 1),
            Err(NvmeError::BadQpair)
        );
        assert!(dev.poll_completions(QpairId(99), 8).is_empty());
    }
}
