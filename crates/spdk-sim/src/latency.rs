//! Flash service-time model.

use sim_fabric::SimTime;

/// Latency parameters for one command class.
#[derive(Debug, Clone, Copy)]
pub struct OpLatency {
    /// Fixed cost per command (submission, translation, flash access).
    pub base: SimTime,
    /// Additional cost per 4 KiB block transferred.
    pub per_block: SimTime,
}

/// A flash-shaped latency model.
///
/// Defaults approximate a datacenter NVMe SSD: ~10µs reads, ~20µs writes
/// at 4 KiB, growing linearly with transfer size, plus a ~100µs flush.
#[derive(Debug, Clone, Copy)]
pub struct FlashLatencyModel {
    /// Read command latency.
    pub read: OpLatency,
    /// Write command latency.
    pub write: OpLatency,
    /// Flush command latency.
    pub flush: SimTime,
}

impl Default for FlashLatencyModel {
    fn default() -> Self {
        FlashLatencyModel {
            read: OpLatency {
                base: SimTime::from_micros(8),
                per_block: SimTime::from_micros(2),
            },
            write: OpLatency {
                base: SimTime::from_micros(15),
                per_block: SimTime::from_micros(5),
            },
            flush: SimTime::from_micros(100),
        }
    }
}

impl FlashLatencyModel {
    /// Service time for a read of `blocks` blocks.
    pub fn read_time(&self, blocks: u64) -> SimTime {
        self.read
            .base
            .saturating_add(self.read.per_block.saturating_mul(blocks))
    }

    /// Service time for a write of `blocks` blocks.
    pub fn write_time(&self, blocks: u64) -> SimTime {
        self.write
            .base
            .saturating_add(self.write.per_block.saturating_mul(blocks))
    }

    /// An instant, zero-latency model for logic-only tests.
    pub fn instant() -> Self {
        FlashLatencyModel {
            read: OpLatency {
                base: SimTime::ZERO,
                per_block: SimTime::ZERO,
            },
            write: OpLatency {
                base: SimTime::ZERO,
                per_block: SimTime::ZERO,
            },
            flush: SimTime::ZERO,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_time_scales_with_blocks() {
        let m = FlashLatencyModel::default();
        assert_eq!(m.read_time(1), SimTime::from_micros(10));
        assert_eq!(m.read_time(8), SimTime::from_micros(24));
    }

    #[test]
    fn writes_cost_more_than_reads() {
        let m = FlashLatencyModel::default();
        assert!(m.write_time(1) > m.read_time(1));
    }

    #[test]
    fn instant_model_is_free() {
        let m = FlashLatencyModel::instant();
        assert_eq!(m.read_time(100), SimTime::ZERO);
        assert_eq!(m.write_time(100), SimTime::ZERO);
    }
}
