//! A simulated SPDK/NVMe kernel-bypass storage device.
//!
//! SPDK sits in the paper's Table 1 beside DPDK: pure kernel bypass for
//! storage. The device exposes exactly what real NVMe queue pairs give a
//! polling application — asynchronous block commands with explicit
//! completion polling, and nothing else. No file system, no naming, no
//! allocation policy: that is OS functionality the storage library OS
//! (`catfs` in this reproduction) must supply, which is what experiment
//! E10 measures (custom log layout vs. an ext4-like layout).
//!
//! The latency model is a flash-shaped service time (fixed submission cost
//! plus per-block transfer) with per-queue-pair serialization, driven by
//! the shared virtual clock.

pub mod latency;
pub mod nvme;

pub use latency::FlashLatencyModel;
pub use nvme::{ChainSpec, NvmeCompletion, NvmeConfig, NvmeDevice, NvmeError, NvmeStats, QpairId};

use sim_fabric::{DeviceCaps, DeviceCategory};

/// Capabilities of the simulated NVMe device.
pub fn capabilities() -> DeviceCaps {
    DeviceCaps {
        name: "spdk-sim",
        category: DeviceCategory::BypassOnly,
        kernel_bypass: true,
        multiplexing: true,
        address_translation: true,
        reliable_transport: false,
        network_stack: false,
        buffer_management: false,
        flow_control: false,
        explicit_registration_required: true,
        program_offload: false,
        block_storage: true,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spdk_is_bypass_only_block_storage() {
        let caps = capabilities();
        assert!(caps.kernel_bypass);
        assert!(caps.block_storage);
        assert!(!caps.network_stack);
        assert_eq!(caps.category, DeviceCategory::BypassOnly);
    }
}
