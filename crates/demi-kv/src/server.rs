//! The serving engine: pipelined command execution with coalesced
//! replies and group-committed durability.
//!
//! Transport-independent by design — the engine consumes RX chunks and
//! produces reply segments, so the same code runs over catnip queues
//! (`examples/kv_server.rs`), a directly-driven `TcpPeer` (E19), or raw
//! byte slices (tests). The contract per RX pass:
//!
//! 1. Feed every arrived chunk into the connection ([`KvConn::feed`]).
//! 2. [`KvEngine::drain`] parses and executes **every** complete command
//!    buffered — the pipelining discipline: an N-deep burst is served in
//!    one pass, its replies coalesced into one TX burst.
//! 3. Transmit `immediate` replies now. If `batch` is present, make it
//!    durable with **one** storage submission (catfs `push` of the
//!    encoded record), then transmit `deferred`.
//!
//! Group-commit ordering rules: replies produced *before* the first
//! logged mutation of a pass release immediately; the logged mutation's
//! reply and everything after it wait for the batch — so a client never
//! observes an acknowledgment the log could lose, and per-connection
//! reply order is preserved. Reads are never gated: a GET pipelined
//! behind a SET sees the store's new value (execution order), but its
//! reply travels in the deferred section (reply order).

use demi_memory::{DemiBuffer, MemoryManager};
use sim_fabric::SimTime;

use crate::log::{encode_batch, PendingOp};
use crate::resp::{ReplyStats, ReplyWriter, RespCommand, RespParser, RespStats};
use crate::store::{KvStore, SetError, Ttl};

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct KvEngineConfig {
    /// Store byte budget (keys + values) before LRU eviction.
    pub byte_budget: usize,
    /// Whether mutations are group-committed to a log. When false,
    /// `drain` never defers replies and never emits batches.
    pub durable: bool,
}

impl Default for KvEngineConfig {
    fn default() -> Self {
        KvEngineConfig {
            byte_budget: 64 * 1024 * 1024,
            durable: false,
        }
    }
}

/// Per-connection state: the incremental parser (partial commands
/// survive across RX passes) and a poison flag after protocol errors.
#[derive(Default)]
pub struct KvConn {
    parser: RespParser,
    dead: bool,
}

impl KvConn {
    /// Fresh connection state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one RX chunk (zero-copy; the handle is retained).
    pub fn feed(&mut self, chunk: DemiBuffer) {
        self.parser.push_chunk(chunk);
    }

    /// Parser counters for this connection.
    pub fn parser_stats(&self) -> RespStats {
        self.parser.stats()
    }

    /// Whether the connection hit a protocol error and must be closed
    /// (RESP cannot resynchronize mid-stream).
    pub fn is_dead(&self) -> bool {
        self.dead
    }
}

/// What one drain pass produced.
#[derive(Default)]
pub struct DrainResult {
    /// Reply segments releasable immediately, in order.
    pub immediate: Vec<DemiBuffer>,
    /// Reply segments gated on `batch` durability, in order after
    /// `immediate`.
    pub deferred: Vec<DemiBuffer>,
    /// Encoded group-commit record: append with ONE storage submission,
    /// then release `deferred`. `None` when the pass mutated nothing.
    pub batch: Option<Vec<u8>>,
    /// Commands executed this pass (the burst depth).
    pub depth: usize,
    /// The stream is unparseable; close the connection after sending
    /// the replies (the last of which is the error).
    pub disconnect: bool,
}

/// Engine counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Commands executed.
    pub commands: u64,
    /// Drain passes that executed at least one command.
    pub bursts: u64,
    /// Deepest single-pass burst observed.
    pub max_burst: u64,
    /// Group-commit batches emitted.
    pub batches: u64,
    /// Mutations logged across all batches.
    pub logged_ops: u64,
    /// SETs refused because key+value exceed the byte budget.
    pub too_large: u64,
    /// Connections poisoned by protocol errors.
    pub protocol_errors: u64,
}

/// The engine: one store, one reply writer, shared by every connection
/// of a (single-threaded) serving loop.
pub struct KvEngine {
    store: KvStore,
    writer: ReplyWriter,
    durable: bool,
    stats: EngineStats,
}

impl KvEngine {
    /// An engine whose store wheel starts at `start`, drawing reply
    /// control segments from `memory`'s pool.
    pub fn new(config: KvEngineConfig, memory: MemoryManager, start: SimTime) -> Self {
        KvEngine {
            store: KvStore::new(config.byte_budget, start),
            writer: ReplyWriter::new(memory),
            durable: config.durable,
            stats: EngineStats::default(),
        }
    }

    /// The live store (mirror attachment, instrumentation).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Mutable store access (mirror attachment, replay).
    pub fn store_mut(&mut self) -> &mut KvStore {
        &mut self.store
    }

    /// Engine counters.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Reply-path counters (prepend hits vs control-run fallbacks).
    pub fn reply_stats(&self) -> ReplyStats {
        self.writer.stats()
    }

    /// Earliest TTL deadline (drive [`KvEngine::advance`] by then).
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        self.store.next_deadline()
    }

    /// Advances the store's TTL wheel (call on timer ticks between
    /// drains; `drain` also advances at entry).
    pub fn advance(&mut self, now: SimTime) {
        self.store.advance(now);
    }

    /// Executes every complete buffered command on `conn` — the whole
    /// pipelined burst — and coalesces the replies. See the module doc
    /// for the release protocol.
    pub fn drain(&mut self, conn: &mut KvConn, now: SimTime) -> DrainResult {
        self.store.advance(now);
        let mut result = DrainResult::default();
        if conn.dead {
            result.disconnect = true;
            return result;
        }
        let mut pending: Vec<PendingOp> = Vec::new();
        loop {
            match conn.parser.next_command() {
                Ok(Some(cmd)) => {
                    result.depth += 1;
                    self.execute(&cmd, &mut pending, &mut result.immediate, now);
                }
                Ok(None) => break,
                Err(err) => {
                    self.stats.protocol_errors += 1;
                    self.writer.error(format!("ERR {}", err.0).as_bytes());
                    conn.dead = true;
                    result.disconnect = true;
                    break;
                }
            }
        }
        self.stats.commands += result.depth as u64;
        if result.depth > 0 {
            self.stats.bursts += 1;
            self.stats.max_burst = self.stats.max_burst.max(result.depth as u64);
        }
        if pending.is_empty() {
            // Nothing to commit: everything releases now.
            result.immediate.append(&mut self.writer.take());
        } else {
            self.stats.batches += 1;
            self.stats.logged_ops += pending.len() as u64;
            result.batch = Some(encode_batch(&pending));
            result.deferred = self.writer.take();
        }
        result
    }

    /// Executes one command, writing its reply. When the command is the
    /// pass's **first** logged mutation, all previously written replies
    /// are flushed to `immediate` first — they precede the durability
    /// barrier and need not wait for it.
    fn execute(
        &mut self,
        cmd: &RespCommand,
        pending: &mut Vec<PendingOp>,
        immediate: &mut Vec<DemiBuffer>,
        now: SimTime,
    ) {
        let verb = cmd.arg(0);
        if verb.eq_ignore_ascii_case(b"GET") {
            if cmd.args.len() != 2 {
                return self.writer.error(b"ERR wrong number of arguments for GET");
            }
            match self.store.get(cmd.arg(1), now) {
                Some(value) => {
                    // Insert-after-miss for a device replica: a GET that
                    // reached the host was (by definition) not served by
                    // the NIC cache; publish so the next one is.
                    self.store.publish_to_mirror(cmd.arg(1));
                    self.writer.bulk(&value);
                }
                None => self.writer.null(),
            }
        } else if verb.eq_ignore_ascii_case(b"SET") {
            let expire_at = match cmd.args.len() {
                3 => None,
                5 if cmd.arg(3).eq_ignore_ascii_case(b"PX") => match parse_ascii_u64(cmd.arg(4)) {
                    Some(ms) => Some(now.saturating_add(SimTime::from_millis(ms))),
                    None => return self.writer.error(b"ERR invalid PX value"),
                },
                _ => return self.writer.error(b"ERR syntax error in SET"),
            };
            let key = cmd.args[1].clone();
            let value = cmd.args[2].clone();
            match self
                .store
                .set(key.as_slice(), value.clone(), expire_at, now)
            {
                Ok(()) => {
                    if self.durable {
                        self.log_barrier(pending, immediate);
                        pending.push(PendingOp::Set {
                            key,
                            value,
                            expire_at,
                        });
                    }
                    self.writer.simple(b"OK");
                }
                Err(SetError::TooLarge) => {
                    self.stats.too_large += 1;
                    self.writer.error(b"ERR entry exceeds store byte budget");
                }
            }
        } else if verb.eq_ignore_ascii_case(b"DEL") {
            if cmd.args.len() != 2 {
                return self.writer.error(b"ERR wrong number of arguments for DEL");
            }
            let removed = self.store.del(cmd.arg(1), now);
            if removed && self.durable {
                self.log_barrier(pending, immediate);
                pending.push(PendingOp::Del {
                    key: cmd.args[1].clone(),
                });
            }
            self.writer.integer(removed as i64);
        } else if verb.eq_ignore_ascii_case(b"PEXPIRE") {
            if cmd.args.len() != 3 {
                return self
                    .writer
                    .error(b"ERR wrong number of arguments for PEXPIRE");
            }
            let Some(ms) = parse_ascii_u64(cmd.arg(2)) else {
                return self.writer.error(b"ERR invalid PEXPIRE value");
            };
            let at = now.saturating_add(SimTime::from_millis(ms));
            let applied = self.store.expire(cmd.arg(1), at, now);
            if applied && self.durable {
                self.log_barrier(pending, immediate);
                pending.push(PendingOp::Expire {
                    key: cmd.args[1].clone(),
                    at,
                });
            }
            self.writer.integer(applied as i64);
        } else if verb.eq_ignore_ascii_case(b"PTTL") {
            if cmd.args.len() != 2 {
                return self.writer.error(b"ERR wrong number of arguments for PTTL");
            }
            match self.store.ttl(cmd.arg(1), now) {
                Ttl::Missing => self.writer.integer(-2),
                Ttl::NoExpiry => self.writer.integer(-1),
                // Redis PTTL speaks milliseconds; round up so a live key
                // never reports 0.
                Ttl::RemainingNs(ns) => self.writer.integer(ns.div_ceil(1_000_000) as i64),
            }
        } else if verb.eq_ignore_ascii_case(b"PING") {
            self.writer.simple(b"PONG");
        } else {
            self.writer.error(b"ERR unknown command");
        }
    }

    /// On the pass's first logged mutation, everything already written
    /// precedes the durability barrier: release it immediately.
    fn log_barrier(&mut self, pending: &[PendingOp], immediate: &mut Vec<DemiBuffer>) {
        if pending.is_empty() {
            immediate.append(&mut self.writer.take());
        }
    }
}

fn parse_ascii_u64(text: &[u8]) -> Option<u64> {
    if text.is_empty() || !text.iter().all(|b| b.is_ascii_digit()) {
        return None;
    }
    let mut v: u64 = 0;
    for &b in text {
        v = v.checked_mul(10)?.checked_add((b - b'0') as u64)?;
    }
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::resp::encode_command;

    fn engine(durable: bool) -> KvEngine {
        KvEngine::new(
            KvEngineConfig {
                byte_budget: 1 << 20,
                durable,
            },
            MemoryManager::warmed(),
            SimTime::ZERO,
        )
    }

    fn feed(conn: &mut KvConn, cmds: &[&[&[u8]]]) {
        let mut bytes = Vec::new();
        for c in cmds {
            encode_command(&mut bytes, c);
        }
        conn.feed(DemiBuffer::from(bytes));
    }

    fn flat(segs: &[DemiBuffer]) -> Vec<u8> {
        segs.iter().flat_map(|s| s.as_slice().to_vec()).collect()
    }

    #[test]
    fn pipelined_burst_executes_in_one_pass() {
        let mut e = engine(false);
        let mut conn = KvConn::new();
        feed(
            &mut conn,
            &[
                &[b"PING"],
                &[b"SET", b"k", b"v1"],
                &[b"GET", b"k"],
                &[b"DEL", b"k"],
                &[b"GET", b"k"],
            ],
        );
        let r = e.drain(&mut conn, SimTime::from_nanos(10));
        assert_eq!(r.depth, 5);
        assert!(r.batch.is_none());
        assert!(r.deferred.is_empty());
        assert_eq!(
            flat(&r.immediate),
            b"+PONG\r\n+OK\r\n$2\r\nv1\r\n:1\r\n$-1\r\n"
        );
        assert_eq!(e.stats().bursts, 1);
        assert_eq!(e.stats().max_burst, 5);
    }

    #[test]
    fn durable_pass_defers_from_first_logged_mutation() {
        let mut e = engine(true);
        let mut conn = KvConn::new();
        feed(
            &mut conn,
            &[
                &[b"PING"],            // before the barrier
                &[b"GET", b"nope"],    // before the barrier
                &[b"SET", b"k", b"v"], // the barrier
                &[b"GET", b"k"],       // after (reply order preserved)
            ],
        );
        let r = e.drain(&mut conn, SimTime::from_nanos(10));
        assert_eq!(flat(&r.immediate), b"+PONG\r\n$-1\r\n");
        assert_eq!(flat(&r.deferred), b"+OK\r\n$1\r\nv\r\n");
        let batch = r.batch.expect("one mutation -> one batch");
        let entries = crate::log::decode_batch(&batch).unwrap();
        assert_eq!(entries.len(), 1);
        assert_eq!(e.stats().batches, 1);
        assert_eq!(e.stats().logged_ops, 1);
    }

    #[test]
    fn read_only_durable_pass_commits_nothing() {
        let mut e = engine(true);
        let mut conn = KvConn::new();
        feed(&mut conn, &[&[b"GET", b"x"], &[b"PING"]]);
        let r = e.drain(&mut conn, SimTime::from_nanos(10));
        assert!(r.batch.is_none());
        assert_eq!(flat(&r.immediate), b"$-1\r\n+PONG\r\n");
    }

    #[test]
    fn del_of_missing_key_is_not_logged() {
        let mut e = engine(true);
        let mut conn = KvConn::new();
        feed(&mut conn, &[&[b"DEL", b"ghost"]]);
        let r = e.drain(&mut conn, SimTime::from_nanos(10));
        assert!(r.batch.is_none(), "a no-op DEL must not force a commit");
        assert_eq!(flat(&r.immediate), b":0\r\n");
    }

    #[test]
    fn ttl_commands_round_trip() {
        let mut e = engine(false);
        let mut conn = KvConn::new();
        feed(
            &mut conn,
            &[
                &[b"SET", b"k", b"v", b"PX", b"5"],
                &[b"PTTL", b"k"],
                &[b"PTTL", b"ghost"],
            ],
        );
        let r = e.drain(&mut conn, SimTime::from_millis(1));
        assert_eq!(flat(&r.immediate), b"+OK\r\n:5\r\n:-2\r\n");
        // Ride past the deadline: the wheel removes the key.
        let mut conn2 = KvConn::new();
        feed(&mut conn2, &[&[b"GET", b"k"]]);
        let r = e.drain(&mut conn2, SimTime::from_millis(10));
        assert_eq!(flat(&r.immediate), b"$-1\r\n");
        assert_eq!(e.store().stats().expirations, 1);
    }

    #[test]
    fn protocol_error_poisons_the_connection() {
        let mut e = engine(false);
        let mut conn = KvConn::new();
        conn.feed(DemiBuffer::from(b"*1\r\n$3\r\nabcXY".to_vec()));
        let r = e.drain(&mut conn, SimTime::from_nanos(1));
        assert!(r.disconnect);
        assert!(flat(&r.immediate).starts_with(b"-ERR"));
        assert!(conn.is_dead());
        let r2 = e.drain(&mut conn, SimTime::from_nanos(2));
        assert!(r2.disconnect, "a poisoned connection stays poisoned");
    }

    #[test]
    fn partial_command_waits_for_completion() {
        let mut e = engine(false);
        let mut conn = KvConn::new();
        let mut bytes = Vec::new();
        encode_command(&mut bytes, &[b"SET", b"key", b"split-value"]);
        let cut = bytes.len() - 6;
        conn.feed(DemiBuffer::from(bytes[..cut].to_vec()));
        let r = e.drain(&mut conn, SimTime::from_nanos(1));
        assert_eq!(r.depth, 0);
        assert!(flat(&r.immediate).is_empty());
        conn.feed(DemiBuffer::from(bytes[cut..].to_vec()));
        let r = e.drain(&mut conn, SimTime::from_nanos(2));
        assert_eq!(r.depth, 1);
        assert_eq!(flat(&r.immediate), b"+OK\r\n");
    }
}
