//! demi-kv: a Redis-class key-value server on the Demikernel datapath.
//!
//! The paper's claim is that a libOS can give kernel-bypass speed
//! *with* OS services; this crate is the proof-of-work application: a
//! RESP (Redis protocol) server whose entire datapath is built from the
//! repo's own primitives and keeps their zero-copy discipline end to
//! end.
//!
//! - [`resp`] — incremental zero-copy RESP parsing over `DemiBuffer` RX
//!   views, and reply serialization that coalesces a pipelined burst's
//!   replies into minimal TX segments (values prepend their own bulk
//!   headers in place when sole ownership allows).
//! - [`store`] — the cache: slab-backed hash index, intrusive LRU under
//!   a byte budget, lazy + hierarchical-wheel TTL expiry, and a
//!   [`store::CacheMirror`] doorbell so a NIC-offload replica (PR:
//!   device-side offload) shares one insert/invalidate path with the
//!   host.
//! - [`server`] — the engine: drains every complete command per RX pass
//!   (deep pipelining), splits replies at the durability barrier for
//!   group commit.
//! - [`log`] — group-commit batch codec + replay: one storage
//!   submission per drained batch, byte-exact recovery of acknowledged
//!   state.

pub mod log;
pub mod resp;
pub mod server;
pub mod store;

pub use resp::{ReplyWriter, RespCommand, RespParser};
pub use server::{DrainResult, KvConn, KvEngine, KvEngineConfig};
pub use store::{CacheMirror, KvStore};
