//! Group-commit batch encoding for the append-only mutation log.
//!
//! Durability rides catfs (PR: storage libOS): one **batch** — every
//! mutation drained from one RX pass — is encoded into a single record
//! payload and appended with a single `push`, so an N-deep pipelined
//! burst of SETs costs one storage submission, not N (the same handoff
//! amortization the TX path gets from coalescing, applied to the log).
//! catfs frames, checksums, and block-writes the record; this module
//! only defines the payload layout:
//!
//! ```text
//! [count u32] then count × entry
//! entry: [tag u8][klen u32][vlen u32][expire_at_ns u64][key][value]
//!   tag 0 = SET   (vlen value bytes; expire_at_ns = u64::MAX if none)
//!   tag 1 = DEL   (vlen = 0)
//!   tag 2 = PEXPIRE (vlen = 0; expire_at_ns = absolute deadline)
//! ```
//!
//! Replay applies batches in append order; within a batch, entries in
//! encode order — exactly the order the engine executed them, so the
//! recovered store equals the crashed store's acknowledged state.

use demi_memory::DemiBuffer;
use sim_fabric::SimTime;

use crate::store::KvStore;

/// Sentinel for "no expiry" in the wire encoding.
const NO_EXPIRY: u64 = u64::MAX;

/// One mutation awaiting group commit. Key and value are buffer handles
/// (shared with the store — encoding reads through them, no early copy).
#[derive(Debug, Clone)]
pub enum PendingOp {
    /// SET key → value, with an optional absolute deadline.
    Set {
        /// The key bytes.
        key: DemiBuffer,
        /// The value bytes.
        value: DemiBuffer,
        /// Absolute expiry deadline, if any.
        expire_at: Option<SimTime>,
    },
    /// DEL key (logged only when the key was live).
    Del {
        /// The key bytes.
        key: DemiBuffer,
    },
    /// PEXPIRE key → absolute deadline.
    Expire {
        /// The key bytes.
        key: DemiBuffer,
        /// Absolute expiry deadline.
        at: SimTime,
    },
}

/// A decoded log entry (owned — recovery reads from storage).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogEntry {
    /// SET key → value.
    Set {
        /// The key bytes.
        key: Vec<u8>,
        /// The value bytes.
        value: Vec<u8>,
        /// Absolute expiry deadline, if any.
        expire_at: Option<SimTime>,
    },
    /// DEL key.
    Del {
        /// The key bytes.
        key: Vec<u8>,
    },
    /// PEXPIRE key at deadline.
    Expire {
        /// The key bytes.
        key: Vec<u8>,
        /// Absolute expiry deadline.
        at: SimTime,
    },
}

/// Encodes one batch into a single record payload.
pub fn encode_batch(ops: &[PendingOp]) -> Vec<u8> {
    let mut out = Vec::with_capacity(
        4 + ops
            .iter()
            .map(|op| {
                17 + match op {
                    PendingOp::Set { key, value, .. } => key.len() + value.len(),
                    PendingOp::Del { key } | PendingOp::Expire { key, .. } => key.len(),
                }
            })
            .sum::<usize>(),
    );
    out.extend_from_slice(&(ops.len() as u32).to_be_bytes());
    for op in ops {
        let (tag, key, value, expire): (u8, &DemiBuffer, &[u8], u64) = match op {
            PendingOp::Set {
                key,
                value,
                expire_at,
            } => (
                0,
                key,
                value.as_slice(),
                expire_at.map_or(NO_EXPIRY, |t| t.as_nanos()),
            ),
            PendingOp::Del { key } => (1, key, &[], NO_EXPIRY),
            PendingOp::Expire { key, at } => (2, key, &[], at.as_nanos()),
        };
        out.push(tag);
        out.extend_from_slice(&(key.len() as u32).to_be_bytes());
        out.extend_from_slice(&(value.len() as u32).to_be_bytes());
        out.extend_from_slice(&expire.to_be_bytes());
        out.extend_from_slice(key.as_slice());
        out.extend_from_slice(value);
    }
    out
}

/// Decodes one record payload back into entries.
pub fn decode_batch(bytes: &[u8]) -> Result<Vec<LogEntry>, &'static str> {
    let mut pos = 0usize;
    let count = read_u32(bytes, &mut pos)? as usize;
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = *bytes.get(pos).ok_or("truncated entry tag")?;
        pos += 1;
        let klen = read_u32(bytes, &mut pos)? as usize;
        let vlen = read_u32(bytes, &mut pos)? as usize;
        let expire = read_u64(bytes, &mut pos)?;
        let key = read_bytes(bytes, &mut pos, klen)?.to_vec();
        let value = read_bytes(bytes, &mut pos, vlen)?.to_vec();
        out.push(match tag {
            0 => LogEntry::Set {
                key,
                value,
                expire_at: (expire != NO_EXPIRY).then(|| SimTime::from_nanos(expire)),
            },
            1 => LogEntry::Del { key },
            2 => LogEntry::Expire {
                key,
                at: SimTime::from_nanos(expire),
            },
            _ => return Err("unknown entry tag"),
        });
    }
    if pos != bytes.len() {
        return Err("trailing bytes after batch");
    }
    Ok(out)
}

/// Applies one decoded entry to `store` at replay time `now`. Entries
/// whose deadline already passed still apply — the subsequent lazy/wheel
/// expiry path removes them, mirroring the crashed instance's behavior.
pub fn apply(store: &mut KvStore, entry: &LogEntry, now: SimTime) {
    match entry {
        LogEntry::Set {
            key,
            value,
            expire_at,
        } => {
            // An oversized entry was never acknowledged, so it can't be
            // in the log; ignore defensively rather than panic mid-mount.
            let _ = store.set(key, DemiBuffer::from(value.clone()), *expire_at, now);
        }
        LogEntry::Del { key } => {
            store.del(key, now);
        }
        LogEntry::Expire { key, at } => {
            store.expire(key, *at, now);
        }
    }
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, &'static str> {
    let s = bytes.get(*pos..*pos + 4).ok_or("truncated u32")?;
    *pos += 4;
    Ok(u32::from_be_bytes(s.try_into().expect("4 bytes")))
}

fn read_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, &'static str> {
    let s = bytes.get(*pos..*pos + 8).ok_or("truncated u64")?;
    *pos += 8;
    Ok(u64::from_be_bytes(s.try_into().expect("8 bytes")))
}

fn read_bytes<'a>(bytes: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], &'static str> {
    let s = bytes.get(*pos..*pos + len).ok_or("truncated bytes")?;
    *pos += len;
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn buf(data: &[u8]) -> DemiBuffer {
        DemiBuffer::from(data.to_vec())
    }

    #[test]
    fn batch_roundtrips() {
        let ops = vec![
            PendingOp::Set {
                key: buf(b"k1"),
                value: buf(b"value-one"),
                expire_at: None,
            },
            PendingOp::Set {
                key: buf(b"k2"),
                value: buf(b""),
                expire_at: Some(SimTime::from_nanos(12_345)),
            },
            PendingOp::Del { key: buf(b"k1") },
            PendingOp::Expire {
                key: buf(b"k2"),
                at: SimTime::from_nanos(99_999),
            },
        ];
        let bytes = encode_batch(&ops);
        let entries = decode_batch(&bytes).unwrap();
        assert_eq!(entries.len(), 4);
        assert_eq!(
            entries[0],
            LogEntry::Set {
                key: b"k1".to_vec(),
                value: b"value-one".to_vec(),
                expire_at: None
            }
        );
        assert_eq!(
            entries[2],
            LogEntry::Del {
                key: b"k1".to_vec()
            }
        );
        assert_eq!(
            entries[3],
            LogEntry::Expire {
                key: b"k2".to_vec(),
                at: SimTime::from_nanos(99_999)
            }
        );
    }

    #[test]
    fn corrupt_batches_are_rejected() {
        let bytes = encode_batch(&[PendingOp::Del { key: buf(b"k") }]);
        assert!(decode_batch(&bytes[..bytes.len() - 1]).is_err());
        let mut extra = bytes.clone();
        extra.push(0);
        assert!(decode_batch(&extra).is_err());
        let mut bad_tag = bytes.clone();
        bad_tag[4] = 9;
        assert!(decode_batch(&bad_tag).is_err());
    }

    #[test]
    fn replay_rebuilds_acknowledged_state() {
        let now = SimTime::from_nanos(1);
        let batches = [
            encode_batch(&[
                PendingOp::Set {
                    key: buf(b"a"),
                    value: buf(b"1"),
                    expire_at: None,
                },
                PendingOp::Set {
                    key: buf(b"b"),
                    value: buf(b"2"),
                    expire_at: None,
                },
            ]),
            encode_batch(&[
                PendingOp::Set {
                    key: buf(b"a"),
                    value: buf(b"override"),
                    expire_at: None,
                },
                PendingOp::Del { key: buf(b"b") },
            ]),
        ];
        let mut store = KvStore::new(1 << 20, SimTime::ZERO);
        for batch in &batches {
            for entry in decode_batch(batch).unwrap() {
                apply(&mut store, &entry, now);
            }
        }
        assert_eq!(store.dump(now), vec![(b"a".to_vec(), b"override".to_vec())]);
    }
}
