//! Zero-copy incremental RESP parsing and reply serialization.
//!
//! The parser consumes raw TCP stream chunks (`DemiBuffer` RX views) and
//! yields complete commands whose arguments are **sub-views of those same
//! chunks** — no payload byte is copied on the happy path. A command that
//! happens to straddle a segment boundary is reassembled with an honestly
//! counted copy ([`demi_memory::counters`]), and the parser's stats expose
//! exactly how often that happened so experiments can assert it didn't.
//!
//! Wire shape (the RESP2 command subset Redis clients speak):
//!
//! ```text
//! *<nargs>\r\n  then nargs ×  $<len>\r\n<len bytes>\r\n
//! ```
//!
//! Replies use simple strings (`+OK\r\n`), errors (`-ERR ...\r\n`),
//! integers (`:n\r\n`), bulk strings (`$len\r\n...\r\n`), and nulls
//! (`$-1\r\n`).
//!
//! [`ReplyWriter`] is the TX half: GET replies try to [`DemiBuffer::prepend`]
//! the bulk header into the stored value's own headroom (a zero-copy,
//! zero-segment-overhead reply when the value is the lowest live view of
//! its storage); when another live view forbids that, the header joins the
//! contiguous *control-byte run* instead — small protocol bytes written
//! once into a pooled buffer, never a payload copy either way.

use std::collections::VecDeque;

use demi_memory::{counters, DemiBuffer, MemoryManager};

/// Longest accepted header line (`*<n>\r\n` / `$<len>\r\n`), generous.
const MAX_LINE: usize = 32;
/// Most arguments a single command may carry.
pub const MAX_ARGS: u64 = 64;
/// Largest accepted bulk argument (keys and values).
pub const MAX_BULK: u64 = 8 * 1024 * 1024;

/// A malformed byte stream. The connection should be closed: RESP has no
/// way to resynchronize after a framing error.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RespError(pub &'static str);

impl std::fmt::Display for RespError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RESP protocol error: {}", self.0)
    }
}

/// One parsed command: `args[0]` is the verb, the rest its operands.
/// Every argument is a buffer view — into the RX chunk it arrived in
/// (zero-copy) or into a reassembly buffer (counted, cross-chunk case).
#[derive(Debug, Clone)]
pub struct RespCommand {
    /// The command's arguments, verb first.
    pub args: Vec<DemiBuffer>,
}

impl RespCommand {
    /// Argument `i` as a byte slice.
    pub fn arg(&self, i: usize) -> &[u8] {
        self.args[i].as_slice()
    }
}

/// Parser observability: the zero-copy claim is asserted, not assumed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RespStats {
    /// Complete commands yielded.
    pub commands: u64,
    /// Arguments extracted as pure sub-views of a single RX chunk.
    pub zero_copy_args: u64,
    /// Arguments that straddled a chunk boundary and were reassembled
    /// with a counted payload copy.
    pub reassembled_args: u64,
}

enum ParseState {
    /// Expecting `*<nargs>\r\n`.
    ArrayHeader,
    /// Expecting `$<len>\r\n` for the next of `remaining` arguments.
    BulkHeader { remaining: u64 },
    /// Expecting `len` payload bytes plus the trailing CRLF.
    BulkPayload { remaining: u64, len: usize },
}

/// The incremental parser. Push stream chunks in arrival order; pull
/// complete commands out. Partial state (half a header line, half an
/// argument) persists across pushes — exactly the paper's "atomic data
/// units over a byte stream" discipline (§3.2), generalized from the
/// fixed framing layer to a real protocol.
pub struct RespParser {
    /// Unconsumed stream, in order. The front chunk's view is advanced
    /// in place as bytes are consumed; exhausted chunks are dropped
    /// (releasing their storage for value-headroom prepends).
    chunks: VecDeque<DemiBuffer>,
    buffered: usize,
    state: ParseState,
    args: Vec<DemiBuffer>,
    stats: RespStats,
}

impl Default for RespParser {
    fn default() -> Self {
        Self::new()
    }
}

impl RespParser {
    /// An empty parser.
    pub fn new() -> Self {
        RespParser {
            chunks: VecDeque::new(),
            buffered: 0,
            state: ParseState::ArrayHeader,
            args: Vec::new(),
            stats: RespStats::default(),
        }
    }

    /// Appends one stream chunk (zero-copy: the handle is kept, not the
    /// bytes). Empty chunks are ignored.
    pub fn push_chunk(&mut self, chunk: DemiBuffer) {
        if chunk.is_empty() {
            return;
        }
        self.buffered += chunk.len();
        self.chunks.push_back(chunk);
    }

    /// Unconsumed bytes currently held.
    pub fn buffered_bytes(&self) -> usize {
        self.buffered
    }

    /// Whether a partially parsed command is pending (mid-header or
    /// mid-argument state survives across `push_chunk` calls).
    pub fn mid_command(&self) -> bool {
        !matches!(self.state, ParseState::ArrayHeader) || !self.args.is_empty()
    }

    /// Parser counters.
    pub fn stats(&self) -> RespStats {
        self.stats
    }

    /// Extracts the next complete command, or `None` if more bytes are
    /// needed. Call in a loop to drain a pipelined burst.
    pub fn next_command(&mut self) -> Result<Option<RespCommand>, RespError> {
        loop {
            match self.state {
                ParseState::ArrayHeader => {
                    let Some((line, line_len)) = self.peek_line()? else {
                        return Ok(None);
                    };
                    if line.first() != Some(&b'*') {
                        return Err(RespError("expected array header"));
                    }
                    let nargs = parse_decimal(&line[1..])?;
                    if nargs == 0 || nargs > MAX_ARGS {
                        return Err(RespError("argument count out of range"));
                    }
                    self.consume(line_len);
                    self.args = Vec::with_capacity(nargs as usize);
                    self.state = ParseState::BulkHeader { remaining: nargs };
                }
                ParseState::BulkHeader { remaining } => {
                    let Some((line, line_len)) = self.peek_line()? else {
                        return Ok(None);
                    };
                    if line.first() != Some(&b'$') {
                        return Err(RespError("expected bulk header"));
                    }
                    let len = parse_decimal(&line[1..])?;
                    if len > MAX_BULK {
                        return Err(RespError("bulk argument too large"));
                    }
                    self.consume(line_len);
                    self.state = ParseState::BulkPayload {
                        remaining,
                        len: len as usize,
                    };
                }
                ParseState::BulkPayload { remaining, len } => {
                    // Payload plus its CRLF terminator must be buffered in
                    // full before anything is consumed, so a partial
                    // argument never tears.
                    if self.buffered < len + 2 {
                        return Ok(None);
                    }
                    let arg = self.extract_payload(len);
                    let mut crlf = [0u8; 2];
                    self.copy_out(&mut crlf);
                    self.consume(2);
                    if crlf != *b"\r\n" {
                        return Err(RespError("bulk argument missing CRLF"));
                    }
                    self.args.push(arg);
                    if remaining == 1 {
                        self.state = ParseState::ArrayHeader;
                        self.stats.commands += 1;
                        return Ok(Some(RespCommand {
                            args: std::mem::take(&mut self.args),
                        }));
                    }
                    self.state = ParseState::BulkHeader {
                        remaining: remaining - 1,
                    };
                }
            }
        }
    }

    /// Takes `len` payload bytes off the front of the stream. Entirely
    /// within the front chunk → a zero-copy sub-view. Straddling chunks →
    /// one honestly counted gather copy.
    fn extract_payload(&mut self, len: usize) -> DemiBuffer {
        if len == 0 {
            return DemiBuffer::empty();
        }
        let front_len = self.chunks.front().map_or(0, |c| c.len());
        if front_len >= len {
            let arg = self.chunks.front().expect("front exists").slice(0, len);
            self.consume(len);
            self.stats.zero_copy_args += 1;
            return arg;
        }
        // Cross-chunk reassembly: the one counted copy in this module.
        let mut bytes = Vec::with_capacity(len);
        let mut need = len;
        for chunk in &self.chunks {
            let take = chunk.len().min(need);
            bytes.extend_from_slice(&chunk.as_slice()[..take]);
            need -= take;
            if need == 0 {
                break;
            }
        }
        debug_assert_eq!(need, 0, "availability checked by caller");
        counters::note_copy(len);
        self.consume(len);
        self.stats.reassembled_args += 1;
        DemiBuffer::from(bytes)
    }

    /// Finds one `\r\n`-terminated line at the front of the stream
    /// without consuming it. Returns the line bytes (CRLF stripped) and
    /// the total length including CRLF. Header lines are protocol
    /// metadata, not payload: the few bytes pass through a stack buffer.
    fn peek_line(&self) -> Result<Option<([u8; MAX_LINE], usize)>, RespError> {
        let mut line = [0u8; MAX_LINE];
        let mut n = 0usize;
        for chunk in &self.chunks {
            for &b in chunk.as_slice() {
                if b == b'\n' {
                    if n == 0 || line[n - 1] != b'\r' {
                        return Err(RespError("header line missing CR"));
                    }
                    let mut out = [0u8; MAX_LINE];
                    out[..n - 1].copy_from_slice(&line[..n - 1]);
                    // Ugly but allocation-free: return the CRLF-stripped
                    // prefix length via a sentinel in the caller's parse.
                    return Ok(Some((trim_to(out, n - 1), n + 1)));
                }
                if n == MAX_LINE {
                    return Err(RespError("header line too long"));
                }
                line[n] = b;
                n += 1;
            }
        }
        if n == MAX_LINE {
            return Err(RespError("header line too long"));
        }
        Ok(None)
    }

    /// Copies the next `out.len()` buffered bytes into `out` without
    /// consuming (CRLF verification).
    fn copy_out(&self, out: &mut [u8]) {
        let mut n = 0;
        for chunk in &self.chunks {
            for &b in chunk.as_slice() {
                out[n] = b;
                n += 1;
                if n == out.len() {
                    return;
                }
            }
        }
    }

    /// Drops `n` bytes off the front of the stream, advancing chunk views
    /// in place and releasing exhausted chunk handles.
    fn consume(&mut self, mut n: usize) {
        self.buffered -= n;
        while n > 0 {
            let front = self.chunks.front_mut().expect("consume within buffered");
            let take = front.len().min(n);
            front.advance(take);
            n -= take;
            if front.is_empty() {
                self.chunks.pop_front();
            }
        }
    }
}

/// Fixed-size line helper: keeps only the first `n` meaningful bytes.
fn trim_to(mut line: [u8; MAX_LINE], n: usize) -> [u8; MAX_LINE] {
    // Zero the tail and stash the length in a parallel convention: callers
    // re-scan for the terminating zero. Simpler: pad with a sentinel that
    // `parse_decimal` rejects — zeros work because lines never contain NUL.
    for b in line.iter_mut().skip(n) {
        *b = 0;
    }
    line
}

/// Parses the ASCII decimal in `line` (NUL-padded, from [`trim_to`]).
fn parse_decimal(line: &[u8]) -> Result<u64, RespError> {
    let mut value: u64 = 0;
    let mut digits = 0;
    for &b in line {
        if b == 0 {
            break;
        }
        if !b.is_ascii_digit() {
            return Err(RespError("malformed decimal"));
        }
        value = value
            .checked_mul(10)
            .and_then(|v| v.checked_add((b - b'0') as u64))
            .ok_or(RespError("decimal overflow"))?;
        digits += 1;
    }
    if digits == 0 {
        return Err(RespError("empty decimal"));
    }
    Ok(value)
}

// ---------------------------------------------------------------------
// Reference parser — the naive, copying implementation the differential
// proptest compares against. Deliberately written the "obvious" way.
// ---------------------------------------------------------------------

/// Owned commands as the reference parser produces them: each command is
/// a list of argument byte strings.
pub type RefCommands = Vec<Vec<Vec<u8>>>;

/// Parses every complete command in `bytes` the simple way (all copies),
/// returning the commands and how many bytes they consumed. The real
/// parser must agree with this on every stream and every re-chunking.
pub fn reference_parse(bytes: &[u8]) -> Result<(RefCommands, usize), RespError> {
    let mut commands = Vec::new();
    let mut pos = 0usize;
    loop {
        let start = pos;
        let Some(line) = ref_line(bytes, pos) else {
            return Ok((commands, start));
        };
        let (text, next) = line;
        if text.first() != Some(&b'*') {
            return Err(RespError("expected array header"));
        }
        let nargs = ref_decimal(&text[1..])?;
        if nargs == 0 || nargs > MAX_ARGS {
            return Err(RespError("argument count out of range"));
        }
        pos = next;
        let mut args = Vec::with_capacity(nargs as usize);
        for _ in 0..nargs {
            let Some((text, next)) = ref_line(bytes, pos) else {
                return Ok((commands, start));
            };
            if text.first() != Some(&b'$') {
                return Err(RespError("expected bulk header"));
            }
            let len = ref_decimal(&text[1..])? as usize;
            if len as u64 > MAX_BULK {
                return Err(RespError("bulk argument too large"));
            }
            if bytes.len() < next + len + 2 {
                return Ok((commands, start));
            }
            if &bytes[next + len..next + len + 2] != b"\r\n" {
                return Err(RespError("bulk argument missing CRLF"));
            }
            args.push(bytes[next..next + len].to_vec());
            pos = next + len + 2;
        }
        commands.push(args);
    }
}

fn ref_line(bytes: &[u8], pos: usize) -> Option<(&[u8], usize)> {
    let rest = &bytes[pos.min(bytes.len())..];
    let nl = rest.iter().position(|&b| b == b'\n')?;
    if nl == 0 || rest[nl - 1] != b'\r' {
        return None; // Malformed; surfaces as a header error upstream.
    }
    Some((&rest[..nl - 1], pos + nl + 1))
}

fn ref_decimal(text: &[u8]) -> Result<u64, RespError> {
    if text.is_empty() || !text.iter().all(|b| b.is_ascii_digit()) {
        return Err(RespError("malformed decimal"));
    }
    let mut v: u64 = 0;
    for &b in text {
        v = v
            .checked_mul(10)
            .and_then(|x| x.checked_add((b - b'0') as u64))
            .ok_or(RespError("decimal overflow"))?;
    }
    Ok(v)
}

// ---------------------------------------------------------------------
// Command encoding (clients, tests, and the load generator).
// ---------------------------------------------------------------------

/// Appends the RESP encoding of a command to `out`.
pub fn encode_command(out: &mut Vec<u8>, args: &[&[u8]]) {
    out.push(b'*');
    out.extend_from_slice(itoa(args.len() as u64).as_bytes());
    out.extend_from_slice(b"\r\n");
    for a in args {
        out.push(b'$');
        out.extend_from_slice(itoa(a.len() as u64).as_bytes());
        out.extend_from_slice(b"\r\n");
        out.extend_from_slice(a);
        out.extend_from_slice(b"\r\n");
    }
}

fn itoa(v: u64) -> String {
    v.to_string()
}

// ---------------------------------------------------------------------
// Reply serialization.
// ---------------------------------------------------------------------

/// Reply-path counters: how GET bulk headers were placed.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReplyStats {
    /// Bulk headers written in place into the value's own headroom
    /// (`prepend` succeeded — reply shares the value's segment).
    pub prepend_hits: u64,
    /// Bulk headers routed to the control run because another live view
    /// of the value's storage made `prepend` illegal.
    pub prepend_fallbacks: u64,
    /// Control-run segments emitted (pooled, protocol bytes only).
    pub ctrl_segments: u64,
}

/// Builds one connection's coalesced reply burst. Control bytes (status
/// lines, integers, bulk headers that could not prepend, CRLF trailers)
/// accumulate into contiguous runs flushed as pooled segments; values
/// ride as shared handles. Payload bytes are never copied.
pub struct ReplyWriter {
    memory: MemoryManager,
    ctrl: Vec<u8>,
    segs: Vec<DemiBuffer>,
    stats: ReplyStats,
}

impl ReplyWriter {
    /// A writer drawing control segments from `memory`'s pool.
    pub fn new(memory: MemoryManager) -> Self {
        ReplyWriter {
            memory,
            ctrl: Vec::new(),
            segs: Vec::new(),
            stats: ReplyStats::default(),
        }
    }

    /// Cumulative reply-path counters.
    pub fn stats(&self) -> ReplyStats {
        self.stats
    }

    /// `+OK\r\n`-style simple string (pass without the `+`).
    pub fn simple(&mut self, text: &[u8]) {
        self.ctrl.push(b'+');
        self.ctrl.extend_from_slice(text);
        self.ctrl.extend_from_slice(b"\r\n");
    }

    /// `-ERR ...\r\n` error reply (pass the full message).
    pub fn error(&mut self, text: &[u8]) {
        self.ctrl.push(b'-');
        self.ctrl.extend_from_slice(text);
        self.ctrl.extend_from_slice(b"\r\n");
    }

    /// `:<n>\r\n` integer reply.
    pub fn integer(&mut self, v: i64) {
        self.ctrl.push(b':');
        self.ctrl.extend_from_slice(v.to_string().as_bytes());
        self.ctrl.extend_from_slice(b"\r\n");
    }

    /// `$-1\r\n` null bulk (missing key).
    pub fn null(&mut self) {
        self.ctrl.extend_from_slice(b"$-1\r\n");
    }

    /// `$<len>\r\n<value>\r\n` bulk reply carrying `value` zero-copy.
    ///
    /// Fast path: the header is prepended into the value buffer's own
    /// headroom, so header and payload travel as **one** segment. That is
    /// legal only while no other live view of the storage starts below
    /// the value's offset; otherwise the header joins the control run and
    /// the value rides as its own segment — still zero payload copies.
    pub fn bulk(&mut self, value: &DemiBuffer) {
        let mut header = [0u8; MAX_LINE];
        let header_len = {
            let digits = value.len().to_string();
            header[0] = b'$';
            header[1..1 + digits.len()].copy_from_slice(digits.as_bytes());
            header[1 + digits.len()] = b'\r';
            header[2 + digits.len()] = b'\n';
            3 + digits.len()
        };
        let mut v = value.clone();
        match v.prepend(header_len) {
            Ok(dst) => {
                dst.copy_from_slice(&header[..header_len]);
                self.stats.prepend_hits += 1;
                self.flush_ctrl();
                self.segs.push(v);
            }
            Err(_) => {
                self.stats.prepend_fallbacks += 1;
                self.ctrl.extend_from_slice(&header[..header_len]);
                self.flush_ctrl();
                self.segs.push(value.clone());
            }
        }
        self.ctrl.extend_from_slice(b"\r\n");
    }

    /// Flushes pending control bytes and returns the reply burst in
    /// order. The writer is ready for the next burst afterward.
    pub fn take(&mut self) -> Vec<DemiBuffer> {
        self.flush_ctrl();
        std::mem::take(&mut self.segs)
    }

    fn flush_ctrl(&mut self) {
        if self.ctrl.is_empty() {
            return;
        }
        // Pooled, written once while exclusively owned: protocol bytes
        // are generated, not copied — the datapath copy counters agree.
        let mut seg = self.memory.alloc(self.ctrl.len());
        seg.try_mut()
            .expect("fresh pool buffer is exclusive")
            .copy_from_slice(&self.ctrl);
        self.segs.push(seg);
        self.stats.ctrl_segments += 1;
        self.ctrl.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cmds(parser: &mut RespParser) -> Vec<Vec<Vec<u8>>> {
        let mut out = Vec::new();
        while let Some(cmd) = parser.next_command().expect("valid stream") {
            out.push(cmd.args.iter().map(|a| a.to_vec()).collect());
        }
        out
    }

    #[test]
    fn single_chunk_pipeline_is_zero_copy() {
        let mut bytes = Vec::new();
        encode_command(&mut bytes, &[b"SET", b"k1", b"value-1"]);
        encode_command(&mut bytes, &[b"GET", b"k1"]);
        encode_command(&mut bytes, &[b"DEL", b"k1"]);
        let mut p = RespParser::new();
        p.push_chunk(DemiBuffer::from(bytes));
        let got = cmds(&mut p);
        assert_eq!(got.len(), 3);
        assert_eq!(
            got[0],
            vec![b"SET".to_vec(), b"k1".to_vec(), b"value-1".to_vec()]
        );
        assert_eq!(got[1], vec![b"GET".to_vec(), b"k1".to_vec()]);
        let s = p.stats();
        assert_eq!(s.commands, 3);
        assert_eq!(s.reassembled_args, 0, "no boundary, no copies");
        assert_eq!(s.zero_copy_args, 7);
        assert_eq!(p.buffered_bytes(), 0);
    }

    #[test]
    fn one_byte_chunks_still_parse() {
        let mut bytes = Vec::new();
        encode_command(&mut bytes, &[b"SET", b"key", b"splayed-value"]);
        let mut p = RespParser::new();
        for b in bytes {
            p.push_chunk(DemiBuffer::from(vec![b]));
        }
        let got = cmds(&mut p);
        assert_eq!(
            got,
            vec![vec![
                b"SET".to_vec(),
                b"key".to_vec(),
                b"splayed-value".to_vec()
            ]]
        );
        // Multi-byte args all straddled chunk boundaries.
        assert!(p.stats().reassembled_args > 0);
    }

    #[test]
    fn args_are_views_into_the_rx_chunk() {
        let mut bytes = Vec::new();
        encode_command(&mut bytes, &[b"GET", b"shared"]);
        let chunk = DemiBuffer::from(bytes);
        let mut p = RespParser::new();
        p.push_chunk(chunk.clone());
        let cmd = p.next_command().unwrap().unwrap();
        assert!(
            cmd.args[1].same_storage(&chunk),
            "arg is a sub-view, not a copy"
        );
    }

    #[test]
    fn partial_then_completion_across_pushes() {
        let mut bytes = Vec::new();
        encode_command(&mut bytes, &[b"SET", b"k", b"0123456789"]);
        let cut = bytes.len() - 4; // Mid-value split.
        let mut p = RespParser::new();
        p.push_chunk(DemiBuffer::from(bytes[..cut].to_vec()));
        assert!(p.next_command().unwrap().is_none());
        assert!(p.mid_command());
        p.push_chunk(DemiBuffer::from(bytes[cut..].to_vec()));
        let cmd = p.next_command().unwrap().unwrap();
        assert_eq!(cmd.arg(2), b"0123456789");
        assert!(!p.mid_command());
    }

    #[test]
    fn protocol_errors_are_detected() {
        let mut p = RespParser::new();
        p.push_chunk(DemiBuffer::from(b"+PING\r\n".to_vec()));
        assert!(p.next_command().is_err(), "inline/simple input rejected");

        let mut p = RespParser::new();
        p.push_chunk(DemiBuffer::from(b"*1\r\n$3\r\nabcXX".to_vec()));
        assert!(p.next_command().is_err(), "bad CRLF detected");
    }

    #[test]
    fn reference_parser_agrees_on_a_simple_stream() {
        let mut bytes = Vec::new();
        encode_command(&mut bytes, &[b"SET", b"a", b"1"]);
        encode_command(&mut bytes, &[b"GET", b"a"]);
        let (cmds, consumed) = reference_parse(&bytes).unwrap();
        assert_eq!(consumed, bytes.len());
        assert_eq!(cmds.len(), 2);
        assert_eq!(cmds[1], vec![b"GET".to_vec(), b"a".to_vec()]);
    }

    #[test]
    fn reply_writer_coalesces_and_prepends() {
        let memory = MemoryManager::warmed();
        let mut w = ReplyWriter::new(memory.clone());
        // A pooled value with headroom and no other low view: prepend hits.
        let value = memory.alloc_from(b"payload-bytes");
        w.simple(b"OK");
        w.bulk(&value);
        w.integer(1);
        let segs = w.take();
        let flat: Vec<u8> = segs.iter().flat_map(|s| s.as_slice().to_vec()).collect();
        assert_eq!(flat, b"+OK\r\n$13\r\npayload-bytes\r\n:1\r\n");
        assert_eq!(w.stats().prepend_hits, 1);
        assert_eq!(w.stats().prepend_fallbacks, 0);
        // Header and payload traveled as one segment: [+OK ctrl][hdr+value][crlf+int ctrl].
        assert_eq!(segs.len(), 3);
    }

    #[test]
    fn reply_writer_falls_back_when_prepend_is_illegal() {
        let memory = MemoryManager::warmed();
        let mut w = ReplyWriter::new(memory.clone());
        let value = memory.alloc_from(b"vv");
        // A live view strictly below the value's offset forbids prepend.
        let mut lower = value.clone();
        let guard = lower.prepend(1).map(|d| d[0] = b'!');
        assert!(guard.is_ok());
        w.bulk(&value);
        let segs = w.take();
        let flat: Vec<u8> = segs.iter().flat_map(|s| s.as_slice().to_vec()).collect();
        assert_eq!(flat, b"$2\r\nvv\r\n");
        assert_eq!(w.stats().prepend_fallbacks, 1);
    }
}
