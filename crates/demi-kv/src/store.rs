//! The live store: byte-budgeted LRU eviction and TTL expiry, promoted
//! from `bench::cachesim`'s simulation into the serving path.
//!
//! * Entries live in a slab (`Vec<Slot>` + free list) threaded by an
//!   intrusive doubly-linked LRU list — touch, insert, and evict are all
//!   O(1), no per-op allocation once the slab is warm.
//! * Values are [`DemiBuffer`] handles: a SET stores the RX view the
//!   argument arrived in (zero-copy end to end), and a GET hands back a
//!   cloned handle that the reply path ships without copying.
//! * TTLs ride the hierarchical [`TimerWheel`] (PR 4): scheduling is
//!   O(1), idle keys cost nothing per tick, and cancellation is lazy via
//!   per-slot generations — exactly the discipline the TCP timers use.
//!   Expiry is *also* checked lazily on access, so a key whose deadline
//!   passed between wheel advances can never be served stale.
//! * Every removal — SET overwrite, DEL, eviction, expiry — funnels
//!   through one path that notifies the optional [`CacheMirror`], so a
//!   device-resident replica (the PR 7 NIC GET cache) can never disagree
//!   with the host about which keys are live.

use std::collections::HashMap;

use demi_memory::DemiBuffer;
use net_stack::tcp::wheel::TimerWheel;
use sim_fabric::SimTime;

/// A secondary cache kept write-through-coherent with the store: the
/// NIC-resident KV GET cache in production, a counting probe in tests.
pub trait CacheMirror {
    /// Publish a key/value (host served a GET miss; device may cache it).
    /// `false` means the mirror declined (no offload installed, entry too
    /// large) — the host simply keeps serving the key.
    fn insert(&mut self, key: &[u8], value: &[u8]) -> bool;
    /// The key's cached value (if any) is no longer valid.
    fn invalidate(&mut self, key: &[u8]);
}

/// Store observability.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct KvStats {
    /// GETs served from a live entry.
    pub hits: u64,
    /// GETs for missing (or just-expired) keys.
    pub misses: u64,
    /// Successful SETs.
    pub sets: u64,
    /// Successful DELs.
    pub dels: u64,
    /// Entries evicted to stay under the byte budget.
    pub evictions: u64,
    /// Entries removed by TTL (wheel-fired or lazily on access).
    pub expirations: u64,
}

/// Why a SET was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SetError {
    /// key+value alone exceed the byte budget; admitting it would evict
    /// the entire store and still not fit.
    TooLarge,
}

/// TTL query result (Redis `PTTL` semantics, in virtual nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Ttl {
    /// No such key.
    Missing,
    /// Key exists and never expires.
    NoExpiry,
    /// Key expires this many nanoseconds from `now`.
    RemainingNs(u64),
}

const NIL: u32 = u32::MAX;

struct Slot {
    key: Box<[u8]>,
    value: DemiBuffer,
    expire_at: Option<SimTime>,
    /// Bumped whenever the slot's schedule changes (or the slot is
    /// freed), abandoning any wheel entry carrying an older generation.
    generation: u32,
    live: bool,
    prev: u32,
    next: u32,
}

impl Slot {
    fn vacant() -> Self {
        Slot {
            key: Box::default(),
            value: DemiBuffer::empty(),
            expire_at: None,
            generation: 0,
            live: false,
            prev: NIL,
            next: NIL,
        }
    }
}

/// The store. All operations take `now` explicitly — the store has no
/// clock of its own, which is what lets the differential proptest drive
/// it on synthetic time.
pub struct KvStore {
    slots: Vec<Slot>,
    free: Vec<u32>,
    index: HashMap<Box<[u8]>, u32>,
    /// Most-recently-used slot.
    head: u32,
    /// Least-recently-used slot (eviction victim).
    tail: u32,
    bytes: usize,
    budget: usize,
    wheel: TimerWheel<u64>,
    fired: Vec<(SimTime, u64)>,
    mirror: Option<Box<dyn CacheMirror>>,
    stats: KvStats,
}

fn pack(slot: u32, generation: u32) -> u64 {
    ((slot as u64) << 32) | generation as u64
}

fn unpack(key: u64) -> (u32, u32) {
    ((key >> 32) as u32, key as u32)
}

impl KvStore {
    /// An empty store holding at most `budget` bytes of keys+values,
    /// whose TTL wheel starts at `start`.
    pub fn new(budget: usize, start: SimTime) -> Self {
        KvStore {
            slots: Vec::new(),
            free: Vec::new(),
            index: HashMap::new(),
            head: NIL,
            tail: NIL,
            bytes: 0,
            budget,
            wheel: TimerWheel::new(start),
            fired: Vec::new(),
            mirror: None,
            stats: KvStats::default(),
        }
    }

    /// Attaches the write-through mirror every removal will notify.
    pub fn set_mirror(&mut self, mirror: Box<dyn CacheMirror>) {
        self.mirror = Some(mirror);
    }

    /// Publishes `key`'s live value into the mirror (insert-after-miss:
    /// call after the host served a GET the device could not).
    pub fn publish_to_mirror(&mut self, key: &[u8]) -> bool {
        if self.mirror.is_none() {
            return false;
        }
        let Some(&slot) = self.index.get(key) else {
            return false;
        };
        let value = self.slots[slot as usize].value.clone();
        match &mut self.mirror {
            Some(m) => m.insert(key, value.as_slice()),
            None => unreachable!("checked above"),
        }
    }

    /// Store counters.
    pub fn stats(&self) -> KvStats {
        self.stats
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.index.len()
    }

    /// Whether the store holds no entries.
    pub fn is_empty(&self) -> bool {
        self.index.is_empty()
    }

    /// Resident key+value bytes.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// The configured byte budget.
    pub fn budget(&self) -> usize {
        self.budget
    }

    /// Looks up `key`. A live entry is touched to MRU and its value
    /// handle cloned out (zero-copy). An entry whose deadline already
    /// passed is removed here — lazy expiry — and reported as a miss.
    pub fn get(&mut self, key: &[u8], now: SimTime) -> Option<DemiBuffer> {
        let Some(&slot) = self.index.get(key) else {
            self.stats.misses += 1;
            return None;
        };
        if self.slot_expired(slot, now) {
            self.remove_slot(slot, RemovalCause::Expired);
            self.stats.misses += 1;
            return None;
        }
        self.touch(slot);
        self.stats.hits += 1;
        Some(self.slots[slot as usize].value.clone())
    }

    /// Inserts or replaces `key`. The value handle is stored as-is (the
    /// Redis discipline: a new buffer per SET, never an in-place update —
    /// in-flight replies keep their old handle alive safely). Evicts LRU
    /// entries until the byte budget holds.
    pub fn set(
        &mut self,
        key: &[u8],
        value: DemiBuffer,
        expire_at: Option<SimTime>,
        now: SimTime,
    ) -> Result<(), SetError> {
        let entry_bytes = key.len() + value.len();
        if entry_bytes > self.budget {
            return Err(SetError::TooLarge);
        }
        if let Some(&slot) = self.index.get(key) {
            // Overwrite in place (slot and index survive; value swaps).
            let s = &mut self.slots[slot as usize];
            self.bytes -= s.key.len() + s.value.len();
            self.bytes += entry_bytes;
            s.value = value;
            s.generation = s.generation.wrapping_add(1);
            s.expire_at = expire_at;
            if let Some(at) = expire_at {
                self.wheel
                    .schedule(at, pack(slot, self.slots[slot as usize].generation));
            }
            self.touch(slot);
        } else {
            let slot = self.alloc_slot();
            let s = &mut self.slots[slot as usize];
            s.key = key.to_vec().into_boxed_slice();
            s.value = value;
            s.expire_at = expire_at;
            s.live = true;
            let generation = s.generation;
            self.index.insert(key.to_vec().into_boxed_slice(), slot);
            self.bytes += entry_bytes;
            self.link_front(slot);
            if let Some(at) = expire_at {
                self.wheel.schedule(at, pack(slot, generation));
            }
        }
        // A replaced value may be newer than what a device cache holds.
        if let Some(m) = &mut self.mirror {
            m.invalidate(key);
        }
        self.stats.sets += 1;
        // Evict from the cold end until the budget holds. The entry just
        // touched is at MRU, so it is never its own victim (entry_bytes
        // <= budget was checked above).
        while self.bytes > self.budget {
            let victim = self.tail;
            debug_assert_ne!(victim, NIL, "over budget implies a victim exists");
            self.remove_slot(victim, RemovalCause::Evicted);
        }
        let _ = now;
        Ok(())
    }

    /// Removes `key`; `true` if it was live.
    pub fn del(&mut self, key: &[u8], now: SimTime) -> bool {
        let Some(&slot) = self.index.get(key) else {
            return false;
        };
        if self.slot_expired(slot, now) {
            self.remove_slot(slot, RemovalCause::Expired);
            return false;
        }
        self.remove_slot(slot, RemovalCause::Deleted);
        self.stats.dels += 1;
        true
    }

    /// Sets `key`'s deadline; `false` if the key is missing (or already
    /// past its previous deadline).
    pub fn expire(&mut self, key: &[u8], at: SimTime, now: SimTime) -> bool {
        let Some(&slot) = self.index.get(key) else {
            return false;
        };
        if self.slot_expired(slot, now) {
            self.remove_slot(slot, RemovalCause::Expired);
            return false;
        }
        let s = &mut self.slots[slot as usize];
        s.generation = s.generation.wrapping_add(1);
        s.expire_at = Some(at);
        let generation = s.generation;
        self.wheel.schedule(at, pack(slot, generation));
        true
    }

    /// `key`'s remaining lifetime.
    pub fn ttl(&mut self, key: &[u8], now: SimTime) -> Ttl {
        let Some(&slot) = self.index.get(key) else {
            return Ttl::Missing;
        };
        if self.slot_expired(slot, now) {
            self.remove_slot(slot, RemovalCause::Expired);
            return Ttl::Missing;
        }
        match self.slots[slot as usize].expire_at {
            None => Ttl::NoExpiry,
            Some(at) => Ttl::RemainingNs(at.as_nanos() - now.as_nanos()),
        }
    }

    /// Advances the TTL wheel to `now`, removing every entry whose
    /// deadline passed — in deadline order, ties in schedule order (the
    /// wheel's guarantee), so expiry-driven mirror invalidations are
    /// deterministic.
    pub fn advance(&mut self, now: SimTime) {
        let mut fired = std::mem::take(&mut self.fired);
        fired.clear();
        self.wheel.advance_into(now, &mut fired);
        for &(deadline, packed) in &fired {
            let (slot, generation) = unpack(packed);
            let Some(s) = self.slots.get(slot as usize) else {
                continue;
            };
            // Stale entries (rescheduled, overwritten, or freed slots)
            // were abandoned by a generation bump: skip them.
            if !s.live || s.generation != generation || s.expire_at != Some(deadline) {
                continue;
            }
            self.remove_slot(slot, RemovalCause::Expired);
        }
        self.fired = fired;
    }

    /// The earliest live TTL deadline, if any (feed the event loop's
    /// timer). Stale wheel entries encountered are discarded.
    pub fn next_deadline(&mut self) -> Option<SimTime> {
        let slots = &self.slots;
        self.wheel.peek_earliest_live(|&packed| {
            let (slot, generation) = unpack(packed);
            slots
                .get(slot as usize)
                .is_some_and(|s| s.live && s.generation == generation)
        })
    }

    /// Copies out every live (non-expired) entry — recovery verification
    /// and tests; not a datapath.
    pub fn dump(&self, now: SimTime) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = self
            .index
            .values()
            .map(|&slot| &self.slots[slot as usize])
            .filter(|s| s.expire_at.is_none_or(|at| at > now))
            .map(|s| (s.key.to_vec(), s.value.as_slice().to_vec()))
            .collect();
        out.sort();
        out
    }

    fn slot_expired(&self, slot: u32, now: SimTime) -> bool {
        self.slots[slot as usize]
            .expire_at
            .is_some_and(|at| at <= now)
    }

    fn alloc_slot(&mut self) -> u32 {
        if let Some(slot) = self.free.pop() {
            return slot;
        }
        self.slots.push(Slot::vacant());
        (self.slots.len() - 1) as u32
    }

    /// Unlinks `slot` from the LRU list and relinks it at MRU.
    fn touch(&mut self, slot: u32) {
        if self.head == slot {
            return;
        }
        self.unlink(slot);
        self.link_front(slot);
    }

    fn link_front(&mut self, slot: u32) {
        let old_head = self.head;
        {
            let s = &mut self.slots[slot as usize];
            s.prev = NIL;
            s.next = old_head;
        }
        if old_head != NIL {
            self.slots[old_head as usize].prev = slot;
        }
        self.head = slot;
        if self.tail == NIL {
            self.tail = slot;
        }
    }

    fn unlink(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.prev, s.next)
        };
        if prev != NIL {
            self.slots[prev as usize].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next as usize].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn remove_slot(&mut self, slot: u32, cause: RemovalCause) {
        self.unlink(slot);
        let key;
        {
            let s = &mut self.slots[slot as usize];
            debug_assert!(s.live, "removing a vacant slot");
            key = std::mem::take(&mut s.key);
            self.bytes -= key.len() + s.value.len();
            s.value = DemiBuffer::empty();
            s.expire_at = None;
            s.generation = s.generation.wrapping_add(1);
            s.live = false;
            s.prev = NIL;
            s.next = NIL;
        }
        self.index.remove(&key);
        self.free.push(slot);
        match cause {
            RemovalCause::Evicted => self.stats.evictions += 1,
            RemovalCause::Expired => self.stats.expirations += 1,
            RemovalCause::Deleted => {}
        }
        // Whatever the cause, a device replica must stop serving the key:
        // host-side eviction and expiry are invisible to a NIC that only
        // observes the byte stream, so the doorbell is explicit.
        if let Some(m) = &mut self.mirror {
            m.invalidate(&key);
        }
    }
}

#[derive(Clone, Copy)]
enum RemovalCause {
    Evicted,
    Expired,
    Deleted,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ns: u64) -> SimTime {
        SimTime::from_nanos(ns)
    }

    fn buf(data: &[u8]) -> DemiBuffer {
        DemiBuffer::from(data.to_vec())
    }

    #[test]
    fn get_set_del_roundtrip() {
        let mut s = KvStore::new(1024, SimTime::ZERO);
        assert!(s.get(b"k", t(1)).is_none());
        s.set(b"k", buf(b"v1"), None, t(1)).unwrap();
        assert_eq!(s.get(b"k", t(2)).unwrap().as_slice(), b"v1");
        s.set(b"k", buf(b"v2"), None, t(3)).unwrap();
        assert_eq!(s.get(b"k", t(4)).unwrap().as_slice(), b"v2");
        assert!(s.del(b"k", t(5)));
        assert!(!s.del(b"k", t(5)));
        assert!(s.get(b"k", t(6)).is_none());
        assert_eq!(s.bytes(), 0);
    }

    #[test]
    fn lru_evicts_coldest_under_byte_pressure() {
        // Each entry: 2-byte key + 8-byte value = 10 bytes. Budget: 3.
        let mut s = KvStore::new(30, SimTime::ZERO);
        s.set(b"k1", buf(b"aaaaaaaa"), None, t(1)).unwrap();
        s.set(b"k2", buf(b"bbbbbbbb"), None, t(2)).unwrap();
        s.set(b"k3", buf(b"cccccccc"), None, t(3)).unwrap();
        // Touch k1 so k2 is coldest.
        assert!(s.get(b"k1", t(4)).is_some());
        s.set(b"k4", buf(b"dddddddd"), None, t(5)).unwrap();
        assert_eq!(s.stats().evictions, 1);
        assert!(s.get(b"k2", t(6)).is_none(), "LRU victim was k2");
        assert!(s.get(b"k1", t(6)).is_some());
        assert!(s.get(b"k3", t(6)).is_some());
        assert!(s.get(b"k4", t(6)).is_some());
        assert!(s.bytes() <= 30);
    }

    #[test]
    fn oversized_entry_is_refused() {
        let mut s = KvStore::new(8, SimTime::ZERO);
        assert_eq!(
            s.set(b"key", buf(b"too-big-for-the-budget"), None, t(1)),
            Err(SetError::TooLarge)
        );
        assert!(s.is_empty());
    }

    #[test]
    fn wheel_and_lazy_expiry_agree() {
        let mut s = KvStore::new(1024, SimTime::ZERO);
        s.set(b"a", buf(b"1"), Some(t(100)), t(0)).unwrap();
        s.set(b"b", buf(b"2"), Some(t(200)), t(0)).unwrap();
        s.set(b"c", buf(b"3"), None, t(0)).unwrap();
        assert_eq!(s.next_deadline(), Some(t(100)));
        // Lazy: reading "a" after its deadline removes it without a tick.
        assert!(s.get(b"a", t(150)).is_none());
        assert_eq!(s.stats().expirations, 1);
        // Wheel: advancing past 200 removes "b".
        s.advance(t(250));
        assert_eq!(s.stats().expirations, 2);
        assert!(s.get(b"b", t(260)).is_none());
        assert!(s.get(b"c", t(260)).is_some());
        assert_eq!(s.next_deadline(), None);
    }

    #[test]
    fn overwrite_reschedules_ttl() {
        let mut s = KvStore::new(1024, SimTime::ZERO);
        s.set(b"k", buf(b"old"), Some(t(100)), t(0)).unwrap();
        // Overwrite with a later deadline: the old wheel entry is stale.
        s.set(b"k", buf(b"new"), Some(t(500)), t(50)).unwrap();
        s.advance(t(200));
        assert_eq!(s.get(b"k", t(210)).unwrap().as_slice(), b"new");
        assert_eq!(s.stats().expirations, 0, "stale entry must not fire");
        s.advance(t(600));
        assert!(s.get(b"k", t(610)).is_none());
        assert_eq!(s.stats().expirations, 1);
    }

    #[test]
    fn expire_and_ttl_queries() {
        let mut s = KvStore::new(1024, SimTime::ZERO);
        s.set(b"k", buf(b"v"), None, t(0)).unwrap();
        assert_eq!(s.ttl(b"k", t(10)), Ttl::NoExpiry);
        assert!(s.expire(b"k", t(1_000), t(10)));
        assert_eq!(s.ttl(b"k", t(400)), Ttl::RemainingNs(600));
        assert_eq!(s.ttl(b"k", t(1_000)), Ttl::Missing, "deadline inclusive");
        assert!(!s.expire(b"missing", t(99), t(10)));
    }

    struct CountingMirror(std::rc::Rc<std::cell::RefCell<(u64, u64)>>);
    impl CacheMirror for CountingMirror {
        fn insert(&mut self, _key: &[u8], _value: &[u8]) -> bool {
            self.0.borrow_mut().0 += 1;
            true
        }
        fn invalidate(&mut self, _key: &[u8]) {
            self.0.borrow_mut().1 += 1;
        }
    }

    #[test]
    fn every_removal_path_notifies_the_mirror() {
        let counts = std::rc::Rc::new(std::cell::RefCell::new((0u64, 0u64)));
        let mut s = KvStore::new(24, SimTime::ZERO);
        s.set_mirror(Box::new(CountingMirror(counts.clone())));
        s.set(b"a", buf(b"0123456789"), None, t(0)).unwrap(); // invalidate 1
        assert!(s.publish_to_mirror(b"a"));
        assert_eq!(counts.borrow().0, 1, "insert-after-miss published");
        s.set(b"b", buf(b"0123456789"), Some(t(50)), t(1)).unwrap(); // invalidate 2
        s.set(b"c", buf(b"0123456789"), None, t(2)).unwrap(); // invalidate 3 + evicts a (4)
        assert_eq!(s.stats().evictions, 1);
        s.advance(t(60)); // b expires: invalidate 5
        assert!(s.del(b"c", t(61))); // invalidate 6
        assert_eq!(counts.borrow().1, 6, "set, set, set+evict, expire, del");
    }

    #[test]
    fn slab_reuses_freed_slots() {
        let mut s = KvStore::new(1024, SimTime::ZERO);
        for round in 0..4 {
            for i in 0..8u8 {
                s.set(&[b'k', i], buf(b"v"), None, t(round * 10)).unwrap();
            }
            for i in 0..8u8 {
                assert!(s.del(&[b'k', i], t(round * 10 + 5)));
            }
        }
        assert!(
            s.slots.len() <= 8,
            "churn must reuse slots, not grow the slab"
        );
    }
}
