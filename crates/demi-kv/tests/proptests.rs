//! Differential property tests for demi-kv.
//!
//! Two oracles:
//!
//! 1. The incremental zero-copy RESP parser vs [`resp::reference_parse`]
//!    (a naive contiguous-buffer parser) over randomly re-chunked
//!    streams — including pathological 1-byte splits — with the
//!    additional claim that a stream delivered in ONE chunk reassembles
//!    nothing (every argument is a zero-copy sub-view).
//! 2. The live [`KvStore`] vs a HashMap + explicit-LRU + deadline-map
//!    reference model over random GET/SET/DEL/PEXPIRE/PTTL/advance
//!    schedules on synthetic time — checking values, return codes,
//!    resident bytes, eviction/expiration counts, and the timer wheel's
//!    next-deadline ordering at every step.

use std::collections::HashMap;

use demi_kv::resp::{self, RespParser};
use demi_kv::store::{KvStore, SetError, Ttl};
use demi_memory::DemiBuffer;
use proptest::prelude::*;
use sim_fabric::SimTime;

/// Deterministic per-case RNG (the proptest stub hands us seeds; shapes
/// are derived locally so one u64 drives arbitrarily structured input).
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

// ---------------------------------------------------------------------
// RESP parser vs reference.
// ---------------------------------------------------------------------

/// A random valid command stream: 1..=10 commands, 1..=4 args each,
/// binary-safe argument bytes (CR/LF included on purpose).
fn random_stream(rng: &mut Rng) -> Vec<u8> {
    let mut out = Vec::new();
    let commands = 1 + rng.below(10) as usize;
    for _ in 0..commands {
        let nargs = 1 + rng.below(4) as usize;
        let args: Vec<Vec<u8>> = (0..nargs)
            .map(|_| {
                let len = rng.below(41) as usize;
                (0..len).map(|_| rng.next() as u8).collect()
            })
            .collect();
        let borrowed: Vec<&[u8]> = args.iter().map(|a| a.as_slice()).collect();
        resp::encode_command(&mut out, &borrowed);
    }
    out
}

fn feed_in_chunks(parser: &mut RespParser, stream: &[u8], chunks: &[usize]) {
    let mut pos = 0;
    for &len in chunks {
        parser.push_chunk(DemiBuffer::from(stream[pos..pos + len].to_vec()));
        pos += len;
    }
    assert_eq!(pos, stream.len(), "chunking must cover the stream");
}

fn drain_parser(parser: &mut RespParser) -> Vec<Vec<Vec<u8>>> {
    let mut out = Vec::new();
    while let Some(cmd) = parser.next_command().expect("valid stream") {
        out.push(cmd.args.iter().map(|a| a.as_slice().to_vec()).collect());
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn resp_parser_matches_reference_under_rechunking(seed in any::<u64>()) {
        let mut rng = Rng(seed);
        let mut stream = random_stream(&mut rng);
        // Half the cases cut mid-stream: the tail must stay buffered.
        if rng.below(2) == 0 && !stream.is_empty() {
            stream.truncate(1 + rng.below(stream.len() as u64) as usize);
        }
        let (expected, consumed) =
            resp::reference_parse(&stream).expect("generator emits valid streams");

        // Three delivery shapes per case: 1-byte splits, random chunks,
        // one whole chunk.
        for mode in 0..3 {
            let chunks: Vec<usize> = match mode {
                0 => vec![1; stream.len()],
                1 => {
                    let mut v = Vec::new();
                    let mut left = stream.len();
                    while left > 0 {
                        let take = (1 + rng.below(16) as usize).min(left);
                        v.push(take);
                        left -= take;
                    }
                    v
                }
                _ => vec![stream.len()],
            };
            let mut parser = RespParser::new();
            feed_in_chunks(&mut parser, &stream, &chunks);
            let got = drain_parser(&mut parser);
            prop_assert_eq!(&got, &expected, "chunking must not change parse results");
            // The parser may have consumed completed header lines of a
            // still-partial trailing command, so its buffer holds at most
            // the reference's unconsumed tail — and exactly none of it
            // when the stream ends on a command boundary.
            let tail = stream.len() - consumed;
            prop_assert!(
                parser.buffered_bytes() <= tail,
                "buffered bytes exceed the unconsumed tail"
            );
            if tail == 0 {
                prop_assert_eq!(parser.buffered_bytes(), 0);
                prop_assert!(!parser.mid_command(), "clean boundary leaves no state");
            } else {
                prop_assert!(
                    parser.mid_command() || parser.buffered_bytes() > 0,
                    "a truncated command must leave visible parser state"
                );
            }
            if mode == 2 {
                // Whole-stream delivery is the happy path: every argument
                // must be a zero-copy sub-view of the chunk, none gathered.
                prop_assert_eq!(parser.stats().reassembled_args, 0);
                // Empty arguments materialize as the shared empty buffer
                // (neither viewed nor copied), and a truncated trailing
                // command may hold extracted-but-unemitted args — so the
                // exact count only holds on a clean command boundary.
                if tail == 0 {
                    let total_args: u64 = expected
                        .iter()
                        .flat_map(|c| c.iter())
                        .filter(|a| !a.is_empty())
                        .count() as u64;
                    prop_assert_eq!(parser.stats().zero_copy_args, total_args);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// KvStore vs reference model.
// ---------------------------------------------------------------------

struct ModelEntry {
    value: Vec<u8>,
    deadline: Option<u64>,
}

/// The executable spec: hash map + explicit MRU-front LRU vector +
/// per-entry absolute deadlines, mirroring the store's documented
/// semantics (lazy expiry on access, wheel expiry on advance, eviction
/// strictly from the LRU tail, SET revives expired entries in place).
struct Model {
    map: HashMap<Vec<u8>, ModelEntry>,
    lru: Vec<Vec<u8>>,
    bytes: usize,
    budget: usize,
    expirations: u64,
    evictions: u64,
}

impl Model {
    fn new(budget: usize) -> Self {
        Model {
            map: HashMap::new(),
            lru: Vec::new(),
            bytes: 0,
            budget,
            expirations: 0,
            evictions: 0,
        }
    }

    fn remove(&mut self, key: &[u8]) {
        let e = self.map.remove(key).expect("caller checked presence");
        self.bytes -= key.len() + e.value.len();
        self.lru.retain(|k| k != key);
    }

    /// Lazy-expiry step shared by GET/DEL/PEXPIRE/PTTL: a present entry
    /// whose deadline passed is removed and counted; returns true if so.
    fn expire_if_due(&mut self, key: &[u8], now: u64) -> bool {
        let due = self
            .map
            .get(key)
            .is_some_and(|e| e.deadline.is_some_and(|d| d <= now));
        if due {
            self.remove(key);
            self.expirations += 1;
        }
        due
    }

    fn touch(&mut self, key: &[u8]) {
        self.lru.retain(|k| k != key);
        self.lru.insert(0, key.to_vec());
    }

    fn get(&mut self, key: &[u8], now: u64) -> Option<Vec<u8>> {
        if self.expire_if_due(key, now) || !self.map.contains_key(key) {
            return None;
        }
        self.touch(key);
        Some(self.map[key].value.clone())
    }

    fn set(&mut self, key: &[u8], value: Vec<u8>, deadline: Option<u64>) -> Result<(), ()> {
        let entry_bytes = key.len() + value.len();
        if entry_bytes > self.budget {
            return Err(());
        }
        // SET overwrites even an expired-but-unremoved entry (revival —
        // no expiration counted), exactly like the store.
        if let Some(e) = self.map.get_mut(key) {
            self.bytes -= key.len() + e.value.len();
            self.bytes += entry_bytes;
            e.value = value;
            e.deadline = deadline;
        } else {
            self.bytes += entry_bytes;
            let _ = self
                .map
                .insert(key.to_vec(), ModelEntry { value, deadline });
        }
        self.touch(key);
        while self.bytes > self.budget {
            let victim = self
                .lru
                .last()
                .expect("over budget implies entries")
                .clone();
            self.remove(&victim);
            self.evictions += 1;
        }
        Ok(())
    }

    fn del(&mut self, key: &[u8], now: u64) -> bool {
        if self.expire_if_due(key, now) || !self.map.contains_key(key) {
            return false;
        }
        self.remove(key);
        true
    }

    fn expire(&mut self, key: &[u8], at: u64, now: u64) -> bool {
        if self.expire_if_due(key, now) || !self.map.contains_key(key) {
            return false;
        }
        self.map.get_mut(key).expect("present").deadline = Some(at);
        true
    }

    fn ttl(&mut self, key: &[u8], now: u64) -> Ttl {
        if self.expire_if_due(key, now) || !self.map.contains_key(key) {
            return Ttl::Missing;
        }
        match self.map[key].deadline {
            None => Ttl::NoExpiry,
            Some(at) => Ttl::RemainingNs(at - now),
        }
    }

    fn advance(&mut self, now: u64) {
        let due: Vec<Vec<u8>> = self
            .map
            .iter()
            .filter(|(_, e)| e.deadline.is_some_and(|d| d <= now))
            .map(|(k, _)| k.clone())
            .collect();
        for key in due {
            self.remove(&key);
            self.expirations += 1;
        }
    }

    /// Earliest pending deadline over present entries — what the store's
    /// timer wheel must report (stale wheel entries filtered out).
    fn next_deadline(&self) -> Option<u64> {
        self.map.values().filter_map(|e| e.deadline).min()
    }

    fn dump(&self, now: u64) -> Vec<(Vec<u8>, Vec<u8>)> {
        let mut out: Vec<(Vec<u8>, Vec<u8>)> = self
            .map
            .iter()
            .filter(|(_, e)| e.deadline.is_none_or(|d| d > now))
            .map(|(k, e)| (k.clone(), e.value.clone()))
            .collect();
        out.sort();
        out
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_matches_reference_model(seed in any::<u64>(), budget in 60usize..200) {
        let mut rng = Rng(seed);
        let mut store = KvStore::new(budget, SimTime::ZERO);
        let mut model = Model::new(budget);
        let mut now: u64 = 1;

        for _ in 0..300 {
            now += rng.below(40);
            let t = SimTime::from_nanos(now);
            let key = vec![b'k', rng.below(12) as u8];
            match rng.below(12) {
                // SET: values small enough to fit, occasionally huge
                // enough to be refused, with a TTL a third of the time.
                0..=4 => {
                    let len = if rng.below(12) == 0 {
                        budget as u64 + rng.below(40)
                    } else {
                        rng.below(32)
                    } as usize;
                    let value: Vec<u8> = (0..len).map(|_| rng.next() as u8).collect();
                    let deadline = match rng.below(3) {
                        0 => Some(now + rng.below(120)),
                        _ => None,
                    };
                    let got = store.set(
                        &key,
                        DemiBuffer::from(value.clone()),
                        deadline.map(SimTime::from_nanos),
                        t,
                    );
                    let want = model.set(&key, value, deadline);
                    prop_assert_eq!(got.is_ok(), want.is_ok(), "SET admission must agree");
                    if got.is_err() {
                        prop_assert_eq!(got.unwrap_err(), SetError::TooLarge);
                    }
                }
                5..=7 => {
                    let got = store.get(&key, t).map(|b| b.as_slice().to_vec());
                    prop_assert_eq!(got, model.get(&key, now), "GET must agree");
                }
                8 => {
                    prop_assert_eq!(store.del(&key, t), model.del(&key, now), "DEL must agree");
                }
                9 => {
                    let at = now + rng.below(120);
                    prop_assert_eq!(
                        store.expire(&key, SimTime::from_nanos(at), t),
                        model.expire(&key, at, now),
                        "PEXPIRE must agree"
                    );
                }
                10 => {
                    prop_assert_eq!(store.ttl(&key, t), model.ttl(&key, now), "PTTL must agree");
                }
                // Advance the wheel — fires every due deadline in order.
                _ => {
                    store.advance(t);
                    model.advance(now);
                }
            }

            prop_assert_eq!(store.len(), model.map.len(), "live entry count");
            prop_assert_eq!(store.bytes(), model.bytes, "resident bytes");
            prop_assert!(store.bytes() <= budget, "budget is a hard ceiling");
            prop_assert_eq!(store.stats().expirations, model.expirations, "expirations");
            prop_assert_eq!(store.stats().evictions, model.evictions, "evictions");
            prop_assert_eq!(
                store.next_deadline().map(|d| d.as_nanos()),
                model.next_deadline(),
                "wheel next-deadline must match the model's minimum"
            );
        }

        prop_assert_eq!(store.dump(SimTime::from_nanos(now)), model.dump(now));
    }
}
