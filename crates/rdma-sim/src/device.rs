//! The device engine: queue pairs, reliability, and the connection manager.

use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

use sim_fabric::{Endpoint, Fabric, MacAddress, SimTime};

use crate::verbs::{
    Completion, CqId, MrAccess, MrId, PdId, QpError, QpId, QpState, WcOpcode, WcStatus,
};
use crate::wire::WireMsg;

/// Device tunables.
#[derive(Debug, Clone, Copy)]
pub struct RdmaConfig {
    /// Transport retransmission timeout (fixed; real HCAs use a static,
    /// firmware-configured timeout rather than RTT estimation).
    pub rto: SimTime,
    /// Delay before retrying after an RNR NACK.
    pub rnr_delay: SimTime,
    /// Transport retries before a fatal `RetryExceeded`.
    pub transport_retries: u32,
    /// RNR retries before `RnrRetryExceeded`.
    pub rnr_retries: u32,
    /// Connection-request retries.
    pub connect_retries: u32,
    /// Delay between connection-request retries.
    pub connect_retry_delay: SimTime,
    /// Maximum outstanding work requests per QP.
    pub max_outstanding: usize,
    /// Largest message accepted by `post_send`/`post_write`/`post_read`.
    pub max_msg_size: usize,
}

impl Default for RdmaConfig {
    fn default() -> Self {
        RdmaConfig {
            rto: SimTime::from_micros(100),
            rnr_delay: SimTime::from_micros(50),
            transport_retries: 7,
            rnr_retries: 7,
            connect_retries: 5,
            connect_retry_delay: SimTime::from_millis(1),
            max_outstanding: 64,
            max_msg_size: 1 << 20,
        }
    }
}

/// Device-wide counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RdmaDeviceStats {
    /// Memory regions registered.
    pub mr_registrations: u64,
    /// Bytes currently pinned by registrations.
    pub pinned_bytes: u64,
    /// SENDs transmitted (first transmissions).
    pub sends: u64,
    /// Retransmissions (go-back-N resends).
    pub retransmits: u64,
    /// RNR NACKs sent (no receive buffer posted).
    pub rnr_nacks_sent: u64,
    /// Two-sided receptions that raised a responder CPU event.
    pub responder_cpu_events: u64,
    /// One-sided WRITEs executed entirely on the device.
    pub onesided_writes_handled: u64,
    /// One-sided READs executed entirely on the device.
    pub onesided_reads_handled: u64,
}

/// The virtual-time cost of registering `bytes` of memory (pin + translate).
///
/// Model: a fixed syscall/doorbell cost plus a per-page table-update cost,
/// roughly shaped like published `ibv_reg_mr` measurements.
pub fn registration_cost(bytes: usize) -> SimTime {
    let pages = bytes.div_ceil(4096) as u64;
    SimTime::from_nanos(3_000 + pages * 300)
}

struct Mr {
    pd: PdId,
    rkey: u32,
    access: MrAccess,
    storage: Vec<u8>,
}

struct RecvWr {
    wr_id: u64,
    mr: MrId,
    offset: usize,
    len: usize,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum OutKind {
    Send,
    Write,
    Read { local_mr: MrId, local_off: usize },
}

struct OutWr {
    wr_id: u64,
    psn: u32,
    kind: OutKind,
    body: WireMsg,
    byte_len: usize,
    rnr_left: u32,
    /// Reads stay queued after a cumulative ACK until their data arrives.
    transport_acked: bool,
}

struct Qp {
    pd: PdId,
    send_cq: CqId,
    recv_cq: CqId,
    state: QpState,
    peer: Option<(MacAddress, u32)>,
    // Requester.
    next_psn: u32,
    outstanding: VecDeque<OutWr>,
    rto_deadline: Option<SimTime>,
    retries_left: u32,
    // Responder.
    expected_psn: u32,
    recv_queue: VecDeque<RecvWr>,
    // CM (active side).
    connect_target: Option<(MacAddress, u16)>,
    connect_deadline: Option<SimTime>,
    connect_retries_left: u32,
}

struct Listener {
    pending: VecDeque<(MacAddress, u32)>,
}

struct Inner {
    endpoint: Endpoint,
    config: RdmaConfig,
    pds: Vec<PdId>,
    mrs: HashMap<MrId, Mr>,
    rkey_index: HashMap<u32, MrId>,
    cqs: HashMap<CqId, VecDeque<Completion>>,
    qps: HashMap<QpId, Qp>,
    listeners: HashMap<u16, Listener>,
    next_id: u32,
    stats: RdmaDeviceStats,
}

/// One simulated RDMA NIC attached to the fabric.
///
/// All verbs calls go through this handle (which models the device context
/// plus its driver). Single-threaded: clone handles freely within one
/// simulation.
#[derive(Clone)]
pub struct RdmaDevice {
    inner: Rc<RefCell<Inner>>,
}

impl RdmaDevice {
    /// Attaches a device to the fabric at `mac`.
    pub fn new(fabric: &Fabric, mac: MacAddress) -> Self {
        Self::with_config(fabric, mac, RdmaConfig::default())
    }

    /// Attaches a device with explicit tunables.
    pub fn with_config(fabric: &Fabric, mac: MacAddress, config: RdmaConfig) -> Self {
        RdmaDevice {
            inner: Rc::new(RefCell::new(Inner {
                endpoint: fabric.register_endpoint(mac),
                config,
                pds: Vec::new(),
                mrs: HashMap::new(),
                rkey_index: HashMap::new(),
                cqs: HashMap::new(),
                qps: HashMap::new(),
                listeners: HashMap::new(),
                next_id: 1,
                stats: RdmaDeviceStats::default(),
            })),
        }
    }

    /// The device's hardware address.
    pub fn mac(&self) -> MacAddress {
        self.inner.borrow().endpoint.mac()
    }

    /// Device counters.
    pub fn stats(&self) -> RdmaDeviceStats {
        self.inner.borrow().stats
    }

    // ------------------------------------------------------------------
    // Resource creation.
    // ------------------------------------------------------------------

    /// Allocates a protection domain.
    pub fn alloc_pd(&self) -> PdId {
        let mut inner = self.inner.borrow_mut();
        let id = PdId(inner.alloc_id());
        inner.pds.push(id);
        id
    }

    /// Creates a completion queue.
    pub fn create_cq(&self) -> CqId {
        let mut inner = self.inner.borrow_mut();
        let id = CqId(inner.alloc_id());
        inner.cqs.insert(id, VecDeque::new());
        id
    }

    /// Registers `len` bytes of memory in `pd` with the given remote-access
    /// rights. Returns the region handle; its rkey is
    /// [`RdmaDevice::rkey`].
    ///
    /// This is the explicit, application-visible registration the paper
    /// wants to hide inside the libOS; its simulated cost is
    /// [`registration_cost`].
    pub fn register_mr(&self, pd: PdId, len: usize, access: MrAccess) -> MrId {
        let mut inner = self.inner.borrow_mut();
        let id = MrId(inner.alloc_id());
        let rkey = id.0.wrapping_mul(0x9E37_79B9) | 1;
        inner.mrs.insert(
            id,
            Mr {
                pd,
                rkey,
                access,
                storage: vec![0u8; len],
            },
        );
        inner.rkey_index.insert(rkey, id);
        inner.stats.mr_registrations += 1;
        inner.stats.pinned_bytes += len as u64;
        id
    }

    /// Deregisters a region; its rkey stops resolving.
    pub fn deregister_mr(&self, mr: MrId) {
        let mut inner = self.inner.borrow_mut();
        if let Some(m) = inner.mrs.remove(&mr) {
            inner.rkey_index.remove(&m.rkey);
            inner.stats.pinned_bytes -= m.storage.len() as u64;
        }
    }

    /// The remote key for a registered region.
    pub fn rkey(&self, mr: MrId) -> Result<u32, QpError> {
        Ok(self
            .inner
            .borrow()
            .mrs
            .get(&mr)
            .ok_or(QpError::BadHandle)?
            .rkey)
    }

    /// Writes application data into a registered region.
    pub fn mr_write(&self, mr: MrId, offset: usize, data: &[u8]) -> Result<(), QpError> {
        let mut inner = self.inner.borrow_mut();
        let m = inner.mrs.get_mut(&mr).ok_or(QpError::BadHandle)?;
        let end = offset.checked_add(data.len()).ok_or(QpError::OutOfBounds)?;
        if end > m.storage.len() {
            return Err(QpError::OutOfBounds);
        }
        m.storage[offset..end].copy_from_slice(data);
        Ok(())
    }

    /// Reads application data out of a registered region.
    pub fn mr_read(&self, mr: MrId, offset: usize, len: usize) -> Result<Vec<u8>, QpError> {
        let inner = self.inner.borrow();
        let m = inner.mrs.get(&mr).ok_or(QpError::BadHandle)?;
        let end = offset.checked_add(len).ok_or(QpError::OutOfBounds)?;
        if end > m.storage.len() {
            return Err(QpError::OutOfBounds);
        }
        Ok(m.storage[offset..end].to_vec())
    }

    /// Creates a reliable-connected queue pair.
    pub fn create_qp(&self, pd: PdId, send_cq: CqId, recv_cq: CqId) -> QpId {
        let mut inner = self.inner.borrow_mut();
        let (retries, cretries) = (inner.config.transport_retries, inner.config.connect_retries);
        let id = QpId(inner.alloc_id());
        inner.qps.insert(
            id,
            Qp {
                pd,
                send_cq,
                recv_cq,
                state: QpState::Init,
                peer: None,
                next_psn: 0,
                outstanding: VecDeque::new(),
                rto_deadline: None,
                retries_left: retries,
                expected_psn: 0,
                recv_queue: VecDeque::new(),
                connect_target: None,
                connect_deadline: None,
                connect_retries_left: cretries,
            },
        );
        id
    }

    /// Current QP state.
    pub fn qp_state(&self, qp: QpId) -> Result<QpState, QpError> {
        Ok(self
            .inner
            .borrow()
            .qps
            .get(&qp)
            .ok_or(QpError::BadHandle)?
            .state)
    }

    // ------------------------------------------------------------------
    // Connection management (the rdmacm stand-in).
    // ------------------------------------------------------------------

    /// Starts listening for connection requests on `port`.
    pub fn listen(&self, port: u16) -> Result<(), QpError> {
        let mut inner = self.inner.borrow_mut();
        if inner.listeners.contains_key(&port) {
            return Err(QpError::AddrInUse(port));
        }
        inner.listeners.insert(
            port,
            Listener {
                pending: VecDeque::new(),
            },
        );
        Ok(())
    }

    /// Accepts a pending connection request on `port`, binding it to `qp`
    /// (which must be in `Init`). Returns `false` when none is pending.
    pub fn accept(&self, port: u16, qp: QpId, now: SimTime) -> Result<bool, QpError> {
        let _ = now;
        let mut inner = self.inner.borrow_mut();
        let listener = inner.listeners.get_mut(&port).ok_or(QpError::BadHandle)?;
        let Some((peer_mac, peer_qp)) = listener.pending.pop_front() else {
            return Ok(false);
        };
        let qp_num = qp.0;
        {
            let q = inner.qps.get_mut(&qp).ok_or(QpError::BadHandle)?;
            if q.state != QpState::Init {
                return Err(QpError::InvalidState);
            }
            q.peer = Some((peer_mac, peer_qp));
            q.state = QpState::Rts;
        }
        inner.send_msg(
            peer_mac,
            &WireMsg::ConnResp {
                dst_qp: peer_qp,
                src_qp: qp_num,
                accepted: true,
            },
        );
        Ok(true)
    }

    /// Starts connecting `qp` to the listener at `remote`/`port`.
    pub fn connect(
        &self,
        qp: QpId,
        remote: MacAddress,
        port: u16,
        now: SimTime,
    ) -> Result<(), QpError> {
        let mut inner = self.inner.borrow_mut();
        let delay = inner.config.connect_retry_delay;
        let qp_num = qp.0;
        {
            let q = inner.qps.get_mut(&qp).ok_or(QpError::BadHandle)?;
            if q.state != QpState::Init {
                return Err(QpError::InvalidState);
            }
            q.state = QpState::Connecting;
            q.connect_target = Some((remote, port));
            q.connect_deadline = Some(now.saturating_add(delay));
        }
        inner.send_msg(
            remote,
            &WireMsg::ConnReq {
                src_qp: qp_num,
                port,
            },
        );
        Ok(())
    }

    // ------------------------------------------------------------------
    // Work requests.
    // ------------------------------------------------------------------

    /// Posts a receive buffer (`mr[offset..offset+len]`).
    pub fn post_recv(
        &self,
        qp: QpId,
        wr_id: u64,
        mr: MrId,
        offset: usize,
        len: usize,
    ) -> Result<(), QpError> {
        let mut inner = self.inner.borrow_mut();
        inner.validate_local(qp, mr, offset, len)?;
        let q = inner.qps.get_mut(&qp).expect("validated");
        q.recv_queue.push_back(RecvWr {
            wr_id,
            mr,
            offset,
            len,
        });
        Ok(())
    }

    /// Posts a SEND of `mr[offset..offset+len]`.
    pub fn post_send(
        &self,
        qp: QpId,
        wr_id: u64,
        mr: MrId,
        offset: usize,
        len: usize,
        now: SimTime,
    ) -> Result<(), QpError> {
        let mut inner = self.inner.borrow_mut();
        inner.validate_rts(qp)?;
        inner.validate_local(qp, mr, offset, len)?;
        inner.check_queue_space(qp, len)?;
        let payload = inner.mrs[&mr].storage[offset..offset + len].to_vec();
        inner.stats.sends += 1;
        inner.enqueue_wr(qp, wr_id, OutKind::Send, len, now, |dst_qp, psn| {
            WireMsg::Send {
                dst_qp,
                psn,
                payload,
            }
        });
        Ok(())
    }

    /// Posts an RDMA WRITE of `mr[offset..offset+len]` to the remote region
    /// `(rkey, remote_offset)`.
    #[allow(clippy::too_many_arguments)]
    pub fn post_write(
        &self,
        qp: QpId,
        wr_id: u64,
        mr: MrId,
        offset: usize,
        len: usize,
        rkey: u32,
        remote_offset: u64,
        now: SimTime,
    ) -> Result<(), QpError> {
        let mut inner = self.inner.borrow_mut();
        inner.validate_rts(qp)?;
        inner.validate_local(qp, mr, offset, len)?;
        inner.check_queue_space(qp, len)?;
        let payload = inner.mrs[&mr].storage[offset..offset + len].to_vec();
        inner.enqueue_wr(qp, wr_id, OutKind::Write, len, now, |dst_qp, psn| {
            WireMsg::Write {
                dst_qp,
                psn,
                rkey,
                offset: remote_offset,
                payload,
            }
        });
        Ok(())
    }

    /// Posts an RDMA READ of `len` bytes from the remote region
    /// `(rkey, remote_offset)` into `mr[offset..]`.
    #[allow(clippy::too_many_arguments)]
    pub fn post_read(
        &self,
        qp: QpId,
        wr_id: u64,
        mr: MrId,
        offset: usize,
        len: usize,
        rkey: u32,
        remote_offset: u64,
        now: SimTime,
    ) -> Result<(), QpError> {
        let mut inner = self.inner.borrow_mut();
        inner.validate_rts(qp)?;
        inner.validate_local(qp, mr, offset, len)?;
        inner.check_queue_space(qp, len)?;
        inner.enqueue_wr(
            qp,
            wr_id,
            OutKind::Read {
                local_mr: mr,
                local_off: offset,
            },
            len,
            now,
            |dst_qp, psn| WireMsg::ReadReq {
                dst_qp,
                psn,
                rkey,
                offset: remote_offset,
                len: len as u32,
            },
        );
        Ok(())
    }

    /// Pops up to `max` completions from a CQ.
    pub fn poll_cq(&self, cq: CqId, max: usize) -> Vec<Completion> {
        let mut inner = self.inner.borrow_mut();
        let Some(queue) = inner.cqs.get_mut(&cq) else {
            return Vec::new();
        };
        let take = queue.len().min(max);
        queue.drain(..take).collect()
    }

    // ------------------------------------------------------------------
    // The device "firmware" loop.
    // ------------------------------------------------------------------

    /// Processes delivered fabric frames and expired timers. Returns how
    /// many frames were consumed, so pollers can report device progress.
    pub fn poll(&self, now: SimTime) -> usize {
        let mut inner = self.inner.borrow_mut();
        let mut frames = 0;
        while let Some(frame) = inner.endpoint.receive() {
            frames += 1;
            if let Some(msg) = WireMsg::parse(&frame.payload) {
                inner.handle_msg(frame.src, msg, now);
            }
        }
        inner.tick(now);
        frames
    }

    /// Earliest device timer deadline (for runtime clock advancement).
    pub fn next_deadline(&self) -> Option<SimTime> {
        let inner = self.inner.borrow();
        inner
            .qps
            .values()
            .flat_map(|q| [q.rto_deadline, q.connect_deadline])
            .flatten()
            .min()
    }
}

impl Inner {
    fn alloc_id(&mut self) -> u32 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    fn send_msg(&mut self, dst: MacAddress, msg: &WireMsg) {
        self.endpoint.transmit(dst, msg.serialize());
    }

    fn validate_rts(&self, qp: QpId) -> Result<(), QpError> {
        match self.qps.get(&qp) {
            None => Err(QpError::BadHandle),
            Some(q) if q.state != QpState::Rts => Err(QpError::InvalidState),
            Some(_) => Ok(()),
        }
    }

    fn validate_local(&self, qp: QpId, mr: MrId, offset: usize, len: usize) -> Result<(), QpError> {
        let q = self.qps.get(&qp).ok_or(QpError::BadHandle)?;
        let m = self.mrs.get(&mr).ok_or(QpError::BadHandle)?;
        if m.pd != q.pd {
            return Err(QpError::PdMismatch);
        }
        let end = offset.checked_add(len).ok_or(QpError::OutOfBounds)?;
        if end > m.storage.len() {
            return Err(QpError::OutOfBounds);
        }
        Ok(())
    }

    fn check_queue_space(&self, qp: QpId, len: usize) -> Result<(), QpError> {
        if len > self.config.max_msg_size {
            return Err(QpError::OutOfBounds);
        }
        let q = self.qps.get(&qp).expect("validated by caller");
        if q.outstanding.len() >= self.config.max_outstanding {
            return Err(QpError::QueueFull);
        }
        Ok(())
    }

    fn enqueue_wr(
        &mut self,
        qp: QpId,
        wr_id: u64,
        kind: OutKind,
        byte_len: usize,
        now: SimTime,
        build: impl FnOnce(u32, u32) -> WireMsg,
    ) {
        let rnr_retries = self.config.rnr_retries;
        let rto = self.config.rto;
        let q = self.qps.get_mut(&qp).expect("validated by caller");
        let (peer_mac, peer_qp) = q.peer.expect("RTS implies a peer");
        let psn = q.next_psn;
        q.next_psn = q.next_psn.wrapping_add(1);
        let body = build(peer_qp, psn);
        q.outstanding.push_back(OutWr {
            wr_id,
            psn,
            kind,
            body: body.clone(),
            byte_len,
            rnr_left: rnr_retries,
            transport_acked: false,
        });
        if q.rto_deadline.is_none() {
            q.rto_deadline = Some(now.saturating_add(rto));
        }
        self.send_msg(peer_mac, &body);
    }

    fn complete(&mut self, cq: CqId, completion: Completion) {
        if let Some(queue) = self.cqs.get_mut(&cq) {
            queue.push_back(completion);
        }
    }

    fn handle_msg(&mut self, src: MacAddress, msg: WireMsg, now: SimTime) {
        match msg {
            WireMsg::ConnReq { src_qp, port } => {
                // A retried request for a connection we already accepted
                // means our ConnResp was lost: resend it.
                if let Some((qp_id, _)) = self
                    .qps
                    .iter()
                    .find(|(_, q)| q.state == QpState::Rts && q.peer == Some((src, src_qp)))
                {
                    let resp = WireMsg::ConnResp {
                        dst_qp: src_qp,
                        src_qp: qp_id.0,
                        accepted: true,
                    };
                    self.send_msg(src, &resp);
                    return;
                }
                match self.listeners.get_mut(&port) {
                    Some(listener) => {
                        // De-duplicate retried requests.
                        if !listener
                            .pending
                            .iter()
                            .any(|&(m, q)| m == src && q == src_qp)
                        {
                            listener.pending.push_back((src, src_qp));
                        }
                    }
                    None => {
                        self.send_msg(
                            src,
                            &WireMsg::ConnResp {
                                dst_qp: src_qp,
                                src_qp: 0,
                                accepted: false,
                            },
                        );
                    }
                }
            }
            WireMsg::ConnResp {
                dst_qp,
                src_qp,
                accepted,
            } => {
                let qp_id = QpId(dst_qp);
                if let Some(q) = self.qps.get_mut(&qp_id) {
                    if q.state == QpState::Connecting {
                        if accepted {
                            q.peer = Some((src, src_qp));
                            q.state = QpState::Rts;
                        } else {
                            q.state = QpState::Error;
                        }
                        q.connect_deadline = None;
                        q.connect_target = None;
                    }
                }
            }
            WireMsg::Send {
                dst_qp,
                psn,
                payload,
            } => {
                self.responder_sequenced(src, QpId(dst_qp), psn, now, |inner, qp_id| {
                    inner.execute_recv(qp_id, payload)
                });
            }
            WireMsg::Write {
                dst_qp,
                psn,
                rkey,
                offset,
                payload,
            } => {
                self.responder_sequenced(src, QpId(dst_qp), psn, now, |inner, _qp_id| {
                    inner.execute_remote_write(rkey, offset, &payload)
                });
            }
            WireMsg::ReadReq {
                dst_qp,
                psn,
                rkey,
                offset,
                len,
            } => {
                self.responder_read(src, QpId(dst_qp), psn, rkey, offset, len as usize);
            }
            WireMsg::Ack { dst_qp, psn } => {
                self.requester_ack(QpId(dst_qp), psn, None, now);
            }
            WireMsg::ReadResp {
                dst_qp,
                psn,
                payload,
            } => {
                self.requester_ack(QpId(dst_qp), psn.wrapping_add(1), Some((psn, payload)), now);
            }
            WireMsg::Rnr { dst_qp, psn } => {
                self.requester_rnr(QpId(dst_qp), psn, now);
            }
            WireMsg::FatalNack { dst_qp, psn: _ } => {
                self.requester_fatal(QpId(dst_qp));
            }
        }
    }

    /// Go-back-N responder sequencing for SEND and WRITE. `execute` returns
    /// the outcome: `Ok(())` advances, `Err(fatal)` breaks the connection,
    /// and `Err(rnr)` NACKs without advancing.
    fn responder_sequenced(
        &mut self,
        src: MacAddress,
        qp_id: QpId,
        psn: u32,
        _now: SimTime,
        execute: impl FnOnce(&mut Self, QpId) -> ResponderOutcome,
    ) {
        let Some(q) = self.qps.get(&qp_id) else {
            return;
        };
        if q.state != QpState::Rts {
            return;
        }
        let expected = q.expected_psn;
        let peer_qp = q.peer.map(|(_, n)| n).unwrap_or(0);
        if psn_lt(psn, expected) {
            // Duplicate: re-ACK cumulative state.
            self.send_msg(
                src,
                &WireMsg::Ack {
                    dst_qp: peer_qp,
                    psn: expected,
                },
            );
            return;
        }
        if psn != expected {
            return; // Out of order under go-back-N: drop, sender resends.
        }
        match execute(self, qp_id) {
            ResponderOutcome::Ok => {
                let q = self.qps.get_mut(&qp_id).expect("checked above");
                q.expected_psn = q.expected_psn.wrapping_add(1);
                let next = q.expected_psn;
                self.send_msg(
                    src,
                    &WireMsg::Ack {
                        dst_qp: peer_qp,
                        psn: next,
                    },
                );
            }
            ResponderOutcome::Rnr => {
                self.stats.rnr_nacks_sent += 1;
                self.send_msg(
                    src,
                    &WireMsg::Rnr {
                        dst_qp: peer_qp,
                        psn,
                    },
                );
            }
            ResponderOutcome::Fatal => {
                if let Some(q) = self.qps.get_mut(&qp_id) {
                    q.state = QpState::Error;
                }
                self.send_msg(
                    src,
                    &WireMsg::FatalNack {
                        dst_qp: peer_qp,
                        psn,
                    },
                );
            }
        }
    }

    fn execute_recv(&mut self, qp_id: QpId, payload: Vec<u8>) -> ResponderOutcome {
        let q = self.qps.get_mut(&qp_id).expect("caller checked");
        let Some(wr) = q.recv_queue.pop_front() else {
            return ResponderOutcome::Rnr;
        };
        let recv_cq = q.recv_cq;
        if payload.len() > wr.len {
            // "Receivers must allocate ... buffers of the right size."
            self.complete(
                recv_cq,
                Completion {
                    wr_id: wr.wr_id,
                    qp: qp_id,
                    opcode: WcOpcode::Recv,
                    status: WcStatus::LocalLengthError,
                    byte_len: 0,
                },
            );
            return ResponderOutcome::Fatal;
        }
        let m = self.mrs.get_mut(&wr.mr).expect("validated at post_recv");
        m.storage[wr.offset..wr.offset + payload.len()].copy_from_slice(&payload);
        self.stats.responder_cpu_events += 1;
        self.complete(
            recv_cq,
            Completion {
                wr_id: wr.wr_id,
                qp: qp_id,
                opcode: WcOpcode::Recv,
                status: WcStatus::Success,
                byte_len: payload.len(),
            },
        );
        ResponderOutcome::Ok
    }

    fn execute_remote_write(&mut self, rkey: u32, offset: u64, payload: &[u8]) -> ResponderOutcome {
        let Some(&mr_id) = self.rkey_index.get(&rkey) else {
            return ResponderOutcome::Fatal;
        };
        let m = self.mrs.get_mut(&mr_id).expect("indexed");
        let off = offset as usize;
        let Some(end) = off.checked_add(payload.len()) else {
            return ResponderOutcome::Fatal;
        };
        if !m.access.remote_write || end > m.storage.len() {
            return ResponderOutcome::Fatal;
        }
        m.storage[off..end].copy_from_slice(payload);
        // One-sided: the responder CPU is never involved.
        self.stats.onesided_writes_handled += 1;
        ResponderOutcome::Ok
    }

    fn responder_read(
        &mut self,
        src: MacAddress,
        qp_id: QpId,
        psn: u32,
        rkey: u32,
        offset: u64,
        len: usize,
    ) {
        let Some(q) = self.qps.get(&qp_id) else {
            return;
        };
        if q.state != QpState::Rts {
            return;
        }
        let expected = q.expected_psn;
        let peer_qp = q.peer.map(|(_, n)| n).unwrap_or(0);
        // Reads are idempotent: duplicates re-execute; only psn > expected
        // (a gap under go-back-N) is dropped.
        if psn_lt(expected, psn) {
            return;
        }
        let outcome = (|| -> Option<Vec<u8>> {
            let &mr_id = self.rkey_index.get(&rkey)?;
            let m = self.mrs.get(&mr_id)?;
            let off = offset as usize;
            let end = off.checked_add(len)?;
            if !m.access.remote_read || end > m.storage.len() {
                return None;
            }
            Some(m.storage[off..end].to_vec())
        })();
        match outcome {
            Some(payload) => {
                if psn == expected {
                    let q = self.qps.get_mut(&qp_id).expect("checked above");
                    q.expected_psn = q.expected_psn.wrapping_add(1);
                }
                self.stats.onesided_reads_handled += 1;
                self.send_msg(
                    src,
                    &WireMsg::ReadResp {
                        dst_qp: peer_qp,
                        psn,
                        payload,
                    },
                );
            }
            None => {
                if let Some(q) = self.qps.get_mut(&qp_id) {
                    q.state = QpState::Error;
                }
                self.send_msg(
                    src,
                    &WireMsg::FatalNack {
                        dst_qp: peer_qp,
                        psn,
                    },
                );
            }
        }
    }

    /// Cumulative ACK processing: completes everything below `ack_psn`.
    /// `read_data` carries a read response `(psn, data)` when present.
    fn requester_ack(
        &mut self,
        qp_id: QpId,
        ack_psn: u32,
        read_data: Option<(u32, Vec<u8>)>,
        now: SimTime,
    ) {
        let Some(q) = self.qps.get_mut(&qp_id) else {
            return;
        };
        let send_cq = q.send_cq;
        let rto = self.config.rto;
        let retries = self.config.transport_retries;

        // Place read data first (the read may not be at the queue head).
        let mut read_completion = None;
        if let Some((read_psn, data)) = read_data {
            if let Some(pos) = q.outstanding.iter().position(|w| w.psn == read_psn) {
                let wr = q.outstanding.remove(pos).expect("position found");
                if let OutKind::Read {
                    local_mr,
                    local_off,
                } = wr.kind
                {
                    read_completion = Some((local_mr, local_off, data, wr.wr_id, wr.byte_len));
                }
            }
        }

        // Complete transport-acked, non-read work in order.
        let mut completions = Vec::new();
        while let Some(front) = q.outstanding.front_mut() {
            if !psn_lt(front.psn, ack_psn) {
                break;
            }
            match front.kind {
                OutKind::Read { .. } => {
                    // Acked at transport level but data not yet here; keep
                    // it queued (the RTO will re-request if the response
                    // was lost — reads are idempotent).
                    front.transport_acked = true;
                    break;
                }
                OutKind::Send | OutKind::Write => {
                    let wr = q.outstanding.pop_front().expect("front exists");
                    completions.push(Completion {
                        wr_id: wr.wr_id,
                        qp: qp_id,
                        opcode: if wr.kind == OutKind::Send {
                            WcOpcode::Send
                        } else {
                            WcOpcode::Write
                        },
                        status: WcStatus::Success,
                        byte_len: wr.byte_len,
                    });
                }
            }
        }
        q.retries_left = retries;
        q.rto_deadline = if q.outstanding.is_empty() {
            None
        } else {
            Some(now.saturating_add(rto))
        };

        for c in completions {
            self.complete(send_cq, c);
        }
        if let Some((local_mr, local_off, data, wr_id, _)) = read_completion {
            let byte_len = data.len();
            if let Some(m) = self.mrs.get_mut(&local_mr) {
                let end = (local_off + byte_len).min(m.storage.len());
                m.storage[local_off..end].copy_from_slice(&data[..end - local_off]);
            }
            self.complete(
                send_cq,
                Completion {
                    wr_id,
                    qp: qp_id,
                    opcode: WcOpcode::Read,
                    status: WcStatus::Success,
                    byte_len,
                },
            );
        }
    }

    fn requester_rnr(&mut self, qp_id: QpId, psn: u32, now: SimTime) {
        let Some(q) = self.qps.get_mut(&qp_id) else {
            return;
        };
        let rnr_delay = self.config.rnr_delay;
        let send_cq = q.send_cq;
        let Some(front) = q.outstanding.front_mut() else {
            return;
        };
        if front.psn != psn {
            return; // Stale NACK.
        }
        if front.rnr_left == 0 {
            let wr = q.outstanding.pop_front().expect("front exists");
            q.state = QpState::Error;
            q.rto_deadline = None;
            let flushed: Vec<Completion> = q
                .outstanding
                .drain(..)
                .map(|w| Completion {
                    wr_id: w.wr_id,
                    qp: qp_id,
                    opcode: kind_opcode(w.kind),
                    status: WcStatus::WrFlushed,
                    byte_len: 0,
                })
                .collect();
            self.complete(
                send_cq,
                Completion {
                    wr_id: wr.wr_id,
                    qp: qp_id,
                    opcode: kind_opcode(wr.kind),
                    status: WcStatus::RnrRetryExceeded,
                    byte_len: 0,
                },
            );
            for c in flushed {
                self.complete(send_cq, c);
            }
            return;
        }
        front.rnr_left -= 1;
        // Defer the resend to the RNR timer.
        q.rto_deadline = Some(now.saturating_add(rnr_delay));
    }

    fn requester_fatal(&mut self, qp_id: QpId) {
        let Some(q) = self.qps.get_mut(&qp_id) else {
            return;
        };
        q.state = QpState::Error;
        q.rto_deadline = None;
        let send_cq = q.send_cq;
        let mut completions = Vec::new();
        let mut first = true;
        for w in q.outstanding.drain(..) {
            completions.push(Completion {
                wr_id: w.wr_id,
                qp: qp_id,
                opcode: kind_opcode(w.kind),
                status: if first {
                    WcStatus::RemoteAccessError
                } else {
                    WcStatus::WrFlushed
                },
                byte_len: 0,
            });
            first = false;
        }
        for c in completions {
            self.complete(send_cq, c);
        }
    }

    fn tick(&mut self, now: SimTime) {
        let qp_ids: Vec<QpId> = self.qps.keys().copied().collect();
        for qp_id in qp_ids {
            self.tick_qp(qp_id, now);
        }
    }

    fn tick_qp(&mut self, qp_id: QpId, now: SimTime) {
        let config = self.config;
        // Connection retry.
        let mut resend_conn: Option<(MacAddress, WireMsg)> = None;
        {
            let q = self.qps.get_mut(&qp_id).expect("id collected");
            if q.state == QpState::Connecting {
                if let Some(deadline) = q.connect_deadline {
                    if now >= deadline {
                        if q.connect_retries_left == 0 {
                            q.state = QpState::Error;
                            q.connect_deadline = None;
                        } else {
                            q.connect_retries_left -= 1;
                            let (mac, port) = q.connect_target.expect("connecting");
                            q.connect_deadline =
                                Some(now.saturating_add(config.connect_retry_delay));
                            resend_conn = Some((
                                mac,
                                WireMsg::ConnReq {
                                    src_qp: qp_id.0,
                                    port,
                                },
                            ));
                        }
                    }
                }
            }
        }
        if let Some((mac, msg)) = resend_conn {
            self.send_msg(mac, &msg);
        }

        // Transport RTO: go-back-N resend of everything outstanding.
        let mut resend: Vec<(MacAddress, WireMsg)> = Vec::new();
        let mut fail = false;
        {
            let q = self.qps.get_mut(&qp_id).expect("id collected");
            if q.state == QpState::Rts {
                if let Some(deadline) = q.rto_deadline {
                    if now >= deadline && !q.outstanding.is_empty() {
                        if q.retries_left == 0 {
                            fail = true;
                        } else {
                            q.retries_left -= 1;
                            let peer_mac = q.peer.expect("RTS implies peer").0;
                            for w in &q.outstanding {
                                if !w.transport_acked || matches!(w.kind, OutKind::Read { .. }) {
                                    resend.push((peer_mac, w.body.clone()));
                                }
                            }
                            q.rto_deadline = Some(now.saturating_add(config.rto));
                        }
                    }
                }
            }
        }
        for (mac, msg) in resend {
            self.stats.retransmits += 1;
            self.send_msg(mac, &msg);
        }
        if fail {
            let q = self.qps.get_mut(&qp_id).expect("id collected");
            q.state = QpState::Error;
            q.rto_deadline = None;
            let send_cq = q.send_cq;
            let mut completions = Vec::new();
            let mut first = true;
            for w in q.outstanding.drain(..) {
                completions.push(Completion {
                    wr_id: w.wr_id,
                    qp: qp_id,
                    opcode: kind_opcode(w.kind),
                    status: if first {
                        WcStatus::RetryExceeded
                    } else {
                        WcStatus::WrFlushed
                    },
                    byte_len: 0,
                });
                first = false;
            }
            for c in completions {
                self.complete(send_cq, c);
            }
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum ResponderOutcome {
    Ok,
    Rnr,
    Fatal,
}

fn kind_opcode(kind: OutKind) -> WcOpcode {
    match kind {
        OutKind::Send => WcOpcode::Send,
        OutKind::Write => WcOpcode::Write,
        OutKind::Read { .. } => WcOpcode::Read,
    }
}

/// `a < b` in wrapping PSN space.
fn psn_lt(a: u32, b: u32) -> bool {
    (b.wrapping_sub(a) as i32) > 0
}

#[cfg(test)]
mod tests;
