//! Device-level tests: two RDMA NICs on a fabric.

use sim_fabric::{Fabric, LinkConfig, MacAddress, SimTime};

use super::*;

fn world() -> (Fabric, RdmaDevice, RdmaDevice) {
    let fabric = Fabric::new(99);
    let a = RdmaDevice::new(&fabric, MacAddress::from_last_octet(1));
    let b = RdmaDevice::new(&fabric, MacAddress::from_last_octet(2));
    (fabric, a, b)
}

/// Runs devices and fabric until `until` holds or the world wedges.
fn settle(fabric: &Fabric, devs: &[&RdmaDevice], mut until: impl FnMut() -> bool) {
    for _ in 0..100_000 {
        for d in devs {
            d.poll(fabric.clock().now());
        }
        if until() {
            return;
        }
        if fabric.advance_to_next_event() {
            continue;
        }
        match devs.iter().filter_map(|d| d.next_deadline()).min() {
            Some(t) => fabric.clock().advance_to(t),
            None => return,
        }
    }
    panic!("rdma world did not settle");
}

/// Sets up a connected QP pair (client on `a`, server on `b`).
fn connected(
    fabric: &Fabric,
    a: &RdmaDevice,
    b: &RdmaDevice,
) -> (PdId, CqId, QpId, PdId, CqId, QpId) {
    let apd = a.alloc_pd();
    let acq = a.create_cq();
    let aqp = a.create_qp(apd, acq, acq);
    let bpd = b.alloc_pd();
    let bcq = b.create_cq();
    let bqp = b.create_qp(bpd, bcq, bcq);
    b.listen(18515).unwrap();
    a.connect(aqp, b.mac(), 18515, fabric.clock().now())
        .unwrap();
    settle(fabric, &[a, b], || {
        let _ = b.accept(18515, bqp, fabric.clock().now());
        a.qp_state(aqp) == Ok(QpState::Rts) && b.qp_state(bqp) == Ok(QpState::Rts)
    });
    (apd, acq, aqp, bpd, bcq, bqp)
}

#[test]
fn connection_management_establishes_qps() {
    let (fabric, a, b) = world();
    let _ = connected(&fabric, &a, &b);
}

#[test]
fn connect_to_dead_port_is_refused() {
    let (fabric, a, b) = world();
    let pd = a.alloc_pd();
    let cq = a.create_cq();
    let qp = a.create_qp(pd, cq, cq);
    a.connect(qp, b.mac(), 4444, fabric.clock().now()).unwrap();
    settle(&fabric, &[&a, &b], || a.qp_state(qp) == Ok(QpState::Error));
}

#[test]
fn two_sided_send_recv_round_trip() {
    let (fabric, a, b) = world();
    let (apd, acq, aqp, bpd, bcq, bqp) = connected(&fabric, &a, &b);

    let send_mr = a.register_mr(apd, 4096, MrAccess::LOCAL_ONLY);
    let recv_mr = b.register_mr(bpd, 4096, MrAccess::LOCAL_ONLY);
    a.mr_write(send_mr, 0, b"rdma message").unwrap();
    b.post_recv(bqp, 77, recv_mr, 0, 4096).unwrap();
    a.post_send(aqp, 11, send_mr, 0, 12, fabric.clock().now())
        .unwrap();

    let mut recv_done = false;
    let mut send_done = false;
    settle(&fabric, &[&a, &b], || {
        for c in b.poll_cq(bcq, 8) {
            assert_eq!(c.wr_id, 77);
            assert_eq!(c.opcode, WcOpcode::Recv);
            assert!(c.status.is_ok());
            assert_eq!(c.byte_len, 12);
            recv_done = true;
        }
        for c in a.poll_cq(acq, 8) {
            assert_eq!(c.wr_id, 11);
            assert_eq!(c.opcode, WcOpcode::Send);
            assert!(c.status.is_ok());
            send_done = true;
        }
        recv_done && send_done
    });
    assert_eq!(b.mr_read(recv_mr, 0, 12).unwrap(), b"rdma message");
    assert_eq!(b.stats().responder_cpu_events, 1);
}

#[test]
fn send_without_posted_recv_hits_rnr_then_fails() {
    let (fabric, a, b) = world();
    let (apd, acq, aqp, _bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    let send_mr = a.register_mr(apd, 64, MrAccess::LOCAL_ONLY);
    a.post_send(aqp, 1, send_mr, 0, 64, fabric.clock().now())
        .unwrap();

    // The receiver never posts a buffer: "allocating too few buffers
    // causes communication to fail."
    let mut failed = None;
    settle(&fabric, &[&a, &b], || {
        for c in a.poll_cq(acq, 8) {
            failed = Some(c.status);
        }
        failed.is_some()
    });
    assert_eq!(failed, Some(WcStatus::RnrRetryExceeded));
    assert!(b.stats().rnr_nacks_sent > 1);
    assert_eq!(a.qp_state(aqp).unwrap(), QpState::Error);
}

#[test]
fn too_small_recv_buffer_is_a_fatal_length_error() {
    let (fabric, a, b) = world();
    let (apd, acq, aqp, bpd, bcq, bqp) = connected(&fabric, &a, &b);
    let send_mr = a.register_mr(apd, 4096, MrAccess::LOCAL_ONLY);
    let recv_mr = b.register_mr(bpd, 4096, MrAccess::LOCAL_ONLY);
    // "Buffers of the right size": post 16 bytes for a 100-byte message.
    b.post_recv(bqp, 5, recv_mr, 0, 16).unwrap();
    a.post_send(aqp, 6, send_mr, 0, 100, fabric.clock().now())
        .unwrap();

    let mut recv_status = None;
    let mut send_status = None;
    settle(&fabric, &[&a, &b], || {
        for c in b.poll_cq(bcq, 8) {
            recv_status = Some(c.status);
        }
        for c in a.poll_cq(acq, 8) {
            send_status = Some(c.status);
        }
        recv_status.is_some() && send_status.is_some()
    });
    assert_eq!(recv_status, Some(WcStatus::LocalLengthError));
    assert_eq!(send_status, Some(WcStatus::RemoteAccessError));
    assert_eq!(b.qp_state(bqp).unwrap(), QpState::Error);
}

#[test]
fn one_sided_write_needs_no_responder_cpu() {
    let (fabric, a, b) = world();
    let (apd, acq, aqp, bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    let local = a.register_mr(apd, 4096, MrAccess::LOCAL_ONLY);
    let remote = b.register_mr(bpd, 4096, MrAccess::REMOTE_RW);
    let rkey = b.rkey(remote).unwrap();
    a.mr_write(local, 0, b"one-sided payload").unwrap();
    a.post_write(aqp, 9, local, 0, 17, rkey, 100, fabric.clock().now())
        .unwrap();

    let mut done = false;
    settle(&fabric, &[&a, &b], || {
        for c in a.poll_cq(acq, 8) {
            assert_eq!(c.opcode, WcOpcode::Write);
            assert!(c.status.is_ok());
            done = true;
        }
        done
    });
    assert_eq!(b.mr_read(remote, 100, 17).unwrap(), b"one-sided payload");
    assert_eq!(
        b.stats().responder_cpu_events,
        0,
        "WRITE must not involve the responder CPU"
    );
    assert_eq!(b.stats().onesided_writes_handled, 1);
}

#[test]
fn one_sided_read_fetches_remote_data() {
    let (fabric, a, b) = world();
    let (apd, acq, aqp, bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    let local = a.register_mr(apd, 4096, MrAccess::LOCAL_ONLY);
    let remote = b.register_mr(bpd, 4096, MrAccess::REMOTE_RW);
    b.mr_write(remote, 200, b"server-side value").unwrap();
    let rkey = b.rkey(remote).unwrap();
    a.post_read(aqp, 3, local, 50, 17, rkey, 200, fabric.clock().now())
        .unwrap();

    let mut done = false;
    settle(&fabric, &[&a, &b], || {
        for c in a.poll_cq(acq, 8) {
            assert_eq!(c.opcode, WcOpcode::Read);
            assert!(c.status.is_ok());
            assert_eq!(c.byte_len, 17);
            done = true;
        }
        done
    });
    assert_eq!(a.mr_read(local, 50, 17).unwrap(), b"server-side value");
    assert_eq!(b.stats().onesided_reads_handled, 1);
    assert_eq!(b.stats().responder_cpu_events, 0);
}

#[test]
fn remote_access_violations_break_the_connection() {
    let (fabric, a, b) = world();
    let (apd, acq, aqp, bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    let local = a.register_mr(apd, 64, MrAccess::LOCAL_ONLY);
    // Remote region does NOT grant remote access.
    let remote = b.register_mr(bpd, 64, MrAccess::LOCAL_ONLY);
    let rkey = b.rkey(remote).unwrap();
    a.post_write(aqp, 1, local, 0, 8, rkey, 0, fabric.clock().now())
        .unwrap();
    let mut status = None;
    settle(&fabric, &[&a, &b], || {
        for c in a.poll_cq(acq, 8) {
            status = Some(c.status);
        }
        status.is_some()
    });
    assert_eq!(status, Some(WcStatus::RemoteAccessError));
    assert_eq!(a.qp_state(aqp).unwrap(), QpState::Error);
}

#[test]
fn bad_rkey_is_a_remote_access_error() {
    let (fabric, a, b) = world();
    let (apd, acq, aqp, _bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    let local = a.register_mr(apd, 64, MrAccess::LOCAL_ONLY);
    a.post_write(aqp, 1, local, 0, 8, 0xDEAD_BEEF, 0, fabric.clock().now())
        .unwrap();
    let mut status = None;
    settle(&fabric, &[&a, &b], || {
        for c in a.poll_cq(acq, 8) {
            status = Some(c.status);
        }
        status.is_some()
    });
    assert_eq!(status, Some(WcStatus::RemoteAccessError));
}

#[test]
fn reliability_survives_a_lossy_fabric() {
    let (fabric, a, b) = world();
    fabric.set_default_link(LinkConfig {
        latency: SimTime::from_micros(2),
        bandwidth_bps: 0,
        loss_probability: 0.2,
    });
    let (apd, acq, aqp, bpd, bcq, bqp) = connected(&fabric, &a, &b);
    let send_mr = a.register_mr(apd, 65536, MrAccess::LOCAL_ONLY);
    let recv_mr = b.register_mr(bpd, 65536, MrAccess::LOCAL_ONLY);

    // 32 sequenced messages through 20% loss.
    let mut expected = Vec::new();
    for i in 0..32u8 {
        let msg = vec![i; 128];
        a.mr_write(send_mr, i as usize * 128, &msg).unwrap();
        expected.push(msg);
        b.post_recv(bqp, 1000 + i as u64, recv_mr, i as usize * 128, 128)
            .unwrap();
    }
    let now = fabric.clock().now();
    for i in 0..32u8 {
        a.post_send(aqp, i as u64, send_mr, i as usize * 128, 128, now)
            .unwrap();
    }
    let mut recv_count = 0;
    let mut send_count = 0;
    settle(&fabric, &[&a, &b], || {
        for c in b.poll_cq(bcq, 64) {
            assert!(c.status.is_ok(), "recv failed: {c:?}");
            recv_count += 1;
        }
        for c in a.poll_cq(acq, 64) {
            assert!(c.status.is_ok(), "send failed: {c:?}");
            send_count += 1;
        }
        recv_count == 32 && send_count == 32
    });
    for (i, msg) in expected.iter().enumerate() {
        assert_eq!(&b.mr_read(recv_mr, i * 128, 128).unwrap(), msg);
    }
    assert!(a.stats().retransmits > 0, "loss must force retransmission");
}

#[test]
fn one_sided_read_survives_loss() {
    let (fabric, a, b) = world();
    fabric.set_default_link(LinkConfig {
        latency: SimTime::from_micros(2),
        bandwidth_bps: 0,
        loss_probability: 0.3,
    });
    let (apd, acq, aqp, bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    let local = a.register_mr(apd, 1024, MrAccess::LOCAL_ONLY);
    let remote = b.register_mr(bpd, 1024, MrAccess::REMOTE_RW);
    b.mr_write(remote, 0, b"durable").unwrap();
    let rkey = b.rkey(remote).unwrap();
    a.post_read(aqp, 1, local, 0, 7, rkey, 0, fabric.clock().now())
        .unwrap();
    let mut ok = false;
    settle(&fabric, &[&a, &b], || {
        for c in a.poll_cq(acq, 8) {
            assert!(c.status.is_ok(), "{c:?}");
            ok = true;
        }
        ok
    });
    assert_eq!(a.mr_read(local, 0, 7).unwrap(), b"durable");
}

#[test]
fn partition_exhausts_retries_and_errors_out() {
    let (fabric, a, b) = world();
    let (apd, acq, aqp, _bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    let send_mr = a.register_mr(apd, 64, MrAccess::LOCAL_ONLY);
    fabric.partition(a.mac(), b.mac());
    a.post_send(aqp, 1, send_mr, 0, 8, fabric.clock().now())
        .unwrap();
    let mut status = None;
    settle(&fabric, &[&a, &b], || {
        for c in a.poll_cq(acq, 8) {
            status = Some(c.status);
        }
        status.is_some()
    });
    assert_eq!(status, Some(WcStatus::RetryExceeded));
    assert_eq!(a.qp_state(aqp).unwrap(), QpState::Error);
}

#[test]
fn pd_mismatch_and_bounds_are_enforced_at_post_time() {
    let (fabric, a, b) = world();
    let (_apd, _acq, aqp, _bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    // MR in a *different* PD than the QP.
    let other_pd = a.alloc_pd();
    let foreign_mr = a.register_mr(other_pd, 64, MrAccess::LOCAL_ONLY);
    assert_eq!(
        a.post_send(aqp, 1, foreign_mr, 0, 8, SimTime::ZERO),
        Err(QpError::PdMismatch)
    );
    // Out-of-bounds range in a valid MR.
    let apd2 = a.inner.borrow().qps[&aqp].pd;
    let mr = a.register_mr(apd2, 64, MrAccess::LOCAL_ONLY);
    assert_eq!(
        a.post_send(aqp, 1, mr, 60, 8, SimTime::ZERO),
        Err(QpError::OutOfBounds)
    );
}

#[test]
fn posting_before_connection_is_invalid() {
    let (_fabric, a, _b) = world();
    let pd = a.alloc_pd();
    let cq = a.create_cq();
    let qp = a.create_qp(pd, cq, cq);
    let mr = a.register_mr(pd, 64, MrAccess::LOCAL_ONLY);
    assert_eq!(
        a.post_send(qp, 1, mr, 0, 8, SimTime::ZERO),
        Err(QpError::InvalidState)
    );
}

#[test]
fn work_queue_depth_is_bounded() {
    let (fabric, a, b) = world();
    let (apd, _acq, aqp, _bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    let mr = a.register_mr(apd, 64, MrAccess::LOCAL_ONLY);
    let now = fabric.clock().now();
    let mut hit_full = false;
    for i in 0..200 {
        match a.post_send(aqp, i, mr, 0, 8, now) {
            Ok(()) => {}
            Err(QpError::QueueFull) => {
                hit_full = true;
                break;
            }
            Err(e) => panic!("unexpected error {e:?}"),
        }
    }
    assert!(hit_full, "queue must be bounded");
}

#[test]
fn deregistered_mr_stops_serving_remote_ops() {
    let (fabric, a, b) = world();
    let (apd, acq, aqp, bpd, _bcq, _bqp) = connected(&fabric, &a, &b);
    let local = a.register_mr(apd, 64, MrAccess::LOCAL_ONLY);
    let remote = b.register_mr(bpd, 64, MrAccess::REMOTE_RW);
    let rkey = b.rkey(remote).unwrap();
    b.deregister_mr(remote);
    a.post_write(aqp, 1, local, 0, 8, rkey, 0, fabric.clock().now())
        .unwrap();
    let mut status = None;
    settle(&fabric, &[&a, &b], || {
        for c in a.poll_cq(acq, 8) {
            status = Some(c.status);
        }
        status.is_some()
    });
    assert_eq!(status, Some(WcStatus::RemoteAccessError));
    assert_eq!(b.stats().pinned_bytes, 0);
}

#[test]
fn registration_cost_scales_with_pages() {
    let one_page = registration_cost(4096);
    let many_pages = registration_cost(4096 * 64);
    assert!(many_pages.as_nanos() > one_page.as_nanos());
    assert!(one_page.as_nanos() >= 3_000, "fixed cost floor");
}
