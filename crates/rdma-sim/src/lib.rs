//! A simulated RDMA NIC (the Table-1 "+OS features" column).
//!
//! RDMA devices occupy the paper's middle ground: they provide *some* OS
//! functionality in hardware — reliable delivery over connected queue pairs,
//! and the verbs interface — but still push buffer management, flow
//! control, and explicit memory registration onto software (paper §2):
//!
//! > "to send and receive data, applications must still supply OS buffer
//! > management and flow control. Applications have to register memory
//! > before using it for I/O, and receivers must allocate enough buffers of
//! > the right size for senders."
//!
//! The simulation enforces exactly those sharp edges, because experiment E5
//! measures them:
//!
//! * **Registration is mandatory.** All data movement names a
//!   [`MrId`]/rkey; unregistered or out-of-bounds access completes with an
//!   error. Registration has an explicit (virtual-time) cost model.
//! * **Receivers must pre-post buffers.** A SEND arriving with an empty
//!   receive queue triggers RNR back-pressure; after the retry budget the
//!   sender's work request fails ("too few buffers causes communication to
//!   fail"). A too-small posted buffer fails the connection with a length
//!   error ("buffers of the right size").
//! * **Reliable connected transport.** Go-back-N with cumulative ACKs and
//!   retransmission timers runs *inside the device*, so the libOS gets
//!   reliability for free — the feature the paper credits to RDMA hardware.
//! * **One-sided READ/WRITE** execute entirely on the responder's device:
//!   no responder-CPU event is generated, and the stats distinguish
//!   one-sided from two-sided responder work.

pub mod device;
pub mod verbs;
pub mod wire;

pub use device::{RdmaDevice, RdmaDeviceStats};
pub use verbs::{
    Completion, CqId, MrAccess, MrId, PdId, QpError, QpId, QpState, WcOpcode, WcStatus,
};

use sim_fabric::{DeviceCaps, DeviceCategory};

/// Capabilities of the simulated RDMA NIC.
pub fn capabilities() -> DeviceCaps {
    DeviceCaps {
        name: "rdma-sim",
        category: DeviceCategory::PlusOsFeatures,
        kernel_bypass: true,
        multiplexing: true,
        address_translation: true,
        reliable_transport: true,
        network_stack: false, // Verbs is not sockets; no TCP/IP interop.
        buffer_management: false,
        flow_control: false,
        explicit_registration_required: true,
        program_offload: false,
        block_storage: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rdma_provides_reliability_but_not_buffers() {
        let caps = capabilities();
        assert!(caps.reliable_transport);
        assert!(!caps.buffer_management);
        assert!(!caps.flow_control);
        assert!(caps.explicit_registration_required);
        assert_eq!(caps.category, DeviceCategory::PlusOsFeatures);
    }
}
