//! On-wire message format between simulated RDMA devices.
//!
//! Hand-rolled serialization (type tag + big-endian fields) keeps the crate
//! dependency-free and the format auditable in fabric traces.

/// A transport-level message exchanged between devices.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireMsg {
    /// Connection request: `src_qp` wants to reach the listener on `port`.
    ConnReq {
        /// Requester's queue-pair number.
        src_qp: u32,
        /// Listener port.
        port: u16,
    },
    /// Connection reply.
    ConnResp {
        /// The requester QP this responds to.
        dst_qp: u32,
        /// Responder's QP number (meaningful when accepted).
        src_qp: u32,
        /// Whether the connection was accepted.
        accepted: bool,
    },
    /// Two-sided SEND carrying payload, sequenced by `psn`.
    Send {
        /// Destination QP number.
        dst_qp: u32,
        /// Packet sequence number.
        psn: u32,
        /// Message payload.
        payload: Vec<u8>,
    },
    /// Cumulative acknowledgment: everything below `psn` received.
    Ack {
        /// Destination QP number.
        dst_qp: u32,
        /// Next expected PSN.
        psn: u32,
    },
    /// Receiver-not-ready NACK for the given PSN.
    Rnr {
        /// Destination QP number.
        dst_qp: u32,
        /// PSN that could not be placed.
        psn: u32,
    },
    /// Fatal NACK (length/access violation); the connection breaks.
    FatalNack {
        /// Destination QP number.
        dst_qp: u32,
        /// PSN that faulted.
        psn: u32,
    },
    /// One-sided write, sequenced like a SEND.
    Write {
        /// Destination QP number.
        dst_qp: u32,
        /// Packet sequence number.
        psn: u32,
        /// Remote key of the target region.
        rkey: u32,
        /// Byte offset within the target region.
        offset: u64,
        /// Data to place.
        payload: Vec<u8>,
    },
    /// One-sided read request, sequenced like a SEND.
    ReadReq {
        /// Destination QP number.
        dst_qp: u32,
        /// Packet sequence number.
        psn: u32,
        /// Remote key of the source region.
        rkey: u32,
        /// Byte offset within the source region.
        offset: u64,
        /// Bytes requested.
        len: u32,
    },
    /// Read response carrying the data (doubles as the ACK for `psn`).
    ReadResp {
        /// Destination QP number.
        dst_qp: u32,
        /// PSN of the read request this answers.
        psn: u32,
        /// The data read.
        payload: Vec<u8>,
    },
}

impl WireMsg {
    /// Serializes to bytes for the fabric.
    pub fn serialize(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            WireMsg::ConnReq { src_qp, port } => {
                out.push(1);
                out.extend_from_slice(&src_qp.to_be_bytes());
                out.extend_from_slice(&port.to_be_bytes());
            }
            WireMsg::ConnResp {
                dst_qp,
                src_qp,
                accepted,
            } => {
                out.push(2);
                out.extend_from_slice(&dst_qp.to_be_bytes());
                out.extend_from_slice(&src_qp.to_be_bytes());
                out.push(*accepted as u8);
            }
            WireMsg::Send {
                dst_qp,
                psn,
                payload,
            } => {
                out.push(3);
                out.extend_from_slice(&dst_qp.to_be_bytes());
                out.extend_from_slice(&psn.to_be_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                out.extend_from_slice(payload);
            }
            WireMsg::Ack { dst_qp, psn } => {
                out.push(4);
                out.extend_from_slice(&dst_qp.to_be_bytes());
                out.extend_from_slice(&psn.to_be_bytes());
            }
            WireMsg::Rnr { dst_qp, psn } => {
                out.push(5);
                out.extend_from_slice(&dst_qp.to_be_bytes());
                out.extend_from_slice(&psn.to_be_bytes());
            }
            WireMsg::FatalNack { dst_qp, psn } => {
                out.push(6);
                out.extend_from_slice(&dst_qp.to_be_bytes());
                out.extend_from_slice(&psn.to_be_bytes());
            }
            WireMsg::Write {
                dst_qp,
                psn,
                rkey,
                offset,
                payload,
            } => {
                out.push(7);
                out.extend_from_slice(&dst_qp.to_be_bytes());
                out.extend_from_slice(&psn.to_be_bytes());
                out.extend_from_slice(&rkey.to_be_bytes());
                out.extend_from_slice(&offset.to_be_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                out.extend_from_slice(payload);
            }
            WireMsg::ReadReq {
                dst_qp,
                psn,
                rkey,
                offset,
                len,
            } => {
                out.push(8);
                out.extend_from_slice(&dst_qp.to_be_bytes());
                out.extend_from_slice(&psn.to_be_bytes());
                out.extend_from_slice(&rkey.to_be_bytes());
                out.extend_from_slice(&offset.to_be_bytes());
                out.extend_from_slice(&len.to_be_bytes());
            }
            WireMsg::ReadResp {
                dst_qp,
                psn,
                payload,
            } => {
                out.push(9);
                out.extend_from_slice(&dst_qp.to_be_bytes());
                out.extend_from_slice(&psn.to_be_bytes());
                out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
                out.extend_from_slice(payload);
            }
        }
        out
    }

    /// Parses bytes from the fabric; `None` on malformed input.
    pub fn parse(data: &[u8]) -> Option<WireMsg> {
        let tag = *data.first()?;
        let rest = &data[1..];
        let u32_at = |b: &[u8], i: usize| -> Option<u32> {
            Some(u32::from_be_bytes(b.get(i..i + 4)?.try_into().ok()?))
        };
        let u64_at = |b: &[u8], i: usize| -> Option<u64> {
            Some(u64::from_be_bytes(b.get(i..i + 8)?.try_into().ok()?))
        };
        let u16_at = |b: &[u8], i: usize| -> Option<u16> {
            Some(u16::from_be_bytes(b.get(i..i + 2)?.try_into().ok()?))
        };
        match tag {
            1 => Some(WireMsg::ConnReq {
                src_qp: u32_at(rest, 0)?,
                port: u16_at(rest, 4)?,
            }),
            2 => Some(WireMsg::ConnResp {
                dst_qp: u32_at(rest, 0)?,
                src_qp: u32_at(rest, 4)?,
                accepted: *rest.get(8)? != 0,
            }),
            3 => {
                let len = u32_at(rest, 8)? as usize;
                let payload = rest.get(12..12 + len)?.to_vec();
                Some(WireMsg::Send {
                    dst_qp: u32_at(rest, 0)?,
                    psn: u32_at(rest, 4)?,
                    payload,
                })
            }
            4 => Some(WireMsg::Ack {
                dst_qp: u32_at(rest, 0)?,
                psn: u32_at(rest, 4)?,
            }),
            5 => Some(WireMsg::Rnr {
                dst_qp: u32_at(rest, 0)?,
                psn: u32_at(rest, 4)?,
            }),
            6 => Some(WireMsg::FatalNack {
                dst_qp: u32_at(rest, 0)?,
                psn: u32_at(rest, 4)?,
            }),
            7 => {
                let len = u32_at(rest, 20)? as usize;
                let payload = rest.get(24..24 + len)?.to_vec();
                Some(WireMsg::Write {
                    dst_qp: u32_at(rest, 0)?,
                    psn: u32_at(rest, 4)?,
                    rkey: u32_at(rest, 8)?,
                    offset: u64_at(rest, 12)?,
                    payload,
                })
            }
            8 => Some(WireMsg::ReadReq {
                dst_qp: u32_at(rest, 0)?,
                psn: u32_at(rest, 4)?,
                rkey: u32_at(rest, 8)?,
                offset: u64_at(rest, 12)?,
                len: u32_at(rest, 20)?,
            }),
            9 => {
                let len = u32_at(rest, 8)? as usize;
                let payload = rest.get(12..12 + len)?.to_vec();
                Some(WireMsg::ReadResp {
                    dst_qp: u32_at(rest, 0)?,
                    psn: u32_at(rest, 4)?,
                    payload,
                })
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_round_trip() {
        let messages = vec![
            WireMsg::ConnReq {
                src_qp: 5,
                port: 18515,
            },
            WireMsg::ConnResp {
                dst_qp: 5,
                src_qp: 9,
                accepted: true,
            },
            WireMsg::ConnResp {
                dst_qp: 5,
                src_qp: 0,
                accepted: false,
            },
            WireMsg::Send {
                dst_qp: 9,
                psn: 42,
                payload: b"data".to_vec(),
            },
            WireMsg::Ack { dst_qp: 9, psn: 43 },
            WireMsg::Rnr { dst_qp: 9, psn: 42 },
            WireMsg::FatalNack { dst_qp: 9, psn: 42 },
            WireMsg::Write {
                dst_qp: 9,
                psn: 44,
                rkey: 0xDEAD,
                offset: 1 << 33,
                payload: b"remote".to_vec(),
            },
            WireMsg::ReadReq {
                dst_qp: 9,
                psn: 45,
                rkey: 0xBEEF,
                offset: 128,
                len: 4096,
            },
            WireMsg::ReadResp {
                dst_qp: 9,
                psn: 45,
                payload: vec![7; 16],
            },
        ];
        for msg in messages {
            let bytes = msg.serialize();
            assert_eq!(WireMsg::parse(&bytes), Some(msg.clone()), "{msg:?}");
        }
    }

    #[test]
    fn truncated_input_is_rejected() {
        let bytes = WireMsg::Send {
            dst_qp: 1,
            psn: 2,
            payload: b"abcdef".to_vec(),
        }
        .serialize();
        for cut in [0, 1, 5, bytes.len() - 1] {
            assert_eq!(WireMsg::parse(&bytes[..cut]), None, "cut at {cut}");
        }
    }

    #[test]
    fn unknown_tag_is_rejected() {
        assert_eq!(WireMsg::parse(&[99, 0, 0, 0, 0]), None);
    }
}
