//! Verbs-level types: handles, work completions, and errors.

use std::fmt;

/// Protection-domain handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PdId(pub u32);

/// Memory-region handle (the "lkey"; the rkey is issued at registration).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MrId(pub u32);

/// Completion-queue handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CqId(pub u32);

/// Queue-pair handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct QpId(pub u32);

/// Access rights requested at memory registration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MrAccess {
    /// Remote peers may RDMA READ this region.
    pub remote_read: bool,
    /// Remote peers may RDMA WRITE this region.
    pub remote_write: bool,
}

impl MrAccess {
    /// Local-only access (no remote rights).
    pub const LOCAL_ONLY: MrAccess = MrAccess {
        remote_read: false,
        remote_write: false,
    };

    /// Full remote access.
    pub const REMOTE_RW: MrAccess = MrAccess {
        remote_read: true,
        remote_write: true,
    };
}

/// Queue-pair lifecycle states (collapsed from the full verbs set).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QpState {
    /// Created, not yet connected.
    Init,
    /// Connection handshake in flight.
    Connecting,
    /// Ready to send and receive.
    Rts,
    /// Broken by a fatal error.
    Error,
}

/// Work-completion opcode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcOpcode {
    /// A posted SEND completed.
    Send,
    /// A posted receive buffer was filled.
    Recv,
    /// An RDMA READ completed (data is in the local region).
    Read,
    /// An RDMA WRITE completed.
    Write,
}

/// Work-completion status.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WcStatus {
    /// Operation succeeded.
    Success,
    /// Receiver-not-ready retries were exhausted (no posted recv buffer).
    RnrRetryExceeded,
    /// The posted receive buffer was too small for the incoming message.
    LocalLengthError,
    /// Remote access was refused (bad rkey, out of bounds, or missing
    /// permission).
    RemoteAccessError,
    /// The transport retry budget was exhausted (peer dead / partitioned).
    RetryExceeded,
    /// The queue pair was in the wrong state.
    WrFlushed,
}

impl WcStatus {
    /// Whether the completion reports success.
    pub fn is_ok(&self) -> bool {
        *self == WcStatus::Success
    }
}

/// One entry popped from a completion queue.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Caller-chosen work-request id.
    pub wr_id: u64,
    /// The queue pair the work ran on.
    pub qp: QpId,
    /// Operation kind.
    pub opcode: WcOpcode,
    /// Outcome.
    pub status: WcStatus,
    /// Bytes transferred (valid on success).
    pub byte_len: usize,
}

/// Errors returned synchronously by verbs calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum QpError {
    /// Unknown handle.
    BadHandle,
    /// MR and QP belong to different protection domains.
    PdMismatch,
    /// Local buffer range is outside its memory region.
    OutOfBounds,
    /// The QP is not in a state that allows the operation.
    InvalidState,
    /// The port is already in use by another listener.
    AddrInUse(u16),
    /// The work queue is full.
    QueueFull,
}

impl fmt::Display for QpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            QpError::BadHandle => write!(f, "bad verbs handle"),
            QpError::PdMismatch => write!(f, "protection domain mismatch"),
            QpError::OutOfBounds => write!(f, "buffer range outside memory region"),
            QpError::InvalidState => write!(f, "queue pair in invalid state"),
            QpError::AddrInUse(p) => write!(f, "listen port {p} in use"),
            QpError::QueueFull => write!(f, "work queue full"),
        }
    }
}

impl std::error::Error for QpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_is_ok_only_for_success() {
        assert!(WcStatus::Success.is_ok());
        assert!(!WcStatus::RnrRetryExceeded.is_ok());
        assert!(!WcStatus::RemoteAccessError.is_ok());
    }

    #[test]
    fn errors_render() {
        assert_eq!(
            QpError::PdMismatch.to_string(),
            "protection domain mismatch"
        );
        assert_eq!(QpError::AddrInUse(7).to_string(), "listen port 7 in use");
    }
}
