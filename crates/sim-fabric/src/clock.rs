//! Virtual time for the simulation.
//!
//! All latency-domain measurements in the reproduction (round-trip times,
//! device service times, retransmission timeouts) are expressed in virtual
//! nanoseconds carried by [`SimTime`]. A [`SimClock`] is a shared, cloneable
//! handle to the current virtual instant; it only moves when explicitly
//! advanced, which the Demikernel scheduler does when every task is blocked.

use std::cell::Cell;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::rc::Rc;

/// An instant in virtual time, in nanoseconds since simulation start.
///
/// `SimTime` is totally ordered and supports the arithmetic a protocol stack
/// needs (adding durations, measuring differences). It deliberately does not
/// interoperate with [`std::time::Instant`]: virtual and wall-clock time are
/// different measurement domains (see `DESIGN.md` §2).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0);

    /// Largest representable instant; useful as an "infinite" timeout.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant `ns` nanoseconds after the epoch.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Creates an instant `us` microseconds after the epoch.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Creates an instant `ms` milliseconds after the epoch.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Creates an instant `s` seconds after the epoch.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000_000)
    }

    /// Nanoseconds since the epoch.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since the epoch (truncating).
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Whole milliseconds since the epoch (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Fractional microseconds since the epoch.
    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating difference `self - earlier`.
    pub fn saturating_since(self, earlier: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(earlier.0))
    }

    /// Saturating addition; clamps at [`SimTime::MAX`].
    pub fn saturating_add(self, delta: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(delta.0))
    }

    /// Scales a duration-like value by an integer factor, saturating.
    pub fn saturating_mul(self, factor: u64) -> SimTime {
        SimTime(self.0.saturating_mul(factor))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000_000 {
            write!(f, "{:.3}s", self.0 as f64 / 1e9)
        } else if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.0 as f64 / 1e6)
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.0 as f64 / 1e3)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A shared handle to the simulation's virtual clock.
///
/// Cloning a `SimClock` yields another handle to the *same* clock; all
/// components of one simulation (fabric, devices, protocol stacks, timers)
/// share a single clock so that time is globally consistent.
///
/// The clock is monotonic: [`SimClock::advance_to`] ignores attempts to move
/// backwards rather than panicking, because event sources may race to propose
/// the next instant.
#[derive(Clone, Default)]
pub struct SimClock {
    now: Rc<Cell<u64>>,
}

impl SimClock {
    /// Creates a new clock at the epoch.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current virtual instant.
    pub fn now(&self) -> SimTime {
        SimTime(self.now.get())
    }

    /// Moves the clock forward to `t`; no-op if `t` is in the past.
    pub fn advance_to(&self, t: SimTime) {
        if t.0 > self.now.get() {
            self.now.set(t.0);
        }
    }

    /// Moves the clock forward by `delta`.
    pub fn advance_by(&self, delta: SimTime) {
        self.now.set(self.now.get().saturating_add(delta.0));
    }

    /// Returns true when both handles refer to the same underlying clock.
    pub fn same_clock(&self, other: &SimClock) -> bool {
        Rc::ptr_eq(&self.now, &other.now)
    }
}

impl fmt::Debug for SimClock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SimClock({:?})", self.now())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_constructors_agree() {
        assert_eq!(SimTime::from_micros(1), SimTime::from_nanos(1_000));
        assert_eq!(SimTime::from_millis(1), SimTime::from_micros(1_000));
        assert_eq!(SimTime::from_secs(1), SimTime::from_millis(1_000));
    }

    #[test]
    fn time_arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!(b.saturating_since(a), SimTime::ZERO);
        assert_eq!(a.saturating_since(b).as_nanos(), 60);
        assert_eq!(SimTime::MAX.saturating_add(a), SimTime::MAX);
        assert_eq!(SimTime::from_nanos(3).saturating_mul(7).as_nanos(), 21);
    }

    #[test]
    fn clock_is_shared_and_monotonic() {
        let c1 = SimClock::new();
        let c2 = c1.clone();
        c1.advance_to(SimTime::from_micros(5));
        assert_eq!(c2.now(), SimTime::from_micros(5));
        // Backwards moves are ignored.
        c2.advance_to(SimTime::from_micros(1));
        assert_eq!(c1.now(), SimTime::from_micros(5));
        c2.advance_by(SimTime::from_micros(1));
        assert_eq!(c1.now(), SimTime::from_micros(6));
        assert!(c1.same_clock(&c2));
        assert!(!c1.same_clock(&SimClock::new()));
    }

    #[test]
    fn debug_formatting_scales_units() {
        assert_eq!(format!("{:?}", SimTime::from_nanos(17)), "17ns");
        assert_eq!(format!("{:?}", SimTime::from_nanos(1_500)), "1.500us");
        assert_eq!(format!("{:?}", SimTime::from_micros(2_500)), "2.500ms");
        assert_eq!(format!("{:?}", SimTime::from_millis(1_500)), "1.500s");
    }
}
