//! A deterministic, virtual-time network fabric for simulated kernel-bypass devices.
//!
//! The fabric is the substitute for the physical datacenter network in the
//! Demikernel reproduction: simulated NICs (`dpdk-sim`, `rdma-sim`) register
//! *endpoints* identified by MAC address, transmit raw frames, and receive
//! frames into per-endpoint mailboxes after a configurable link delay.
//!
//! Time is virtual: a [`SimClock`] advances only when the caller decides
//! (typically the Demikernel scheduler, when every coroutine is blocked).
//! All randomness (frame loss) comes from a seeded PRNG, so a simulation run
//! is a pure function of its inputs — every test and experiment is exactly
//! reproducible.
//!
//! # Examples
//!
//! ```
//! use sim_fabric::{Fabric, LinkConfig, MacAddress, SimTime};
//!
//! let fabric = Fabric::new(7);
//! let a = fabric.register_endpoint(MacAddress::new([2, 0, 0, 0, 0, 1]));
//! let b = fabric.register_endpoint(MacAddress::new([2, 0, 0, 0, 0, 2]));
//!
//! a.transmit(b.mac(), vec![0xAB; 64]);
//! // Nothing arrives until virtual time passes the link latency.
//! assert!(b.receive().is_none());
//! fabric.advance_to_next_event();
//! assert_eq!(b.receive().unwrap().payload, vec![0xAB; 64]);
//! ```

pub mod caps;
pub mod clock;
pub mod fabric;
pub mod rng;
pub mod trace;

pub use caps::{DeviceCaps, DeviceCategory};
pub use clock::{SimClock, SimTime};
pub use fabric::{Endpoint, Fabric, FabricStats, Frame, LinkConfig, MacAddress};
pub use rng::SimRng;
pub use trace::{TraceEvent, Tracer};
