//! A small deterministic PRNG for simulation-internal randomness.
//!
//! The fabric needs randomness for frame loss and jitter, but experiments
//! must be exactly reproducible, so the fabric cannot depend on ambient
//! entropy. `SimRng` is SplitMix64: tiny, fast, well distributed, and —
//! unlike external crates — guaranteed stable across dependency upgrades,
//! which keeps recorded experiment outputs comparable over time.

/// Deterministic SplitMix64 generator.
///
/// # Examples
///
/// ```
/// use sim_fabric::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`. Returns 0 when `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        // Multiply-shift bounded sampling (Lemire); bias is negligible for
        // simulation purposes and determinism is what matters here.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.next_f64() < p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn bounded_values_stay_in_range() {
        let mut r = SimRng::new(1);
        for _ in 0..10_000 {
            let v = r.next_below(17);
            assert!(v < 17);
        }
        assert_eq!(r.next_below(0), 0);
    }

    #[test]
    fn unit_floats_stay_in_range_and_cover() {
        let mut r = SimRng::new(2);
        let mut low = 0usize;
        for _ in 0..10_000 {
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
            if f < 0.5 {
                low += 1;
            }
        }
        // Roughly balanced: a catastrophically biased generator would fail.
        assert!((3_000..7_000).contains(&low), "low count {low}");
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(3);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-0.5));
        assert!(r.chance(1.5));
    }

    #[test]
    fn chance_roughly_matches_probability() {
        let mut r = SimRng::new(4);
        let hits = (0..10_000).filter(|_| r.chance(0.1)).count();
        assert!((700..1_300).contains(&hits), "hits {hits}");
    }
}
