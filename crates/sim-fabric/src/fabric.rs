//! The event-driven fabric core: endpoints, links, and frame delivery.

use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, HashSet, VecDeque};
use std::fmt;
use std::rc::Rc;

use demi_memory::DemiBuffer;

use crate::clock::{SimClock, SimTime};
use crate::rng::SimRng;
use crate::trace::{TraceEvent, Tracer};

/// A 48-bit Ethernet-style hardware address identifying a fabric endpoint.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MacAddress([u8; 6]);

impl MacAddress {
    /// The broadcast address (`ff:ff:ff:ff:ff:ff`).
    pub const BROADCAST: MacAddress = MacAddress([0xFF; 6]);

    /// Creates an address from raw octets.
    pub const fn new(octets: [u8; 6]) -> Self {
        MacAddress(octets)
    }

    /// Raw octets.
    pub const fn octets(&self) -> [u8; 6] {
        self.0
    }

    /// Whether this is the broadcast address.
    pub fn is_broadcast(&self) -> bool {
        *self == Self::BROADCAST
    }

    /// Convenience constructor used throughout tests: a locally-administered
    /// unicast address whose last octet is `n`.
    pub const fn from_last_octet(n: u8) -> Self {
        MacAddress([0x02, 0, 0, 0, 0, n])
    }
}

impl fmt::Debug for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            self.0[0], self.0[1], self.0[2], self.0[3], self.0[4], self.0[5]
        )
    }
}

impl fmt::Display for MacAddress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// A raw frame carried by the fabric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Transmitting endpoint.
    pub src: MacAddress,
    /// Destination endpoint as addressed by the sender (may be broadcast).
    pub dst: MacAddress,
    /// Opaque payload bytes (for NIC simulators, a full Ethernet frame).
    ///
    /// Carried as a [`DemiBuffer`] handle: the fabric never copies payload
    /// bytes — the receiver reads the very storage the sender transmitted
    /// (zero-copy end to end). Broadcast clones the handle per receiver.
    pub payload: DemiBuffer,
    /// Virtual instant at which the frame reached the receiver's mailbox.
    pub delivered_at: SimTime,
}

/// Per-link characteristics.
///
/// Links are directional: `set_link(a, b, ..)` configures frames flowing from
/// `a` to `b` only. Endpoints without an explicit entry use the fabric-wide
/// default.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub latency: SimTime,
    /// Line rate in bits per second; `0` means infinite (no serialization
    /// delay).
    pub bandwidth_bps: u64,
    /// Independent per-frame loss probability in `[0, 1]`.
    pub loss_probability: f64,
}

impl Default for LinkConfig {
    /// Defaults approximate an intra-rack datacenter hop: 1µs one-way,
    /// 40 Gbps, lossless.
    fn default() -> Self {
        LinkConfig {
            latency: SimTime::from_micros(1),
            bandwidth_bps: 40_000_000_000,
            loss_probability: 0.0,
        }
    }
}

impl LinkConfig {
    /// A zero-latency, infinite-bandwidth, lossless link (useful in unit
    /// tests that only care about ordering).
    pub fn ideal() -> Self {
        LinkConfig {
            latency: SimTime::ZERO,
            bandwidth_bps: 0,
            loss_probability: 0.0,
        }
    }

    /// Serialization delay for a frame of `len` bytes on this link.
    pub fn serialization_delay(&self, len: usize) -> SimTime {
        if self.bandwidth_bps == 0 {
            return SimTime::ZERO;
        }
        let bits = len as u128 * 8;
        let ns = bits * 1_000_000_000 / self.bandwidth_bps as u128;
        SimTime::from_nanos(ns as u64)
    }
}

/// Aggregate fabric counters, available via [`Fabric::stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FabricStats {
    /// Frames accepted for transmission (broadcast counts once per receiver).
    pub frames_sent: u64,
    /// Frames placed into a receiving mailbox.
    pub frames_delivered: u64,
    /// Frames dropped (loss model, unknown destination, or mailbox overflow).
    pub frames_dropped: u64,
    /// Payload bytes accepted for transmission.
    pub bytes_sent: u64,
}

#[derive(Debug)]
struct PendingFrame {
    deliver_at: SimTime,
    seq: u64,
    dst: MacAddress,
    frame: Frame,
}

impl PartialEq for PendingFrame {
    fn eq(&self, other: &Self) -> bool {
        self.deliver_at == other.deliver_at && self.seq == other.seq
    }
}
impl Eq for PendingFrame {}
impl PartialOrd for PendingFrame {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for PendingFrame {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

struct Mailbox {
    queue: VecDeque<Frame>,
    capacity: usize,
}

struct FabricInner {
    clock: SimClock,
    rng: SimRng,
    tracer: Tracer,
    endpoints: HashMap<MacAddress, Mailbox>,
    default_link: LinkConfig,
    links: HashMap<(MacAddress, MacAddress), LinkConfig>,
    partitions: HashSet<(MacAddress, MacAddress)>,
    pending: BinaryHeap<Reverse<PendingFrame>>,
    line_busy_until: HashMap<MacAddress, SimTime>,
    seq: u64,
    stats: FabricStats,
}

impl FabricInner {
    fn link_for(&self, src: MacAddress, dst: MacAddress) -> LinkConfig {
        self.links
            .get(&(src, dst))
            .copied()
            .unwrap_or(self.default_link)
    }

    fn is_partitioned(&self, a: MacAddress, b: MacAddress) -> bool {
        self.partitions.contains(&(a, b)) || self.partitions.contains(&(b, a))
    }

    fn enqueue_unicast(&mut self, src: MacAddress, dst: MacAddress, payload: DemiBuffer) {
        let now = self.clock.now();
        self.stats.frames_sent += 1;
        self.stats.bytes_sent += payload.len() as u64;
        self.tracer.record(TraceEvent::Transmit {
            at: now,
            src,
            dst,
            len: payload.len(),
        });

        let link = self.link_for(src, dst);
        if self.is_partitioned(src, dst)
            || !self.endpoints.contains_key(&dst)
            || self.rng.chance(link.loss_probability)
        {
            self.stats.frames_dropped += 1;
            self.tracer.record(TraceEvent::Drop {
                at: now,
                src,
                dst,
                len: payload.len(),
            });
            return;
        }

        // Serialization: the sender's line transmits frames back-to-back.
        let busy = self
            .line_busy_until
            .get(&src)
            .copied()
            .unwrap_or(SimTime::ZERO);
        let tx_start = busy.max(now);
        let tx_end = tx_start.saturating_add(link.serialization_delay(payload.len()));
        self.line_busy_until.insert(src, tx_end);
        let deliver_at = tx_end.saturating_add(link.latency);

        self.seq += 1;
        self.pending.push(Reverse(PendingFrame {
            deliver_at,
            seq: self.seq,
            dst,
            frame: Frame {
                src,
                dst,
                payload,
                delivered_at: deliver_at,
            },
        }));
    }

    fn deliver_due(&mut self) {
        let now = self.clock.now();
        while let Some(Reverse(head)) = self.pending.peek() {
            if head.deliver_at > now {
                break;
            }
            let Reverse(p) = self.pending.pop().expect("peeked entry exists");
            let len = p.frame.payload.len();
            match self.endpoints.get_mut(&p.dst) {
                Some(mailbox) if mailbox.queue.len() < mailbox.capacity => {
                    mailbox.queue.push_back(p.frame);
                    self.stats.frames_delivered += 1;
                    self.tracer.record(TraceEvent::Deliver {
                        at: now,
                        dst: p.dst,
                        len,
                    });
                }
                _ => {
                    self.stats.frames_dropped += 1;
                    self.tracer.record(TraceEvent::Drop {
                        at: now,
                        src: p.frame.src,
                        dst: p.dst,
                        len,
                    });
                }
            }
        }
    }
}

/// The shared fabric: a registry of endpoints plus an in-flight frame heap.
///
/// Cloning a `Fabric` yields another handle to the same fabric. All methods
/// take `&self`; interior mutability keeps the single-threaded simulation
/// ergonomic.
#[derive(Clone)]
pub struct Fabric {
    inner: Rc<RefCell<FabricInner>>,
}

/// Default per-endpoint mailbox capacity, in frames.
pub const DEFAULT_MAILBOX_CAPACITY: usize = 65_536;

impl Fabric {
    /// Creates a fabric with a fresh clock and the given loss-model seed.
    pub fn new(seed: u64) -> Self {
        Self::with_clock(SimClock::new(), seed)
    }

    /// Creates a fabric sharing an existing clock.
    pub fn with_clock(clock: SimClock, seed: u64) -> Self {
        Fabric {
            inner: Rc::new(RefCell::new(FabricInner {
                clock,
                rng: SimRng::new(seed),
                tracer: Tracer::new(4096),
                endpoints: HashMap::new(),
                default_link: LinkConfig::default(),
                links: HashMap::new(),
                partitions: HashSet::new(),
                pending: BinaryHeap::new(),
                line_busy_until: HashMap::new(),
                seq: 0,
                stats: FabricStats::default(),
            })),
        }
    }

    /// Handle to the fabric's clock.
    pub fn clock(&self) -> SimClock {
        self.inner.borrow().clock.clone()
    }

    /// Handle to the fabric's tracer.
    pub fn tracer(&self) -> Tracer {
        self.inner.borrow().tracer.clone()
    }

    /// Sets the link configuration used by endpoint pairs without an
    /// explicit override.
    pub fn set_default_link(&self, config: LinkConfig) {
        self.inner.borrow_mut().default_link = config;
    }

    /// Configures the directional link `src → dst`.
    pub fn set_link(&self, src: MacAddress, dst: MacAddress, config: LinkConfig) {
        self.inner.borrow_mut().links.insert((src, dst), config);
    }

    /// Configures both directions between `a` and `b`.
    pub fn set_link_bidir(&self, a: MacAddress, b: MacAddress, config: LinkConfig) {
        self.set_link(a, b, config);
        self.set_link(b, a, config);
    }

    /// Severs connectivity between `a` and `b` in both directions
    /// (failure injection). In-flight frames still arrive.
    pub fn partition(&self, a: MacAddress, b: MacAddress) {
        self.inner.borrow_mut().partitions.insert((a, b));
    }

    /// Restores connectivity previously removed by [`Fabric::partition`].
    pub fn heal(&self, a: MacAddress, b: MacAddress) {
        let mut inner = self.inner.borrow_mut();
        inner.partitions.remove(&(a, b));
        inner.partitions.remove(&(b, a));
    }

    /// Registers an endpoint with the default mailbox capacity.
    ///
    /// # Panics
    ///
    /// Panics if `mac` is already registered or is the broadcast address;
    /// both indicate a test-harness configuration bug.
    pub fn register_endpoint(&self, mac: MacAddress) -> Endpoint {
        self.register_endpoint_with_capacity(mac, DEFAULT_MAILBOX_CAPACITY)
    }

    /// Registers an endpoint whose mailbox holds at most `capacity` frames;
    /// frames arriving beyond that are dropped (tail drop), as on a real NIC
    /// RX ring.
    ///
    /// # Panics
    ///
    /// Panics if `mac` is already registered or is the broadcast address.
    pub fn register_endpoint_with_capacity(&self, mac: MacAddress, capacity: usize) -> Endpoint {
        assert!(!mac.is_broadcast(), "cannot register the broadcast address");
        let mut inner = self.inner.borrow_mut();
        let prev = inner.endpoints.insert(
            mac,
            Mailbox {
                queue: VecDeque::new(),
                capacity,
            },
        );
        assert!(prev.is_none(), "endpoint {mac} registered twice");
        drop(inner);
        Endpoint {
            fabric: self.clone(),
            mac,
        }
    }

    /// Removes an endpoint; its queued and in-flight frames are dropped on
    /// delivery.
    pub fn deregister_endpoint(&self, mac: MacAddress) {
        self.inner.borrow_mut().endpoints.remove(&mac);
    }

    /// Transmits `payload` from `src` to `dst` (which may be broadcast).
    ///
    /// Accepts anything convertible into a [`DemiBuffer`] — a `Vec<u8>`
    /// converts by taking ownership of its storage, a `DemiBuffer` passes
    /// straight through (the zero-copy path), and a `&[u8]` is copied.
    pub fn transmit(&self, src: MacAddress, dst: MacAddress, payload: impl Into<DemiBuffer>) {
        let payload = payload.into();
        let mut inner = self.inner.borrow_mut();
        if dst.is_broadcast() {
            let receivers: Vec<MacAddress> = inner
                .endpoints
                .keys()
                .copied()
                .filter(|&m| m != src)
                .collect();
            for r in receivers {
                // Handle clone: every receiver reads the same storage.
                inner.enqueue_unicast(src, r, payload.clone());
            }
        } else {
            inner.enqueue_unicast(src, dst, payload);
        }
    }

    /// Earliest in-flight delivery instant, if any frame is in flight.
    pub fn next_event_time(&self) -> Option<SimTime> {
        self.inner
            .borrow()
            .pending
            .peek()
            .map(|Reverse(p)| p.deliver_at)
    }

    /// Delivers every frame whose delivery instant is `<= now`.
    pub fn deliver_due(&self) {
        self.inner.borrow_mut().deliver_due();
    }

    /// Advances the clock to the next delivery instant and delivers.
    /// Returns `false` when nothing is in flight.
    pub fn advance_to_next_event(&self) -> bool {
        let Some(t) = self.next_event_time() else {
            return false;
        };
        let clock = self.clock();
        clock.advance_to(t);
        self.deliver_due();
        true
    }

    /// Advances the clock to `t`, delivering every frame due on the way.
    pub fn advance_to(&self, t: SimTime) {
        loop {
            match self.next_event_time() {
                Some(next) if next <= t => {
                    self.clock().advance_to(next);
                    self.deliver_due();
                }
                _ => break,
            }
        }
        self.clock().advance_to(t);
    }

    /// Snapshot of aggregate counters.
    pub fn stats(&self) -> FabricStats {
        self.inner.borrow().stats
    }

    /// Number of frames currently in flight (transmitted, not yet delivered).
    pub fn in_flight(&self) -> usize {
        self.inner.borrow().pending.len()
    }
}

/// A registered attachment point on the fabric; owned by a simulated NIC.
#[derive(Clone)]
pub struct Endpoint {
    fabric: Fabric,
    mac: MacAddress,
}

impl Endpoint {
    /// This endpoint's hardware address.
    pub fn mac(&self) -> MacAddress {
        self.mac
    }

    /// Handle to the owning fabric.
    pub fn fabric(&self) -> &Fabric {
        &self.fabric
    }

    /// Transmits a frame to `dst` (zero-copy when given a [`DemiBuffer`]).
    pub fn transmit(&self, dst: MacAddress, payload: impl Into<DemiBuffer>) {
        self.fabric.transmit(self.mac, dst, payload);
    }

    /// Transmits a broadcast frame.
    pub fn broadcast(&self, payload: impl Into<DemiBuffer>) {
        self.fabric
            .transmit(self.mac, MacAddress::BROADCAST, payload);
    }

    /// Dequeues the next delivered frame, if any. Does not advance time.
    pub fn receive(&self) -> Option<Frame> {
        let mut inner = self.fabric.inner.borrow_mut();
        inner
            .endpoints
            .get_mut(&self.mac)
            .and_then(|m| m.queue.pop_front())
    }

    /// Number of frames waiting in this endpoint's mailbox.
    pub fn pending_rx(&self) -> usize {
        self.fabric
            .inner
            .borrow()
            .endpoints
            .get(&self.mac)
            .map_or(0, |m| m.queue.len())
    }
}

impl fmt::Debug for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Endpoint({})", self.mac)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_endpoints(fabric: &Fabric) -> (Endpoint, Endpoint) {
        (
            fabric.register_endpoint(MacAddress::from_last_octet(1)),
            fabric.register_endpoint(MacAddress::from_last_octet(2)),
        )
    }

    #[test]
    fn unicast_delivery_after_latency() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig {
            latency: SimTime::from_micros(3),
            bandwidth_bps: 0,
            loss_probability: 0.0,
        });
        let (a, b) = two_endpoints(&fabric);
        a.transmit(b.mac(), vec![1, 2, 3]);
        assert_eq!(b.pending_rx(), 0);
        assert_eq!(fabric.next_event_time(), Some(SimTime::from_micros(3)));
        assert!(fabric.advance_to_next_event());
        let f = b.receive().expect("frame delivered");
        assert_eq!(f.payload, vec![1, 2, 3]);
        assert_eq!(f.src, a.mac());
        assert_eq!(f.delivered_at, SimTime::from_micros(3));
        assert!(b.receive().is_none());
    }

    #[test]
    fn serialization_delay_accumulates_back_to_back() {
        let fabric = Fabric::new(1);
        // 1 Gbps: an 1250-byte frame serializes in exactly 10µs.
        fabric.set_default_link(LinkConfig {
            latency: SimTime::ZERO,
            bandwidth_bps: 1_000_000_000,
            loss_probability: 0.0,
        });
        let (a, b) = two_endpoints(&fabric);
        a.transmit(b.mac(), vec![0; 1250]);
        a.transmit(b.mac(), vec![0; 1250]);
        assert_eq!(fabric.next_event_time(), Some(SimTime::from_micros(10)));
        fabric.advance_to(SimTime::from_micros(10));
        assert_eq!(b.pending_rx(), 1);
        fabric.advance_to(SimTime::from_micros(20));
        assert_eq!(b.pending_rx(), 2);
    }

    #[test]
    fn ordered_delivery_at_equal_instants() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig::ideal());
        let (a, b) = two_endpoints(&fabric);
        for i in 0..10u8 {
            a.transmit(b.mac(), vec![i]);
        }
        fabric.deliver_due();
        for i in 0..10u8 {
            assert_eq!(b.receive().unwrap().payload, vec![i]);
        }
    }

    #[test]
    fn broadcast_reaches_everyone_but_sender() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig::ideal());
        let a = fabric.register_endpoint(MacAddress::from_last_octet(1));
        let b = fabric.register_endpoint(MacAddress::from_last_octet(2));
        let c = fabric.register_endpoint(MacAddress::from_last_octet(3));
        a.broadcast(vec![9]);
        fabric.deliver_due();
        assert_eq!(a.pending_rx(), 0);
        assert_eq!(b.receive().unwrap().payload, vec![9]);
        assert_eq!(c.receive().unwrap().payload, vec![9]);
    }

    #[test]
    fn loss_model_drops_expected_fraction() {
        let fabric = Fabric::new(42);
        fabric.set_default_link(LinkConfig {
            latency: SimTime::ZERO,
            bandwidth_bps: 0,
            loss_probability: 0.25,
        });
        let (a, b) = two_endpoints(&fabric);
        for _ in 0..10_000 {
            a.transmit(b.mac(), vec![0; 8]);
        }
        fabric.deliver_due();
        let stats = fabric.stats();
        assert_eq!(stats.frames_sent, 10_000);
        assert_eq!(stats.frames_delivered + stats.frames_dropped, 10_000);
        assert!(
            (2_000..3_000).contains(&(stats.frames_dropped as usize)),
            "dropped {}",
            stats.frames_dropped
        );
    }

    #[test]
    fn loss_is_deterministic_per_seed() {
        let run = |seed| {
            let fabric = Fabric::new(seed);
            fabric.set_default_link(LinkConfig {
                latency: SimTime::ZERO,
                bandwidth_bps: 0,
                loss_probability: 0.5,
            });
            let (a, b) = two_endpoints(&fabric);
            for _ in 0..100 {
                a.transmit(b.mac(), vec![0]);
            }
            fabric.deliver_due();
            fabric.stats().frames_dropped
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn partition_drops_both_directions_and_heals() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig::ideal());
        let (a, b) = two_endpoints(&fabric);
        fabric.partition(a.mac(), b.mac());
        a.transmit(b.mac(), vec![1]);
        b.transmit(a.mac(), vec![2]);
        fabric.deliver_due();
        assert_eq!(b.pending_rx(), 0);
        assert_eq!(a.pending_rx(), 0);
        assert_eq!(fabric.stats().frames_dropped, 2);
        fabric.heal(b.mac(), a.mac());
        a.transmit(b.mac(), vec![3]);
        fabric.deliver_due();
        assert_eq!(b.receive().unwrap().payload, vec![3]);
    }

    #[test]
    fn unknown_destination_is_dropped() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig::ideal());
        let a = fabric.register_endpoint(MacAddress::from_last_octet(1));
        a.transmit(MacAddress::from_last_octet(99), vec![1]);
        fabric.deliver_due();
        assert_eq!(fabric.stats().frames_dropped, 1);
    }

    #[test]
    fn mailbox_overflow_tail_drops() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig::ideal());
        let a = fabric.register_endpoint(MacAddress::from_last_octet(1));
        let b = fabric.register_endpoint_with_capacity(MacAddress::from_last_octet(2), 2);
        for i in 0..5u8 {
            a.transmit(b.mac(), vec![i]);
        }
        fabric.deliver_due();
        assert_eq!(b.pending_rx(), 2);
        assert_eq!(fabric.stats().frames_dropped, 3);
        // Head of the queue is the earliest frame (tail drop, not head drop).
        assert_eq!(b.receive().unwrap().payload, vec![0]);
    }

    #[test]
    fn per_link_override_beats_default() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig {
            latency: SimTime::from_micros(100),
            bandwidth_bps: 0,
            loss_probability: 0.0,
        });
        let (a, b) = two_endpoints(&fabric);
        fabric.set_link(
            a.mac(),
            b.mac(),
            LinkConfig {
                latency: SimTime::from_micros(1),
                bandwidth_bps: 0,
                loss_probability: 0.0,
            },
        );
        a.transmit(b.mac(), vec![1]);
        b.transmit(a.mac(), vec![2]);
        // a→b uses the 1µs override; b→a still uses the 100µs default.
        assert_eq!(fabric.next_event_time(), Some(SimTime::from_micros(1)));
        fabric.advance_to(SimTime::from_micros(1));
        assert_eq!(b.pending_rx(), 1);
        assert_eq!(a.pending_rx(), 0);
        fabric.advance_to(SimTime::from_micros(100));
        assert_eq!(a.pending_rx(), 1);
    }

    #[test]
    fn tracer_records_when_enabled() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig::ideal());
        fabric.tracer().set_enabled(true);
        let (a, b) = two_endpoints(&fabric);
        a.transmit(b.mac(), vec![1, 2]);
        fabric.deliver_due();
        let events = fabric.tracer().snapshot();
        assert_eq!(events.len(), 2);
        assert!(matches!(events[0], TraceEvent::Transmit { len: 2, .. }));
        assert!(matches!(events[1], TraceEvent::Deliver { len: 2, .. }));
    }

    #[test]
    #[should_panic(expected = "registered twice")]
    fn duplicate_registration_panics() {
        let fabric = Fabric::new(1);
        let _a = fabric.register_endpoint(MacAddress::from_last_octet(1));
        let _b = fabric.register_endpoint(MacAddress::from_last_octet(1));
    }

    #[test]
    fn deregistered_endpoint_stops_receiving() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig::ideal());
        let (a, b) = two_endpoints(&fabric);
        fabric.deregister_endpoint(b.mac());
        a.transmit(b.mac(), vec![1]);
        fabric.deliver_due();
        assert_eq!(fabric.stats().frames_dropped, 1);
    }

    #[test]
    fn advance_to_delivers_intermediate_events() {
        let fabric = Fabric::new(1);
        fabric.set_default_link(LinkConfig {
            latency: SimTime::from_micros(2),
            bandwidth_bps: 0,
            loss_probability: 0.0,
        });
        let (a, b) = two_endpoints(&fabric);
        a.transmit(b.mac(), vec![1]);
        fabric.clock().advance_to(SimTime::from_micros(1));
        a.transmit(b.mac(), vec![2]);
        fabric.advance_to(SimTime::from_millis(1));
        assert_eq!(b.pending_rx(), 2);
        assert_eq!(fabric.clock().now(), SimTime::from_millis(1));
        assert_eq!(fabric.in_flight(), 0);
    }
}
