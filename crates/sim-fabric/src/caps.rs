//! Device capability descriptors (paper Table 1).
//!
//! The paper categorizes kernel-bypass accelerators by which OS features
//! they implement in hardware: some provide only kernel bypass (DPDK/SPDK),
//! some add a subset of OS features (RDMA's reliable transport), and some
//! offer arbitrary program offload (FPGA/SoC SmartNICs). Each simulated
//! device exports a [`DeviceCaps`] so experiment E7 can regenerate the
//! table and assert which features a libOS must supply per device.

/// What a kernel-bypass device implements in "hardware".
///
/// Every `false` here is OS functionality the library OS must provide on
/// the CPU — the central observation of paper §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeviceCaps {
    /// Device name, e.g. `"dpdk-sim"`.
    pub name: &'static str,
    /// Table-1 column this device belongs to.
    pub category: DeviceCategory,
    /// Applications reach the device without kernel transitions.
    pub kernel_bypass: bool,
    /// Device multiplexes itself among applications (SR-IOV-style).
    pub multiplexing: bool,
    /// Device translates user-space addresses (IOMMU-style).
    pub address_translation: bool,
    /// Device delivers data reliably (retransmission in hardware).
    pub reliable_transport: bool,
    /// Device implements a full network protocol stack.
    pub network_stack: bool,
    /// Device manages receive buffers for the application.
    pub buffer_management: bool,
    /// Device provides end-to-end flow control.
    pub flow_control: bool,
    /// Memory must be explicitly registered before I/O may touch it.
    pub explicit_registration_required: bool,
    /// Application-defined programs (filter/map/steer) can run on-device.
    pub program_offload: bool,
    /// Device exposes block storage.
    pub block_storage: bool,
}

/// The three columns of paper Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceCategory {
    /// "Kernel-bypass" only: DPDK/SPDK, Arrakis/Ix-style virtualization.
    BypassOnly,
    /// "+OS features": RDMA's limited networking stack.
    PlusOsFeatures,
    /// "+other features": FPGA/ARM-SoC SmartNICs with offload.
    PlusOtherFeatures,
}

impl DeviceCategory {
    /// Table-1 column heading.
    pub fn label(&self) -> &'static str {
        match self {
            DeviceCategory::BypassOnly => "Kernel-bypass",
            DeviceCategory::PlusOsFeatures => "+OS features",
            DeviceCategory::PlusOtherFeatures => "+other features",
        }
    }
}

impl DeviceCaps {
    /// The OS features this device is missing — what a libOS must supply.
    pub fn missing_os_features(&self) -> Vec<&'static str> {
        let mut missing = Vec::new();
        if !self.network_stack {
            missing.push("network stack");
        }
        if !self.reliable_transport {
            missing.push("reliable transport");
        }
        if !self.buffer_management {
            missing.push("buffer management");
        }
        if !self.flow_control {
            missing.push("flow control");
        }
        if self.explicit_registration_required {
            missing.push("transparent memory registration");
        }
        missing
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dpdk_like() -> DeviceCaps {
        DeviceCaps {
            name: "test-dpdk",
            category: DeviceCategory::BypassOnly,
            kernel_bypass: true,
            multiplexing: true,
            address_translation: true,
            reliable_transport: false,
            network_stack: false,
            buffer_management: false,
            flow_control: false,
            explicit_registration_required: true,
            program_offload: false,
            block_storage: false,
        }
    }

    #[test]
    fn missing_features_lists_everything_a_libos_supplies() {
        let caps = dpdk_like();
        let missing = caps.missing_os_features();
        assert!(missing.contains(&"network stack"));
        assert!(missing.contains(&"reliable transport"));
        assert!(missing.contains(&"buffer management"));
        assert!(missing.contains(&"flow control"));
        assert!(missing.contains(&"transparent memory registration"));
    }

    #[test]
    fn rdma_like_is_missing_less() {
        let caps = DeviceCaps {
            name: "test-rdma",
            category: DeviceCategory::PlusOsFeatures,
            reliable_transport: true,
            ..dpdk_like()
        };
        let missing = caps.missing_os_features();
        assert!(!missing.contains(&"reliable transport"));
        assert!(missing.contains(&"buffer management"));
    }

    #[test]
    fn category_labels_match_table_1() {
        assert_eq!(DeviceCategory::BypassOnly.label(), "Kernel-bypass");
        assert_eq!(DeviceCategory::PlusOsFeatures.label(), "+OS features");
        assert_eq!(DeviceCategory::PlusOtherFeatures.label(), "+other features");
    }
}
