//! Lightweight event tracing for debugging and experiment forensics.
//!
//! The tracer records a bounded ring of fabric-level events (transmissions,
//! deliveries, drops). It is off by default — experiments enable it when a
//! run needs to be audited (e.g., verifying that a TCP retransmission really
//! was triggered by a simulated loss and not a stack bug).

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::clock::SimTime;
use crate::fabric::MacAddress;

/// One recorded fabric event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceEvent {
    /// A frame was accepted for transmission.
    Transmit {
        /// Virtual instant of the send.
        at: SimTime,
        /// Source endpoint.
        src: MacAddress,
        /// Destination endpoint (or broadcast).
        dst: MacAddress,
        /// Frame length in bytes.
        len: usize,
    },
    /// A frame was delivered into a mailbox.
    Deliver {
        /// Virtual instant of the delivery.
        at: SimTime,
        /// Receiving endpoint.
        dst: MacAddress,
        /// Frame length in bytes.
        len: usize,
    },
    /// A frame was dropped by the link loss model.
    Drop {
        /// Virtual instant of the drop decision.
        at: SimTime,
        /// Source endpoint.
        src: MacAddress,
        /// Intended destination.
        dst: MacAddress,
        /// Frame length in bytes.
        len: usize,
    },
}

impl TraceEvent {
    /// The instant the event occurred.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Transmit { at, .. }
            | TraceEvent::Deliver { at, .. }
            | TraceEvent::Drop { at, .. } => *at,
        }
    }
}

/// A bounded, shared ring buffer of [`TraceEvent`]s.
#[derive(Clone)]
pub struct Tracer {
    inner: Rc<RefCell<TracerInner>>,
}

struct TracerInner {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    enabled: bool,
}

impl Tracer {
    /// Creates a disabled tracer holding at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Tracer {
            inner: Rc::new(RefCell::new(TracerInner {
                events: VecDeque::new(),
                capacity,
                enabled: false,
            })),
        }
    }

    /// Turns recording on or off.
    pub fn set_enabled(&self, enabled: bool) {
        self.inner.borrow_mut().enabled = enabled;
    }

    /// Whether recording is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.borrow().enabled
    }

    /// Records an event, evicting the oldest when full. No-op when disabled.
    pub fn record(&self, event: TraceEvent) {
        let mut inner = self.inner.borrow_mut();
        if !inner.enabled {
            return;
        }
        if inner.events.len() == inner.capacity {
            inner.events.pop_front();
        }
        inner.events.push_back(event);
    }

    /// Takes a snapshot of the recorded events, oldest first.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.inner.borrow().events.iter().cloned().collect()
    }

    /// Clears recorded events (recording state is unchanged).
    pub fn clear(&self) {
        self.inner.borrow_mut().events.clear();
    }

    /// Number of drop events currently recorded.
    pub fn drop_count(&self) -> usize {
        self.inner
            .borrow()
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::Drop { .. }))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mac(last: u8) -> MacAddress {
        MacAddress::new([2, 0, 0, 0, 0, last])
    }

    fn tx(at_ns: u64) -> TraceEvent {
        TraceEvent::Transmit {
            at: SimTime::from_nanos(at_ns),
            src: mac(1),
            dst: mac(2),
            len: 64,
        }
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::new(4);
        t.record(tx(1));
        assert!(t.snapshot().is_empty());
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Tracer::new(2);
        t.set_enabled(true);
        t.record(tx(1));
        t.record(tx(2));
        t.record(tx(3));
        let snap = t.snapshot();
        assert_eq!(snap.len(), 2);
        assert_eq!(snap[0].at(), SimTime::from_nanos(2));
        assert_eq!(snap[1].at(), SimTime::from_nanos(3));
    }

    #[test]
    fn drop_count_filters_drops() {
        let t = Tracer::new(8);
        t.set_enabled(true);
        t.record(tx(1));
        t.record(TraceEvent::Drop {
            at: SimTime::from_nanos(2),
            src: mac(1),
            dst: mac(2),
            len: 64,
        });
        assert_eq!(t.drop_count(), 1);
        t.clear();
        assert_eq!(t.drop_count(), 0);
        assert!(t.is_enabled());
    }
}
