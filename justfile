# Developer entry points. `just verify` is the pre-merge gate.

# Build, test, and lint — everything CI would reject.
verify:
    cargo build --release
    cargo test -q
    cargo clippy -- -D warnings

# Everything `verify` checks, across the whole workspace.
verify-all:
    cargo build --workspace --release
    cargo test --workspace -q
    cargo clippy --workspace --all-targets -- -D warnings

# Regenerate every experiment table (E1–E11).
experiments:
    cargo bench -p demi-bench
