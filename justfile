# Developer entry points. `just verify` is the pre-merge gate.

# Build, test, and lint — everything CI would reject. The release-mode
# zero_copy_memory run asserts the datapath counter invariants (1 alloc,
# 0 payload copies per packet) under the same optimization level E12 uses;
# the release-mode batching run asserts the E13 counter invariants the
# same way (single-doorbell TX bursts, delayed-ACK timing, O(1)
# completion delivery); the release-mode sharding run asserts the E14
# invariants (symmetric RSS, wheel-vs-linear timer equivalence, zero
# cross-shard traffic, silent timers for idle connections); the
# release-mode telemetry run asserts the E15 invariants (causally ordered
# spans, zero-alloc sample recording, bounded span ring, catnip tail
# beating the kernel baseline); the release-mode multicore run asserts
# the E16 invariants (byte streams identical across exec modes,
# cross-thread handoff delivery, bounded handoff drops, merged
# cross-thread metrics); the release-mode offload run asserts the E17
# invariants (device path observationally equivalent to host-only,
# mid-stream uninstall fallback, write-through cache coherence, per-slot
# device-cycle attribution); the release-mode timewait and conn_scale
# runs assert the E18 invariants (wire-identical compact TIME_WAIT,
# bounded idle footprint, O(backlog) SYN-flood memory, zero-alloc
# steady-state echo); the release-mode kv run asserts the E19 invariants
# (pipelined RESP bursts drained in one engine pass, zero payload copies
# through the warmed GET path, host/device cache write-through coherence,
# group-commit replay of exactly the acknowledged state); the release-mode
# tenant run asserts the E20 invariants (port-ownership gates, bounded
# per-tenant TX lanes, weighted-fair DRR even under sub-quantum budgets,
# token-bucket pacing on virtual time, partitioned SYN/TIME_WAIT state,
# cross-tenant buffer denial, and the hostile-neighbour differential
# property).
verify:
    cargo build --release
    cargo test -q
    cargo test --release -q --test zero_copy_memory
    cargo test --release -q --test batching
    cargo test --release -q --test sharding
    cargo test --release -q --test telemetry
    cargo test --release -q --test multicore
    cargo test --release -q --test offload
    cargo test --release -q --test timewait
    cargo test --release -q --test conn_scale
    cargo test --release -q --test kv
    cargo test --release -q --test tenant
    cargo fmt --check
    cargo clippy -- -D warnings

# Everything `verify` checks, across the whole workspace.
verify-all:
    cargo build --workspace --release
    cargo test --workspace -q
    DEMI_EXEC_MODE=threads cargo test -q
    cargo test --release -q --test zero_copy_memory
    cargo test --release -q --test batching
    cargo test --release -q --test sharding
    cargo test --release -q --test telemetry
    cargo test --release -q --test multicore
    cargo test --release -q --test offload
    cargo test --release -q --test timewait
    cargo test --release -q --test conn_scale
    cargo test --release -q --test kv
    cargo test --release -q --test tenant
    cargo fmt --check
    cargo clippy --workspace --all-targets -- -D warnings

# Regenerate every experiment table (E1–E20).
experiments:
    cargo bench -p demi-bench

# The zero-copy datapath experiment alone: asserted per-packet
# alloc/copy counters plus the prepend-vs-legacy-builders criterion A/B.
bench-datapath:
    cargo bench -p demi-bench --bench e12_datapath_copies

# The batching experiment alone: the coalesced-vs-per-frame A/B with its
# asserted handoff-amortization, ACK-coalescing, and latency bounds.
bench-batching:
    cargo bench -p demi-bench --bench e13_batching

# The sharding experiment alone: RSS flow affinity, idle-connection
# timer cost, and the 4-vs-1 shard makespan A/B with asserted bounds.
bench-sharding:
    cargo bench -p demi-bench --bench e14_sharding

# The tail-latency experiment alone: open-loop Poisson throughput–latency
# curves with asserted low-load, saturation, and zero-alloc bounds; the
# measured curve lands in target/e15_tail_latency.json.
bench-telemetry:
    cargo bench -p demi-bench --bench e15_tail_latency

# The multi-core experiment alone: fixed-ops echo and KV workloads over
# 4 shard worlds, sequential vs thread-per-shard wall clock, with the
# asserted mode-independence and tail bounds (the >= 3x speedup assert
# arms only on hosts with >= 4 CPUs).
bench-multicore:
    cargo bench -p demi-bench --bench e16_multicore

# The device-offload experiment alone: NIC-served echo and KV GET vs
# their host-served twins (asserted >= 80% host-work reduction, full
# device-side service, charged device cycles), the 1-submission 8-hop
# storage chase, and the zero-alloc in-place Map path; the NIC-served
# echo RTT curve lands in target/bench_e17.json.
bench-offload:
    cargo bench -p demi-bench --bench e17_offload

# The connection-scale experiment alone: 100k established connections on
# one peer with asserted idle bytes/conn, p99 flatness 100 -> 100k, a
# zero-alloc steady-state echo window, 10x SYN-flood isolation, and
# TIME_WAIT churn recycling; results land in target/e18_conn_scale.json.
bench-connscale:
    cargo bench -p demi-bench --bench e18_conn_scale

# The KV-server experiment alone: the Redis-class RESP server over
# catnip with asserted >= 4x pipelining speedup at depth 16, zero
# payload-byte copies per warmed GET, p99 flatness 1k -> 100k
# connections, an open-loop Poisson GET/SET curve, and crash-replay of
# exactly the acknowledged SETs; results land in target/e19_kv_server.json.
bench-kv:
    cargo bench -p demi-bench --bench e19_kv_server

# The multi-tenant isolation experiment alone: a hostile tenant flooding
# TX at 10x+ its fair share, leaking its pool dry, and spraying SYNs,
# with asserted victim bounds (p99 <= 2x the hostile-absent baseline,
# >= 90% of the weighted fair share, untouched SYN/TIME_WAIT partitions,
# zero cross-tenant buffer views) plus the shared-FIFO contrast case;
# results land in target/e20_tenant_isolation.json.
bench-tenant:
    cargo bench -p demi-bench --bench e20_tenant_isolation
