//! demikernel-suite: the workspace umbrella.
//!
//! Re-exports every crate of the reproduction of *"I'm Not Dead Yet! The
//! Role of the Operating System in a Kernel-Bypass Era"* (HotOS '19) so
//! that integration tests (`tests/`) and examples (`examples/`) can reach
//! the full system through one dependency.
//!
//! Layering, bottom to top:
//!
//! * [`sim_fabric`] — virtual-time event fabric (the "datacenter network");
//! * [`demi_sched`] / [`demi_memory`] — coroutine scheduler and zero-copy
//!   memory manager;
//! * [`dpdk_sim`], [`rdma_sim`], [`spdk_sim`] — the simulated kernel-bypass
//!   devices (paper Table 1);
//! * [`net_stack`] — the user-level network stack a DPDK-class libOS must
//!   supply;
//! * [`posix_sim`] — the simulated legacy kernel (the baseline);
//! * [`demikernel`] — the paper's contribution: the queue abstraction, the
//!   system-call interface, and the library OSes.

pub use demi_memory;
pub use demi_sched;
pub use demikernel;
pub use dpdk_sim;
pub use net_stack;
pub use posix_sim;
pub use rdma_sim;
pub use sim_fabric;
pub use spdk_sim;
