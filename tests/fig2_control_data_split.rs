//! Figure 2: the Demikernel architecture splits OS functionality into a
//! control path (may involve the legacy kernel) and a data path (never
//! does). These tests trace both during a realistic run.

use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnap_pair, catnip_pair, host_ip};
use demikernel::types::Sga;
use net_stack::types::SocketAddr;

#[test]
fn kernel_bypass_data_path_never_crosses() {
    let (rt, _fabric, client, server) = catnip_pair(201);
    // Control path: setup.
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();
    let control = rt.metrics().snapshot();
    assert!(
        control.control_path_syscalls > 0,
        "setup is allowed (and expected) to be control-path work"
    );

    // Data path: one thousand request/response pairs.
    rt.metrics().reset();
    for _ in 0..1000 {
        client
            .pushto(
                cqd,
                &Sga::from_slice(b"req"),
                SocketAddr::new(host_ip(2), 7),
            )
            .unwrap();
        let (from, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        server.pushto(sqd, &sga, from.unwrap()).unwrap();
        let _ = client.blocking_pop(cqd).unwrap();
    }
    let data = rt.metrics().snapshot();
    assert_eq!(
        data.data_path_syscalls, 0,
        "Fig. 2: the data path must never enter the kernel"
    );
    assert_eq!(data.pushes, 2000);
    assert_eq!(data.pops, 2000);
}

#[test]
fn traditional_architecture_crosses_on_every_io() {
    let (_rt, _fabric, client, server) = catnap_pair(202);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();

    client.sim_kernel().reset_stats();
    server.sim_kernel().reset_stats();
    for _ in 0..100 {
        client
            .pushto(
                cqd,
                &Sga::from_slice(b"req"),
                SocketAddr::new(host_ip(2), 7),
            )
            .unwrap();
        let (from, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        server.pushto(sqd, &sga, from.unwrap()).unwrap();
        let _ = client.blocking_pop(cqd).unwrap();
    }
    let ck = client.kernel_stats().unwrap();
    let sk = server.kernel_stats().unwrap();
    // Each sendto is one syscall + one copy; each receive costs at least
    // one syscall (polling) + one copy. 100 round trips → ≥400 crossings
    // and exactly 400 payload copies across both hosts.
    assert!(ck.syscalls >= 200, "client crossings: {}", ck.syscalls);
    assert!(sk.syscalls >= 200, "server crossings: {}", sk.syscalls);
    assert_eq!(ck.copies + sk.copies, 400);
}

#[test]
fn per_request_crossing_counts_match_fig1() {
    // The Fig. 1 contrast, quantified per request: bypass = 0 crossings,
    // traditional ≥ 2 (send + receive) per host.
    let (rt, _f1, bypass_client, bypass_server) = catnip_pair(203);
    let sqd = bypass_server.socket(SocketKind::Udp).unwrap();
    bypass_server
        .bind(sqd, SocketAddr::new(host_ip(2), 7))
        .unwrap();
    let cqd = bypass_client.socket(SocketKind::Udp).unwrap();
    bypass_client
        .bind(cqd, SocketAddr::new(host_ip(1), 9000))
        .unwrap();
    // Warm up ARP, then measure one request.
    bypass_client
        .pushto(
            cqd,
            &Sga::from_slice(b"warm"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let _ = bypass_server.blocking_pop(sqd).unwrap();
    rt.metrics().reset();
    bypass_client
        .pushto(
            cqd,
            &Sga::from_slice(b"one"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let _ = bypass_server.blocking_pop(sqd).unwrap();
    assert_eq!(rt.metrics().snapshot().data_path_syscalls, 0);

    let (_rt2, _f2, kernel_client, kernel_server) = catnap_pair(204);
    let sqd = kernel_server.socket(SocketKind::Udp).unwrap();
    kernel_server
        .bind(sqd, SocketAddr::new(host_ip(2), 7))
        .unwrap();
    let cqd = kernel_client.socket(SocketKind::Udp).unwrap();
    kernel_client
        .bind(cqd, SocketAddr::new(host_ip(1), 9000))
        .unwrap();
    kernel_client
        .pushto(
            cqd,
            &Sga::from_slice(b"warm"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let _ = kernel_server.blocking_pop(sqd).unwrap();
    kernel_client.sim_kernel().reset_stats();
    kernel_server.sim_kernel().reset_stats();
    kernel_client
        .pushto(
            cqd,
            &Sga::from_slice(b"one"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let _ = kernel_server.blocking_pop(sqd).unwrap();
    let crossings = kernel_client.kernel_stats().unwrap().syscalls
        + kernel_server.kernel_stats().unwrap().syscalls;
    assert!(crossings >= 2, "traditional path: {crossings} crossings");
}
