//! Waker-correctness properties of the readiness scheduler.
//!
//! The waker protocol has three load-bearing guarantees the rest of the
//! system leans on:
//!
//! 1. a task woken *while it is being polled* lands on the run queue
//!    exactly once, no matter how many times its waker fires;
//! 2. dropping a cloned waker neither wakes nor strands its task — the
//!    task stays parked and any surviving clone still completes it;
//! 3. waking a task that already completed is a no-op, even when its slot
//!    has been recycled for a new task.

use std::cell::{Cell, RefCell};
use std::future::poll_fn;
use std::rc::Rc;
use std::task::{Poll, Waker};

use demi_sched::Scheduler;
use proptest::prelude::*;

proptest! {
    /// Mid-poll wakes dedup: however many times the waker fires during the
    /// poll, the task is re-queued exactly once, and only one extra wakeup
    /// is recorded.
    #[test]
    fn midpoll_wake_requeues_exactly_once(wakes in 1usize..8) {
        let sched = Scheduler::new();
        let polls = Rc::new(Cell::new(0usize));
        let polls_in = polls.clone();
        let handle = sched.spawn("self-waker", poll_fn(move |cx| {
            let n = polls_in.get();
            polls_in.set(n + 1);
            if n == 0 {
                // The scheduled flag was cleared just before this poll; every
                // wake past the first must dedup against the re-queued entry.
                for _ in 0..wakes {
                    cx.waker().wake_by_ref();
                }
                Poll::Pending
            } else {
                Poll::Ready(())
            }
        }));

        // Pass 1: the spawn entry; the task self-wakes mid-poll.
        let first = sched.run_pass();
        prop_assert_eq!(first.polled, 1);
        prop_assert_eq!(first.completed, 0);

        // Pass 2: exactly one re-queued entry, which completes the task.
        let second = sched.run_pass();
        prop_assert_eq!(second.polled, 1);
        prop_assert_eq!(second.completed, 1);
        prop_assert_eq!(polls.get(), 2);
        prop_assert!(!sched.has_runnable());
        prop_assert!(handle.is_complete());

        // One wakeup for the whole mid-poll barrage: the first call
        // re-queued the task, the other `wakes - 1` were absorbed.
        prop_assert_eq!(sched.stats().wakeups, 1);
    }

    /// Wake-after-complete is a no-op: stale wakers — even many of them,
    /// fired after their task's slot was recycled for a new task — neither
    /// re-poll the dead task nor spuriously poll the slot's new tenant.
    #[test]
    fn wake_after_complete_is_noop(stale_wakes in 1usize..8) {
        let sched = Scheduler::new();
        let stash: Rc<RefCell<Option<Waker>>> = Rc::new(RefCell::new(None));

        let stash_in = stash.clone();
        let first_poll = Cell::new(true);
        let a = sched.spawn("short-lived", poll_fn(move |cx| {
            if first_poll.replace(false) {
                *stash_in.borrow_mut() = Some(cx.waker().clone());
                cx.waker().wake_by_ref(); // Immediately re-arm...
                Poll::Pending
            } else {
                Poll::Ready(()) // ...and complete on the next pass.
            }
        }));
        sched.run_pass();
        sched.run_pass();
        assert!(a.is_complete());
        assert_eq!(sched.live_tasks(), 0);

        // Recycle the slot: a new parked task takes the dead task's index.
        let _b = sched.spawn("slot-reuser", poll_fn(|_| Poll::<()>::Pending));
        sched.run_pass();
        let polls_before = sched.stats().polls;

        // Fire the dead task's waker, repeatedly.
        let stale = stash.borrow_mut().take().expect("first poll stashed it");
        for _ in 0..stale_wakes {
            stale.wake_by_ref();
        }

        // Nothing becomes runnable and nothing gets polled — not the dead
        // task, and not the slot's new tenant.
        prop_assert!(!sched.has_runnable());
        prop_assert_eq!(sched.run_pass().polled, 0);
        prop_assert_eq!(sched.stats().polls, polls_before);
        prop_assert_eq!(sched.live_tasks(), 1);
    }
}

/// Dropping a cloned waker is not a wake and not a leak: the task stays
/// parked (never spuriously polled), a surviving clone still completes it,
/// and completion frees the slot.
#[test]
fn dropped_waker_neither_wakes_nor_strands() {
    let sched = Scheduler::new();
    let stash: Rc<RefCell<Vec<Waker>>> = Rc::new(RefCell::new(Vec::new()));

    let stash_in = stash.clone();
    let handle = sched.spawn(
        "parker",
        poll_fn(move |cx| {
            let mut s = stash_in.borrow_mut();
            if s.is_empty() {
                // Park, leaving two waker clones with the outside world.
                s.push(cx.waker().clone());
                s.push(cx.waker().clone());
                Poll::Pending
            } else {
                Poll::Ready(())
            }
        }),
    );
    sched.run_pass();
    assert!(!sched.has_runnable(), "task parked");

    // Drop one clone without waking: no wake, no poll, no lost task.
    let dropped = stash.borrow_mut().pop().expect("two clones stashed");
    drop(dropped);
    assert!(!sched.has_runnable());
    assert_eq!(sched.run_pass().polled, 0);
    assert_eq!(sched.live_tasks(), 1, "task neither woken nor lost");
    assert_eq!(sched.stats().wakeups, 0, "a dropped waker is not a wake");

    // The surviving clone still works: wake it, and the task completes.
    let survivor = stash.borrow_mut()[0].clone();
    survivor.wake();
    let report = sched.run_pass();
    assert_eq!(report.polled, 1);
    assert_eq!(report.completed, 1);
    assert!(handle.is_complete());
    assert_eq!(sched.live_tasks(), 0, "slot freed on completion");
}
