//! Device-side offload programs (PR 7, toward E17).
//!
//! The offload contract is *observational equivalence*: installing a NIC
//! program changes where work happens (host cycles vs device cycles),
//! never what the application sees. These tests pin that from above:
//!
//! * the *differential* property — a random GET/SET workload and a random
//!   echo stream produce byte-identical replies and final store contents
//!   with and without the offload installed, including a mid-stream
//!   uninstall (the device hands absorbed bytes back to the host, losing
//!   nothing) and SET-under-cache invalidation races;
//! * the offload actually offloads: with an armed flow, echo replies and
//!   KV GET hits are served on the device (counted per program slot),
//!   and the host never sees the served requests.

use std::collections::HashMap;

use demikernel::libos::catnip::Catnip;
use demikernel::libos::{LibOs, SocketKind};
use demikernel::runtime::Runtime;
use demikernel::testing::{catnip_pair, catnip_pair_offload, host_ip};
use demikernel::types::{OperationResult, QDesc, Sga};
use net_stack::types::SocketAddr;
use proptest::prelude::*;
use sim_fabric::SimTime;

const KV_PORT: u16 = 6379;
const ECHO_PORT: u16 = 7001;

/// Idle time long enough for delayed ACKs to flush so the device re-arms
/// a quiescent flow after a host-served fallback.
fn quiesce(rt: &Runtime) {
    rt.settle(SimTime::from_micros(50_000));
}

/// Connects client to a freshly-listening server; returns (client qd,
/// server connection qd).
fn tcp_pair(client: &Catnip, server: &Catnip, port: u16) -> (QDesc, QDesc) {
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), port)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), port))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();
    (cqd, sqd)
}

/// One lock-step request: push, await the push, pop one framed reply.
fn request(client: &Catnip, qd: QDesc, req: &[u8]) -> Vec<u8> {
    client.blocking_push(qd, &Sga::from_slice(req)).unwrap();
    let (_, reply) = client.blocking_pop(qd).unwrap().expect_pop();
    reply.to_vec()
}

/// The kv_store server loop: pops framed requests, serves GET/SET, and
/// publishes GET values into the device cache after each miss (a no-op
/// when no offload is installed — the differential property hinges on
/// this changing nothing observable).
fn spawn_kv_server(
    rt: &Runtime,
    server: &Catnip,
    sqd: QDesc,
    mut store: HashMap<Vec<u8>, Vec<u8>>,
) {
    let server_clone = server.clone();
    rt.spawn_background("kv-server", async move {
        loop {
            let Ok(pop_qt) = server_clone.pop(sqd) else {
                return;
            };
            let OperationResult::Pop { sga, .. } = server_clone.runtime().await_op(pop_qt).await
            else {
                return;
            };
            let req = sga.to_vec();
            let reply: Vec<u8> = match req.first() {
                Some(b'G') => match store.get(&req[1..]) {
                    Some(v) => {
                        server_clone.offload_cache_insert(&req[1..], v);
                        let mut r = vec![b'V'];
                        r.extend_from_slice(v);
                        r
                    }
                    None => vec![b'N'],
                },
                Some(b'S') => {
                    let eq = req.iter().position(|&b| b == b'=').unwrap_or(req.len());
                    store.insert(req[1..eq].to_vec(), req[eq + 1..].to_vec());
                    vec![b'O']
                }
                _ => vec![b'E'],
            };
            let Ok(push_qt) = server_clone.push(sqd, &Sga::from_slice(&reply)) else {
                return;
            };
            let _ = server_clone.runtime().await_op(push_qt).await;
        }
    });
}

// ---------------------------------------------------------------------
// Differential: offloaded ≡ host-only, including mid-stream uninstall.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum KvOp {
    Get(u8),
    Set(u8, u8),
}

/// Draws GETs and SETs over a small key space (6 keys), so runs revisit
/// keys often enough to race SETs against device-cached values.
#[derive(Debug, Clone, Copy)]
struct KvOpStrategy;

impl Strategy for KvOpStrategy {
    type Value = KvOp;
    fn generate(&self, rng: &mut proptest::TestRng) -> KvOp {
        if rng.below(2) == 0 {
            KvOp::Get(rng.below(6) as u8)
        } else {
            KvOp::Set(rng.below(6) as u8, rng.next_u64() as u8)
        }
    }
}

/// Runs a GET/SET workload against the kv server, optionally offloaded,
/// optionally uninstalling the program before op `uninstall_at`. Returns
/// (per-op replies, final store contents, device GET hits).
fn run_kv(
    offloaded: bool,
    seed: u64,
    ops: &[KvOp],
    uninstall_at: Option<usize>,
) -> (Vec<Vec<u8>>, Vec<Vec<u8>>, u64) {
    let (rt, _fabric, client, server) = if offloaded {
        catnip_pair_offload(seed, 4)
    } else {
        catnip_pair(seed)
    };
    let (cqd, sqd) = tcp_pair(&client, &server, KV_PORT);
    if offloaded {
        // Small capacity: long workloads also exercise LRU eviction.
        server.install_kv_offload(KV_PORT, 512).unwrap();
    }

    spawn_kv_server(&rt, &server, sqd, HashMap::new());

    let mut replies = Vec::new();
    let mut hits_at_uninstall = None;
    for (i, op) in ops.iter().enumerate() {
        if uninstall_at == Some(i) {
            // Uninstall drops the engine (and its counters) — keep them.
            hits_at_uninstall = server.offload_stats().map(|s| s.kv_hits);
            server.uninstall_tcp_offload();
        }
        let req = match op {
            KvOp::Get(k) => format!("Gk{k}").into_bytes(),
            KvOp::Set(k, v) => format!("Sk{k}=v{v}").into_bytes(),
        };
        replies.push(request(&client, cqd, &req));
        quiesce(&rt);
    }
    let finals = (0..6)
        .map(|k| request(&client, cqd, format!("Gk{k}").as_bytes()))
        .collect();
    let hits = server
        .offload_stats()
        .map(|s| s.kv_hits)
        .or(hits_at_uninstall)
        .unwrap_or(0);
    (replies, finals, hits)
}

/// Runs an echo stream (message `i` = `lens[i]` bytes of a deterministic
/// fill), optionally offloaded. Returns (per-op replies, device serves).
fn run_echo(
    offloaded: bool,
    seed: u64,
    lens: &[u16],
    uninstall_at: Option<usize>,
) -> (Vec<Vec<u8>>, u64) {
    let (rt, _fabric, client, server) = if offloaded {
        catnip_pair_offload(seed, 4)
    } else {
        catnip_pair(seed)
    };
    let (cqd, sqd) = tcp_pair(&client, &server, ECHO_PORT);
    if offloaded {
        server.install_echo_offload(ECHO_PORT).unwrap();
    }

    // Host-side echo: serves whatever the device does not.
    let server_clone = server.clone();
    rt.spawn_background("echo-server", async move {
        loop {
            let Ok(pop_qt) = server_clone.pop(sqd) else {
                return;
            };
            let OperationResult::Pop { sga, .. } = server_clone.runtime().await_op(pop_qt).await
            else {
                return;
            };
            let Ok(push_qt) = server_clone.push(sqd, &sga) else {
                return;
            };
            let _ = server_clone.runtime().await_op(push_qt).await;
        }
    });

    let mut replies = Vec::new();
    let mut served_at_uninstall = None;
    for (i, &len) in lens.iter().enumerate() {
        if uninstall_at == Some(i) {
            served_at_uninstall = server.offload_stats().map(|s| s.served);
            server.uninstall_tcp_offload();
        }
        let fill = (seed as u8).wrapping_add(i as u8);
        let msg = vec![fill; len as usize];
        let reply = request(&client, cqd, &msg);
        assert_eq!(reply, msg, "echo must return the message verbatim");
        replies.push(reply);
        quiesce(&rt);
    }
    let served = server
        .offload_stats()
        .map(|s| s.served)
        .or(served_at_uninstall)
        .unwrap_or(0);
    (replies, served)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any GET/SET interleaving — SETs racing cached values, a mid-stream
    /// uninstall included — yields identical replies and identical final
    /// store contents with and without the NIC-resident GET cache.
    #[test]
    fn kv_offload_is_observationally_equivalent(
        seed in any::<u64>(),
        ops in prop::collection::vec(KvOpStrategy, 1..14),
        uninstall in 0usize..28,
    ) {
        // Values past the op list mean "never uninstall" (~half the cases).
        let uninstall_at = (uninstall < ops.len()).then_some(uninstall);
        let host = run_kv(false, seed, &ops, uninstall_at);
        let dev = run_kv(true, seed, &ops, uninstall_at);
        prop_assert_eq!(&host.0, &dev.0, "per-op replies diverged");
        prop_assert_eq!(&host.1, &dev.1, "final store contents diverged");
        prop_assert_eq!(host.2, 0, "host-only world must not count device hits");
    }

    /// Any echo stream — including messages too large for the device
    /// (reply > MSS falls back to the host) and a mid-stream uninstall —
    /// comes back byte-identical with and without the NIC short-circuit.
    #[test]
    fn echo_offload_is_observationally_equivalent(
        seed in any::<u64>(),
        lens in prop::collection::vec(1u16..1500, 1..10),
        uninstall in 0usize..20,
    ) {
        let uninstall_at = (uninstall < lens.len()).then_some(uninstall);
        let host = run_echo(false, seed, &lens, uninstall_at);
        let dev = run_echo(true, seed, &lens, uninstall_at);
        prop_assert_eq!(&host.0, &dev.0, "echo byte streams diverged");
        prop_assert_eq!(host.1, 0, "host-only world must not count device serves");
        // Non-vacuousness: a small first message on a never-uninstalled
        // armed flow must actually be served by the device.
        if uninstall_at != Some(0) && lens[0] <= 1400 {
            prop_assert!(dev.1 >= 1, "offload never served (lens {:?})", &lens);
        }
    }
}

// ---------------------------------------------------------------------
// The offload offloads: device counters move, host never sees the ops.
// ---------------------------------------------------------------------

/// With an armed flow, every small echo is served on the NIC: the device
/// slot counters attribute the work, and uninstalling returns the flow to
/// the host with nothing lost.
#[test]
fn echo_offload_serves_on_device_with_slot_attribution() {
    let (rt, _fabric, client, server) = catnip_pair_offload(11, 4);
    let (cqd, sqd) = tcp_pair(&client, &server, ECHO_PORT);
    // Host echo loop: idles while the device serves; takes over on
    // uninstall.
    let server_clone = server.clone();
    rt.spawn_background("echo-server", async move {
        loop {
            let Ok(pop_qt) = server_clone.pop(sqd) else {
                return;
            };
            let OperationResult::Pop { sga, .. } = server_clone.runtime().await_op(pop_qt).await
            else {
                return;
            };
            let Ok(push_qt) = server_clone.push(sqd, &sga) else {
                return;
            };
            let _ = server_clone.runtime().await_op(push_qt).await;
        }
    });
    server.install_echo_offload(ECHO_PORT).unwrap();
    quiesce(&rt); // Arm the (already quiescent) flow.
    assert_eq!(
        server.offload_stats().unwrap().flows_armed,
        1,
        "idle established flow must arm"
    );
    let before = rt.metrics().snapshot();

    for i in 0..10u8 {
        let msg = vec![i; 64];
        assert_eq!(request(&client, cqd, &msg), msg);
    }

    let stats = server.offload_stats().expect("offload installed");
    assert_eq!(stats.served, 10, "every echo is served on the NIC");
    assert_eq!(stats.fallbacks, 0, "no fallbacks on an in-order stream");
    let snap = rt.metrics().snapshot();
    let served: u64 = snap
        .nic_slot_served
        .iter()
        .zip(before.nic_slot_served)
        .map(|(a, b)| a - b)
        .sum();
    let cycles: u64 = snap
        .nic_slot_cycles
        .iter()
        .zip(before.nic_slot_cycles)
        .map(|(a, b)| a - b)
        .sum();
    assert_eq!(served, 10, "slot counters attribute the serves");
    assert!(cycles > 0, "device-served ops must charge device cycles");

    server.uninstall_tcp_offload();
    assert!(server.offload_stats().is_none());
    let msg = vec![0xEE; 64];
    assert_eq!(
        request(&client, cqd, &msg),
        msg,
        "host serves after uninstall"
    );
}

/// A warmed KV cache serves GET hits on the NIC; a SET invalidates
/// write-through and the next GET returns the fresh value.
#[test]
fn kv_offload_hits_on_device_and_stays_coherent() {
    let (rt, _fabric, client, server) = catnip_pair_offload(13, 4);
    let (cqd, sqd) = tcp_pair(&client, &server, KV_PORT);
    server.install_kv_offload(KV_PORT, 4096).unwrap();
    assert!(server.offload_cache_insert(b"alpha", b"one"));
    let mut store = HashMap::new();
    store.insert(b"alpha".to_vec(), b"one".to_vec());
    spawn_kv_server(&rt, &server, sqd, store);
    quiesce(&rt); // Arm the flow.

    // Device-served hit.
    assert_eq!(request(&client, cqd, b"Galpha").as_slice(), b"Vone");
    let stats = server.offload_stats().unwrap();
    assert_eq!(stats.kv_hits, 1, "warm GET is served on the NIC: {stats:?}");

    // The SET reaches the host and write-through-invalidates on the way.
    assert_eq!(request(&client, cqd, b"Salpha=two").as_slice(), b"O");
    assert!(
        server.offload_stats().unwrap().kv_invalidations >= 1,
        "device must observe the SET"
    );
    quiesce(&rt);
    assert_eq!(
        request(&client, cqd, b"Galpha").as_slice(),
        b"Vtwo",
        "a stale cached value must never shadow a newer SET"
    );
}
