//! Property-based tests over the system's core invariants.

use demi_memory::DemiBuffer;
use demikernel::libos::LibOs;
use demikernel::testing::catmem_world;
use demikernel::types::Sga;
use net_stack::checksum::{finish, internet_checksum, sum_words};
use net_stack::framing::{encode_message, FrameDecoder};
use proptest::prelude::*;

proptest! {
    /// Framing invariant: any sequence of messages, chopped into arbitrary
    /// chunks, reassembles into exactly the original messages in order.
    #[test]
    fn framing_round_trips_arbitrary_fragmentation(
        messages in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..2000), 1..20),
        chunk_sizes in prop::collection::vec(1usize..500, 1..50),
    ) {
        let mut wire = Vec::new();
        for m in &messages {
            wire.extend_from_slice(&encode_message(m));
        }
        let mut decoder = FrameDecoder::new();
        let mut out: Vec<Vec<u8>> = Vec::new();
        let mut pos = 0;
        let mut chunk_idx = 0;
        while pos < wire.len() {
            let take = chunk_sizes[chunk_idx % chunk_sizes.len()].min(wire.len() - pos);
            chunk_idx += 1;
            decoder.push_chunk(DemiBuffer::from_slice(&wire[pos..pos + take]));
            pos += take;
            while let Some(msg) = decoder.next_message().expect("stream is well-formed") {
                out.push(msg.to_vec());
            }
        }
        prop_assert_eq!(out, messages);
    }

    /// Internet checksum invariants: verification detects single-bit
    /// corruption, and incremental accumulation equals one-shot.
    #[test]
    fn checksum_detects_single_bit_flips(
        mut data in prop::collection::vec(any::<u8>(), 2..256),
        flip_bit in 0usize..2048,
    ) {
        // Append the checksum; full verify must fold to zero.
        let ck = internet_checksum(&data);
        if !data.len().is_multiple_of(2) {
            data.push(0); // Checksum placement needs word alignment.
        }
        data.extend_from_slice(&ck.to_be_bytes());
        prop_assert_eq!(internet_checksum(&data), 0);
        // Flip one bit anywhere: the fold must become nonzero.
        let bit = flip_bit % (data.len() * 8);
        data[bit / 8] ^= 1 << (bit % 8);
        prop_assert_ne!(internet_checksum(&data), 0);
    }

    #[test]
    fn checksum_incremental_equals_oneshot(
        data in prop::collection::vec(any::<u8>(), 0..512),
        split in 0usize..512,
    ) {
        let split = (split % (data.len() + 1)) / 2 * 2; // Even split point.
        let whole = internet_checksum(&data);
        let acc = sum_words(&data[..split], 0);
        let acc = sum_words(&data[split..], acc);
        prop_assert_eq!(finish(acc), whole);
    }

    /// DemiBuffer view algebra: any chain of slice/advance/truncate views
    /// equals the same operations on a plain byte vector.
    #[test]
    fn buffer_views_match_vec_semantics(
        data in prop::collection::vec(any::<u8>(), 1..256),
        ops in prop::collection::vec((0usize..256, 0usize..256), 0..8),
    ) {
        let mut buf = DemiBuffer::from_slice(&data);
        let mut model = data.clone();
        for (a, b) in ops {
            if model.is_empty() {
                break;
            }
            match a % 3 {
                0 => {
                    // slice(start, end)
                    let start = a % model.len();
                    let end = start + (b % (model.len() - start + 1));
                    buf = buf.slice(start, end);
                    model = model[start..end].to_vec();
                }
                1 => {
                    let n = b % (model.len() + 1);
                    buf.advance(n);
                    model.drain(..n);
                }
                _ => {
                    let n = b % (model.len() + 1);
                    buf.truncate(n);
                    model.truncate(n);
                }
            }
        }
        prop_assert_eq!(buf.as_slice(), &model[..]);
    }

    /// Sga invariant: total length equals the sum of segment lengths, and
    /// flattening preserves byte order across arbitrary segmentations.
    #[test]
    fn sga_flatten_preserves_content(
        segs in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..128), 0..10),
    ) {
        let mut sga = Sga::new();
        let mut expected = Vec::new();
        for s in &segs {
            sga.push_seg(DemiBuffer::from_slice(s));
            expected.extend_from_slice(s);
        }
        prop_assert_eq!(sga.len(), expected.len());
        prop_assert_eq!(sga.to_vec(), expected);
    }

    /// Queue invariant: catmem delivers any workload FIFO, each element
    /// atomic and intact.
    #[test]
    fn catmem_is_fifo_for_arbitrary_workloads(
        elements in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..512), 1..40),
    ) {
        let (_rt, libos) = catmem_world();
        let qd = libos.queue().unwrap();
        for e in &elements {
            libos.blocking_push(qd, &Sga::from_slice(e)).unwrap();
        }
        for e in &elements {
            let (_, sga) = libos.blocking_pop(qd).unwrap().expect_pop();
            prop_assert_eq!(&sga.to_vec(), e);
        }
    }

    /// Wrapping sequence arithmetic is a total order on any window of
    /// width < 2³¹.
    #[test]
    fn seqnum_ordering_is_window_consistent(base in any::<u32>(), a in 0u32..1_000_000, b in 0u32..1_000_000) {
        use net_stack::tcp::SeqNum;
        let x = SeqNum(base.wrapping_add(a));
        let y = SeqNum(base.wrapping_add(b));
        prop_assert_eq!(x.lt(y), a < b);
        prop_assert_eq!(x.le(y), a <= b);
        if a >= b {
            prop_assert_eq!(x.since(y), a - b);
        }
    }
}
