//! Property tests for the protocol machines: random loss, adversarial
//! bytes, and durability round trips.

use demi_memory::DemiBuffer;
use demikernel::libos::LibOs;
use demikernel::runtime::Runtime;
use demikernel::types::Sga;
use net_stack::tcp::{ControlBlock, State, TcpConfig};
use net_stack::types::SocketAddr;
use proptest::prelude::*;
use sim_fabric::{SimRng, SimTime};
use spdk_sim::nvme::{NvmeConfig, NvmeDevice};
use std::net::Ipv4Addr;

fn addr(last: u8, port: u16) -> SocketAddr {
    SocketAddr::new(Ipv4Addr::new(10, 0, 0, last), port)
}

/// Drives two control blocks over a lossy, zero-delay link until the
/// transfer completes; advances virtual time whenever the world goes
/// quiet so retransmission timers can fire.
fn lossy_transfer(seed: u64, data: &[u8], loss: f64) -> Vec<u8> {
    let config = TcpConfig {
        syn_retries: 30,
        ..TcpConfig::default()
    };
    let mut now = SimTime::from_millis(1);
    let mut rng = SimRng::new(seed);
    let mut client = ControlBlock::connect(
        addr(1, 40_000),
        addr(2, 80),
        net_stack::tcp::SeqNum(7_000),
        now,
        config,
    );
    // Deliver the SYN (possibly after retries) to create the server.
    let mut server: Option<ControlBlock> = None;
    let mut received: Vec<u8> = Vec::new();
    let mut sent = false;

    for _ in 0..200_000 {
        let mut moved = false;
        for seg in client.take_outbox() {
            moved = true;
            if rng.chance(loss) {
                continue;
            }
            match &mut server {
                None if seg.header.flags.syn => {
                    server = Some(ControlBlock::accept(
                        addr(2, 80),
                        addr(1, 40_000),
                        net_stack::tcp::SeqNum(9_000),
                        &seg.header,
                        now,
                        config,
                    ));
                }
                None => {}
                Some(s) => s.on_segment(&seg.header, seg.payload, now),
            }
        }
        if let Some(s) = &mut server {
            for seg in s.take_outbox() {
                moved = true;
                if rng.chance(loss) {
                    continue;
                }
                client.on_segment(&seg.header, seg.payload, now);
            }
            while let Some(chunk) = s.recv() {
                received.extend_from_slice(chunk.as_slice());
            }
        }
        if client.state() == State::Established && !sent {
            client
                .send(DemiBuffer::from_slice(data), now)
                .expect("established");
            sent = true;
        }
        if sent && received.len() == data.len() {
            return received;
        }
        if !moved {
            now = now.saturating_add(SimTime::from_micros(250));
            client.on_tick(now);
            if let Some(s) = &mut server {
                s.on_tick(now);
            }
        }
    }
    panic!(
        "transfer did not complete: {}/{} bytes, client {:?}",
        received.len(),
        data.len(),
        client.state()
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// TCP delivers any payload intact through random loss.
    #[test]
    fn tcp_survives_random_loss(
        seed in any::<u64>(),
        len in 1usize..30_000,
        loss_pct in 0u32..20,
    ) {
        let data: Vec<u8> = (0..len).map(|i| ((i * 31 + seed as usize) % 251) as u8).collect();
        let received = lossy_transfer(seed, &data, loss_pct as f64 / 100.0);
        prop_assert_eq!(received, data);
    }

    /// Wire parsers never panic on arbitrary bytes (they reject or accept,
    /// but they must not crash the stack).
    #[test]
    fn parsers_are_total(bytes in prop::collection::vec(any::<u8>(), 0..128)) {
        let ip_a = Ipv4Addr::new(10, 0, 0, 1);
        let ip_b = Ipv4Addr::new(10, 0, 0, 2);
        let _ = net_stack::eth::EthHeader::parse(&bytes);
        let _ = net_stack::ipv4::Ipv4Header::parse(&bytes);
        let _ = net_stack::arp::ArpPacket::parse(&bytes);
        let _ = net_stack::icmp::IcmpEcho::parse(&demi_memory::DemiBuffer::from_slice(&bytes));
        let _ = net_stack::udp::UdpHeader::parse(ip_a, ip_b, &bytes);
        let _ = net_stack::tcp::TcpHeader::parse(ip_a, ip_b, &bytes);
        let _ = rdma_sim::wire::WireMsg::parse(&bytes);
    }

    /// RDMA wire messages round-trip through serialization.
    #[test]
    fn rdma_wire_round_trips(
        dst_qp in any::<u32>(),
        psn in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        use rdma_sim::wire::WireMsg;
        let msg = WireMsg::Send { dst_qp, psn, payload };
        prop_assert_eq!(WireMsg::parse(&msg.serialize()), Some(msg));
    }

    /// catfs persists arbitrary record sequences across "reboot" recovery.
    #[test]
    fn catfs_recovery_round_trips(
        records in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..2000), 1..12),
    ) {
        let rt = Runtime::new();
        let device = NvmeDevice::new(rt.clock().clone(), NvmeConfig::default());
        {
            let fs = demikernel::libos::catfs::Catfs::new(&rt, device.clone());
            let qd = fs.create("prop").unwrap();
            for r in &records {
                fs.blocking_push(qd, &Sga::from_slice(r)).unwrap();
            }
        }
        let rt2 = Runtime::with_clock(rt.clock().clone());
        let fs2 = demikernel::libos::catfs::Catfs::new(&rt2, device);
        let qd = fs2.recover("prop").unwrap();
        for r in &records {
            let (_, sga) = fs2.blocking_pop(qd).unwrap().expect_pop();
            prop_assert_eq!(&sga.to_vec(), r);
        }
    }
}
