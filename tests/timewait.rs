//! Compact TIME_WAIT semantics (PR 8, toward E18).
//!
//! When a connection finishes its active close, the full control block —
//! queues, congestion state, RTT estimator — is dead weight: the only
//! remaining obligations are (1) hold the port for 2·MSL, (2) re-ACK a
//! retransmitted FIN (restarting 2·MSL), (3) die quietly on RST, and
//! (4) absorb stray late segments. The peer demotes such blocks to
//! ~40-byte [`TimeWaitRecord`]s on the same timing wheel. These tests pin
//! the demotion down:
//!
//! * lifecycle — the record expires at exactly 2·MSL via the wheel, the
//!   handle keeps answering, and the ephemeral port is recycled;
//! * the three late-segment behaviors, byte for byte;
//! * a differential property test: with demotion on and off, the bytes
//!   on the wire are *identical* for randomized close-and-linger
//!   scenarios.
//!
//! [`TimeWaitRecord`]: net_stack::tcp::peer::TcpPeer

use std::net::Ipv4Addr;

use demi_memory::DemiBuffer;
use net_stack::tcp::header::{TcpFlags, TcpHeader};
use net_stack::tcp::{ConnId, State, TcpConfig, TcpPeer, TcpSegmentOut};
use net_stack::types::{NetError, SocketAddr};
use proptest::prelude::*;
use sim_fabric::SimTime;

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

/// One line of wire trace: everything a header and payload commit to.
fn trace_line(dst: Ipv4Addr, seg: &TcpSegmentOut) -> String {
    format!(
        "{dst} {:?} payload={:?}",
        seg.header,
        seg.payload.as_slice()
    )
}

/// Shuttles segments between two peers until quiet, recording every
/// segment each side puts on the wire.
#[allow(clippy::too_many_arguments)]
fn pump_recording(
    a: &mut TcpPeer,
    a_ip: Ipv4Addr,
    a_trace: &mut Vec<String>,
    b: &mut TcpPeer,
    b_ip: Ipv4Addr,
    b_trace: &mut Vec<String>,
    b_to_a: &mut Vec<TcpHeader>,
    now: SimTime,
) {
    for _ in 0..1_000 {
        let mut quiet = true;
        for (dst, seg) in a.take_segments() {
            quiet = false;
            assert_eq!(dst, b_ip);
            a_trace.push(trace_line(dst, &seg));
            b.on_segment(a_ip, &seg.header, seg.payload, now);
        }
        for (dst, seg) in b.take_segments() {
            quiet = false;
            assert_eq!(dst, a_ip);
            b_trace.push(trace_line(dst, &seg));
            b_to_a.push(seg.header);
            a.on_segment(b_ip, &seg.header, seg.payload, now);
        }
        if quiet {
            return;
        }
    }
    panic!("pump did not converge");
}

/// Establishes a pair, exchanges `msgs`, and walks the full close with
/// the client closing first — leaving the client in TIME_WAIT. Returns
/// the peers, the client conn id, the client's wire trace so far, and
/// every header the server sent (the last FIN-bearing one is the replay
/// candidate).
fn closed_pair(
    config: TcpConfig,
    msgs: &[Vec<u8>],
    now: SimTime,
) -> (TcpPeer, TcpPeer, ConnId, Vec<String>, Vec<TcpHeader>) {
    let mut client = TcpPeer::new(ip(1), config);
    let mut server = TcpPeer::new(ip(2), config);
    let lid = server.listen(80, 16).unwrap();
    let c = client.connect(SocketAddr::new(ip(2), 80), now).unwrap();
    let mut ct = Vec::new();
    let mut st = Vec::new();
    let mut from_server = Vec::new();
    let pump = |client: &mut TcpPeer,
                server: &mut TcpPeer,
                ct: &mut Vec<String>,
                from_server: &mut Vec<TcpHeader>,
                now| {
        let mut st_sink = Vec::new();
        pump_recording(
            client,
            ip(1),
            ct,
            server,
            ip(2),
            &mut st_sink,
            from_server,
            now,
        );
        st_sink
    };
    st.extend(pump(
        &mut client,
        &mut server,
        &mut ct,
        &mut from_server,
        now,
    ));
    let s = server.accept(lid).unwrap().expect("connection ready");
    for m in msgs {
        client.send(c, DemiBuffer::from_slice(m), now).unwrap();
        st.extend(pump(
            &mut client,
            &mut server,
            &mut ct,
            &mut from_server,
            now,
        ));
        let got = server.recv(s).unwrap().expect("message arrived");
        server.send(s, got, now).unwrap();
        st.extend(pump(
            &mut client,
            &mut server,
            &mut ct,
            &mut from_server,
            now,
        ));
        client.recv(c).unwrap().expect("echo arrived");
    }
    client.close(c, now).unwrap();
    st.extend(pump(
        &mut client,
        &mut server,
        &mut ct,
        &mut from_server,
        now,
    ));
    server.close(s, now).unwrap();
    st.extend(pump(
        &mut client,
        &mut server,
        &mut ct,
        &mut from_server,
        now,
    ));
    assert_eq!(client.state(c).unwrap(), State::TimeWait);
    assert_eq!(server.state(s).unwrap(), State::Closed);
    (client, server, c, ct, from_server)
}

#[test]
fn record_expires_at_exactly_two_msl_on_the_wheel() {
    let config = TcpConfig::default();
    let now = SimTime::from_millis(1);
    let (mut client, _server, c, _, _) = closed_pair(config, &[b"ping".to_vec()], now);
    // The full control block was demoted: no live connection remains, one
    // compact record holds the port.
    let mem = client.mem_stats();
    assert_eq!(mem.live_conns, 0, "TIME_WAIT must not pin a control block");
    assert_eq!(mem.timewait_records, 1);
    assert!(client.is_port_bound(32_768), "port held for the full 2*MSL");

    // The wheel knows the exact expiry: close time + 2*MSL.
    let expiry = now.saturating_add(config.msl.saturating_mul(2));
    assert_eq!(client.next_deadline(), Some(expiry));

    // One tick *before* expiry: nothing fires, the record survives.
    client.on_tick(SimTime::from_nanos(expiry.as_nanos() - 1));
    assert_eq!(client.state(c).unwrap(), State::TimeWait);
    assert_eq!(client.mem_stats().timewait_records, 1);

    // At expiry the record dies and the handle reports Closed.
    let fired = client.on_tick(expiry);
    assert!(fired > 0, "TIME_WAIT expiry is a counted timer event");
    assert_eq!(client.state(c).unwrap(), State::Closed);
    assert_eq!(client.mem_stats().timewait_records, 0);
    assert_eq!(client.next_deadline(), None);
}

#[test]
fn expiry_recycles_the_ephemeral_port() {
    let config = TcpConfig::default();
    let now = SimTime::from_millis(1);
    let (mut client, _server, _c, _, _) = closed_pair(config, &[], now);
    assert!(client.is_port_bound(32_768));
    assert_eq!(client.pop_released_port(), None, "not before expiry");
    client.on_tick(now.saturating_add(config.msl.saturating_mul(2)));
    assert!(!client.is_port_bound(32_768));
    assert_eq!(client.pop_released_port(), Some(32_768));
}

#[test]
fn late_fin_is_reacked_identically_and_restarts_two_msl() {
    let config = TcpConfig::default();
    let now = SimTime::from_millis(1);
    let (mut client, _server, c, ct, from_server) = closed_pair(config, &[b"data".to_vec()], now);
    let fin = *from_server
        .iter()
        .rev()
        .find(|h| h.flags.fin)
        .expect("server sent a FIN");
    // The client's last wire segment was the final ACK of the handshake
    // walk-down; a retransmitted FIN must reproduce it byte for byte.
    let final_ack = ct.last().expect("client acked the FIN").clone();

    let later = now.saturating_add(config.msl); // Inside the 2*MSL window.
    client.on_segment(ip(2), &fin, DemiBuffer::empty(), later);
    let out = client.take_segments();
    assert_eq!(out.len(), 1, "exactly one re-ACK");
    assert_eq!(trace_line(out[0].0, &out[0].1), final_ack);

    // 2*MSL restarted from the late FIN's arrival.
    let new_expiry = later.saturating_add(config.msl.saturating_mul(2));
    assert_eq!(client.next_deadline(), Some(new_expiry));
    // The original expiry is now a stale wheel entry: nothing happens.
    client.on_tick(now.saturating_add(config.msl.saturating_mul(2)));
    assert_eq!(client.state(c).unwrap(), State::TimeWait);
    client.on_tick(new_expiry);
    assert_eq!(client.state(c).unwrap(), State::Closed);
}

#[test]
fn late_data_is_absorbed_silently() {
    let config = TcpConfig::default();
    let now = SimTime::from_millis(1);
    let (mut client, _server, c, _, from_server) = closed_pair(config, &[], now);
    // A stray in-window ACK segment (no FIN, no RST) from the old peer.
    let mut stray = *from_server.last().unwrap();
    stray.flags = TcpFlags::ACK;
    client.on_segment(ip(2), &stray, DemiBuffer::from_slice(b"zombie"), now);
    assert!(client.take_segments().is_empty(), "absorbed, not answered");
    assert_eq!(client.state(c).unwrap(), State::TimeWait);
    assert_eq!(client.mem_stats().timewait_records, 1);
}

#[test]
fn rst_drops_the_record_and_frees_the_port_early() {
    let config = TcpConfig::default();
    let now = SimTime::from_millis(1);
    let (mut client, _server, c, _, from_server) = closed_pair(config, &[], now);
    let mut rst = *from_server.last().unwrap();
    rst.flags = TcpFlags {
        rst: true,
        ack: true,
        ..TcpFlags::default()
    };
    client.on_segment(ip(2), &rst, DemiBuffer::empty(), now);
    assert!(client.take_segments().is_empty(), "RST gets no reply");
    assert_eq!(client.state(c).unwrap(), State::Closed);
    assert_eq!(client.mem_stats().timewait_records, 0);
    assert_eq!(client.pop_released_port(), Some(32_768));
    // The stale wheel entry at the original expiry is discarded lazily.
    assert_eq!(client.next_deadline(), None);
}

#[test]
fn stale_timewait_handle_still_answers_every_query() {
    let config = TcpConfig::default();
    let now = SimTime::from_millis(1);
    let (mut client, _server, c, _, _) = closed_pair(config, &[], now);
    // While the record lives, the old handle maps onto it.
    assert_eq!(client.state(c).unwrap(), State::TimeWait);
    assert_eq!(client.remote(c).unwrap(), SocketAddr::new(ip(2), 80));
    assert_eq!(client.local(c).unwrap(), SocketAddr::new(ip(1), 32_768));
    assert_eq!(
        client.send(c, DemiBuffer::from_slice(b"x"), now),
        Err(NetError::Closed)
    );
    assert_eq!(client.recv(c).unwrap(), None);
    assert!(client.at_eof(c));
    assert_eq!(client.close(c, now), Ok(()));
    // After expiry the handle degrades to a plain stale handle.
    client.on_tick(now.saturating_add(config.msl.saturating_mul(2)));
    assert_eq!(client.state(c).unwrap(), State::Closed);
    assert_eq!(client.recv(c).unwrap(), None);
}

/// Runs a full randomized close-and-linger scenario and returns the
/// client's complete wire trace: establish, `msgs` echo round trips,
/// active close, a replayed server FIN `fin_delay` into TIME_WAIT, a
/// stray late ACK, and ticks through both the superseded and the real
/// expiry. Everything the client commits to the wire is recorded.
fn client_wire_trace(demote: bool, msgs: &[Vec<u8>], fin_delay: SimTime) -> Vec<String> {
    let config = TcpConfig {
        timewait_demote: demote,
        ..TcpConfig::default()
    };
    let now = SimTime::from_millis(1);
    let (mut client, _server, _c, mut trace, from_server) = closed_pair(config, msgs, now);

    let fin = *from_server
        .iter()
        .rev()
        .find(|h| h.flags.fin)
        .expect("server sent a FIN");
    let replay_at = now.saturating_add(fin_delay);
    client.on_segment(ip(2), &fin, DemiBuffer::empty(), replay_at);
    for (dst, seg) in client.take_segments() {
        trace.push(trace_line(dst, &seg));
    }
    // A stray pure ACK right after: absorbed in both modes.
    let mut stray = fin;
    stray.flags = TcpFlags::ACK;
    client.on_segment(ip(2), &stray, DemiBuffer::empty(), replay_at);
    for (dst, seg) in client.take_segments() {
        trace.push(trace_line(dst, &seg));
    }
    // Tick through the superseded expiry and the restarted one.
    let old_expiry = now.saturating_add(config.msl.saturating_mul(2));
    let new_expiry = replay_at.saturating_add(config.msl.saturating_mul(2));
    for t in [old_expiry, new_expiry] {
        client.on_tick(t);
        for (dst, seg) in client.take_segments() {
            trace.push(trace_line(dst, &seg));
        }
    }
    assert!(
        !client.is_port_bound(32_768),
        "TIME_WAIT over, port recycled"
    );
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The compact record is *wire-identical* to the full control block
    /// it replaced: for randomized exchanges, close, FIN replay timing,
    /// and stray traffic, the client emits byte-for-byte the same
    /// segments with demotion on and off.
    #[test]
    fn demoted_record_is_wire_identical_to_full_tcb(
        msgs in prop::collection::vec(
            prop::collection::vec(any::<u8>(), 1..200), 0..4),
        fin_delay_us in 1_000u64..19_000,
    ) {
        let fin_delay = SimTime::from_micros(fin_delay_us);
        let demoted = client_wire_trace(true, &msgs, fin_delay);
        let full = client_wire_trace(false, &msgs, fin_delay);
        prop_assert_eq!(demoted, full);
    }
}
