//! Thread-per-shard execution (PR 6, toward E16).
//!
//! The multi-core refactor keeps every shard world `Rc`-single-threaded
//! and moves exactly three things across threads: frame handoffs and ARP
//! learns over bounded SPSC rings, and TCP port allocation through a
//! shared lock-free bitmap. These tests pin the contract from above:
//!
//! * the *differential* property — the application byte streams a world
//!   produces are identical under [`ExecMode::SingleThread`] and
//!   [`ExecMode::ThreadPerShard`]; threading changes the clock on the
//!   wall, never the bytes;
//! * a frame whose global RSS owner is another world crosses threads on
//!   the ring mesh and is delivered by the owner's stack;
//! * handoff queues are bounded: overflow drops (counted), never grows,
//!   and the stack keeps serving afterward;
//! * per-thread metrics and stage telemetry merge into run-wide totals
//!   that a naive cross-thread read would miss.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex};

use demikernel::exec::{ExecMode, ShardSpec};
use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnip_shard_world, host_ip, host_mac};
use demikernel::types::{QDesc, Sga};
use demikernel::{run_shards, MetricsSnapshot};
use dpdk_sim::{rss, DpdkPort, PortConfig};
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, ShardMsg, StackConfig};
use proptest::prelude::*;
use sim_fabric::Fabric;

const ECHO_PORT: u16 = 7000;

/// Polls `stacks` and advances virtual time until `until` holds or the
/// world is fully quiescent (same loop as `tests/sharding.rs`).
fn settle(fabric: &Fabric, stacks: &[&NetworkStack], mut until: impl FnMut() -> bool) {
    for _ in 0..100_000 {
        for s in stacks {
            s.poll();
        }
        if until() {
            return;
        }
        if fabric.advance_to_next_event() {
            continue;
        }
        match stacks.iter().filter_map(|s| s.next_deadline()).min() {
            Some(t) => fabric.clock().advance_to(t),
            None => return,
        }
    }
    panic!("simulation did not settle");
}

// ---------------------------------------------------------------------
// Differential: SingleThread and ThreadPerShard produce identical bytes.
// ---------------------------------------------------------------------

/// One world's workload: a pipelined TCP echo (every request is pushed
/// before the first reply is popped). Returns the concatenated request
/// and reply byte streams.
fn echo_world(spec: ShardSpec, seed: u64, msgs: &[Vec<u8>]) -> (Vec<u8>, Vec<u8>) {
    let world = catnip_shard_world(spec, seed, |c| c);
    echo_drive(&world, msgs)
}

/// Drives the pipelined echo over an already-built shard world.
fn echo_drive(world: &demikernel::testing::ShardWorld, msgs: &[Vec<u8>]) -> (Vec<u8>, Vec<u8>) {
    let (client, server) = (&world.client, &world.server);

    let lqd = server.socket(SocketKind::Tcp).unwrap();
    // Every world listens on the same port: the shared allocator
    // refcounts listeners (SO_REUSEPORT-style replication).
    server
        .bind(lqd, SocketAddr::new(host_ip(2), ECHO_PORT))
        .unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), ECHO_PORT))
        .unwrap();
    let sqd: QDesc = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();

    let mut sent = Vec::new();
    for msg in msgs {
        client.blocking_push(cqd, &Sga::from_slice(msg)).unwrap();
        sent.extend_from_slice(msg);
    }
    // Echo server: TCP has no message boundaries, so relay chunks until
    // the full pipelined stream has passed through.
    let mut relayed = 0;
    while relayed < sent.len() {
        let (_, chunk) = server.blocking_pop(sqd).unwrap().expect_pop();
        relayed += chunk.len();
        server.blocking_push(sqd, &chunk).unwrap();
    }
    let mut got = Vec::new();
    while got.len() < sent.len() {
        let (_, chunk) = client.blocking_pop(cqd).unwrap().expect_pop();
        got.extend_from_slice(&chunk.to_vec());
    }
    (sent, got)
}

/// Runs the same 2-world echo under `mode`; per-world message contents
/// derive only from (case seed, world index), so the two modes see
/// byte-identical inputs.
fn run_echo(mode: ExecMode, seed: u64, lens: &[u8]) -> Vec<(Vec<u8>, Vec<u8>)> {
    run_shards(mode, 2, 2, 64, |spec| {
        let msgs: Vec<Vec<u8>> = lens
            .iter()
            .enumerate()
            .map(|(i, &len)| {
                let fill = (seed as u8)
                    .wrapping_add(spec.index as u8)
                    .wrapping_add(i as u8);
                vec![fill; len as usize]
            })
            .collect();
        echo_world(spec, seed, &msgs)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any pipelined workload yields the same per-world byte streams in
    /// both execution modes, and every reply stream equals its request
    /// stream (nothing lost, duplicated, or reordered by the rings).
    #[test]
    fn exec_modes_produce_identical_byte_streams(
        seed in any::<u64>(),
        lens in prop::collection::vec(1u8..64, 1..12),
    ) {
        let st = run_echo(ExecMode::SingleThread, seed, &lens);
        let mt = run_echo(ExecMode::ThreadPerShard, seed, &lens);
        prop_assert_eq!(st.len(), mt.len());
        for (w, (s, m)) in st.iter().zip(&mt).enumerate() {
            prop_assert_eq!(&s.0, &s.1, "single-thread world {} corrupted its echo", w);
            prop_assert_eq!(&m.0, &m.1, "threaded world {} corrupted its echo", w);
            prop_assert_eq!(s, m, "world {} diverged between exec modes", w);
        }
    }
}

// ---------------------------------------------------------------------
// Cross-thread handoff delivery.
// ---------------------------------------------------------------------

/// A bare two-stack world (no runtime) built straight from a spec's host
/// links, polled by hand — the stack-level twin of `catnip_shard_world`.
fn raw_world(spec: ShardSpec) -> (Fabric, NetworkStack, NetworkStack) {
    let fabric = Fabric::new(0x5eed ^ spec.index as u64);
    let mut hosts = spec.hosts.into_iter();
    let (cl, sl) = (hosts.next().unwrap(), hosts.next().unwrap());
    let client = NetworkStack::with_ports(
        DpdkPort::new(&fabric, PortConfig::basic(host_mac(1))),
        fabric.clock(),
        StackConfig::new(host_ip(1)),
        cl.ports,
    );
    client.attach_external(cl.rings);
    let server = NetworkStack::with_ports(
        DpdkPort::new(&fabric, PortConfig::basic(host_mac(2))),
        fabric.clock(),
        StackConfig::new(host_ip(2)),
        sl.ports,
    );
    server.attach_external(sl.rings);
    (fabric, client, server)
}

/// A datagram whose 4-tuple globally hashes to world 1 but arrives on
/// world 0's device is forwarded across threads over the external ring
/// and delivered by world 1's stack.
#[test]
fn misdelivered_frame_crosses_threads_to_its_owner() {
    let bound = Barrier::new(2);
    let delivered = AtomicU64::new(0);
    run_shards(ExecMode::ThreadPerShard, 2, 2, 64, |spec| {
        let index = spec.index;
        let (fabric, client, server) = raw_world(spec);
        if index == 1 {
            server.udp_bind(7).unwrap();
            bound.wait();
            for _ in 0..2_000_000 {
                server.poll();
                if server.udp_pending(7) > 0 {
                    let (from, payload) = server.udp_recv_from(7).unwrap();
                    assert_eq!(payload.as_slice(), b"cross-world");
                    assert_eq!(from.ip, host_ip(1));
                    delivered.fetch_add(1, Ordering::SeqCst);
                    return;
                }
                std::thread::yield_now();
            }
            panic!("forwarded datagram never arrived on its owning world");
        } else {
            bound.wait();
            // A source port whose tuple RSS-homes to world 1, not 0.
            let src = (40_000..50_000)
                .find(|&p| rss::queue_for_tuple(host_ip(1), p, host_ip(2), 7, 2) == 1)
                .unwrap();
            client.udp_bind(src).unwrap();
            client
                .udp_sendto(src, SocketAddr::new(host_ip(2), 7), b"cross-world")
                .unwrap();
            // Drive world 0 until quiescent: ARP resolves, the datagram
            // reaches the local device, the stack detects the steering
            // mismatch and forwards it over the ring.
            for _ in 0..10_000 {
                client.poll();
                server.poll();
                if !fabric.advance_to_next_event() {
                    break;
                }
            }
            let s = server.shard_stats(0);
            assert!(
                s.steering_mismatches >= 1,
                "world 0 must detect the foreign flow: {s:?}"
            );
            let ext = server.external_ring_stats().unwrap();
            assert!(
                ext.sent >= 1,
                "frame must leave on the external ring: {ext:?}"
            );
        }
    });
    assert_eq!(delivered.load(Ordering::SeqCst), 1);
}

// ---------------------------------------------------------------------
// Bounded handoffs: graceful degradation, not unbounded growth.
// ---------------------------------------------------------------------

/// Overflowing the handoff queue drops the excess (counted in
/// `handoff_dropped`), keeps the bound, and leaves the stack fully
/// functional — TCP retransmission is the recovery story, so a drop
/// must never wedge anything.
#[test]
fn handoff_overflow_drops_counted_and_stack_survives() {
    let fabric = Fabric::new(99);
    let stack = NetworkStack::new(
        DpdkPort::new(&fabric, PortConfig::basic(host_mac(2))),
        fabric.clock(),
        StackConfig {
            handoff_capacity: 2,
            ..StackConfig::new(host_ip(2))
        },
    );
    let peer = NetworkStack::new(
        DpdkPort::new(&fabric, PortConfig::basic(host_mac(1))),
        fabric.clock(),
        StackConfig::new(host_ip(1)),
    );
    // Make the stack world 1 of 2; keep world 0's endpoint in the test.
    let mut mesh = net_stack::mesh(2, 64);
    let mut test_end = mesh.remove(0);
    stack.attach_external(mesh.remove(0));

    // Eight junk frames into a capacity-2 handoff queue, all queued
    // before the stack polls once.
    for i in 0..8u8 {
        assert!(test_end.send(1, ShardMsg::Frame(vec![i; 60])));
    }
    stack.poll();
    let s = stack.shard_stats(0);
    assert_eq!(
        s.handoff_dropped, 6,
        "kept the bound, dropped the excess: {s:?}"
    );
    assert!(s.handoff_backpressure >= 6);

    // The stack still serves traffic afterward — on a flow whose tuple
    // homes to this world (global index 1 of 2).
    let sport = (40_000..50_000)
        .find(|&p| rss::queue_for_tuple(host_ip(1), p, host_ip(2), 7, 2) == 1)
        .unwrap();
    stack.udp_bind(7).unwrap();
    peer.udp_bind(sport).unwrap();
    peer.udp_sendto(sport, SocketAddr::new(host_ip(2), 7), b"still-alive")
        .unwrap();
    settle(&fabric, &[&peer, &stack], || stack.udp_pending(7) > 0);
    let (_, payload) = stack.udp_recv_from(7).expect("stack serves after overflow");
    assert_eq!(payload.as_slice(), b"still-alive");
}

// ---------------------------------------------------------------------
// Cross-thread observability: merged metrics and telemetry.
// ---------------------------------------------------------------------

/// Counters recorded on shard threads are invisible to a naive read from
/// the spawning thread; absorbing each world's snapshot into the hub (on
/// the world's own thread) recovers the run-wide totals, and per-thread
/// stage histograms merge the same way.
#[test]
fn shard_thread_metrics_and_telemetry_merge() {
    demi_telemetry::stage::reset_merged();
    let ops_per_world = 4usize;
    let hub_out: Mutex<Option<Arc<demikernel::metrics::MetricsHub>>> = Mutex::new(None);
    run_shards(ExecMode::ThreadPerShard, 2, 2, 64, |spec| {
        demi_telemetry::set_enabled(true);
        let msgs: Vec<Vec<u8>> = (0..ops_per_world).map(|i| vec![i as u8; 32]).collect();
        let world = catnip_shard_world(spec, 0xabcd, |c| c);
        let (sent, got) = echo_drive(&world, &msgs);
        assert_eq!(sent, got);
        // Absorb on this thread, where the thread-local counters live.
        let hub = Arc::clone(&world.hub);
        hub.absorb(world.rt.metrics().snapshot());
        demi_telemetry::set_enabled(false);
        *hub_out.lock().unwrap() = Some(hub);
    });
    let hub = hub_out.lock().unwrap().take().unwrap();
    let merged: MetricsSnapshot = hub.merged();
    assert!(
        merged.pushes >= 2 * ops_per_world as u64,
        "hub sees both worlds' pushes: {}",
        merged.pushes
    );
    assert!(
        merged.pops >= 2 * ops_per_world as u64,
        "hub sees both worlds' pops: {}",
        merged.pops
    );
    let op = demi_telemetry::stage::merged_snapshot(demi_telemetry::stage::Stage::OpLatency);
    assert!(
        op.count() >= 2 * ops_per_world as u64,
        "merged op-latency histogram covers both shard threads: {}",
        op.count()
    );
}

// ---------------------------------------------------------------------
// Environment switch (CI runs this file under DEMI_EXEC_MODE=threads).
// ---------------------------------------------------------------------

/// The suite honors `DEMI_EXEC_MODE`: whatever mode the environment
/// selects, the standard workload passes. CI runs the whole test suite a
/// second time with `DEMI_EXEC_MODE=threads` to exercise the threaded
/// path everywhere this helper is used.
#[test]
fn env_selected_mode_runs_the_standard_workload() {
    let mode = ExecMode::from_env();
    let results = run_shards(mode, 2, 2, 64, |spec| {
        let msgs: Vec<Vec<u8>> = (0..3).map(|i| vec![0x40 + i as u8; 48]).collect();
        echo_world(spec, 7, &msgs)
    });
    for (sent, got) in results {
        assert_eq!(sent, got);
    }
}
