//! Failure injection across the full Demikernel stack: loss, partitions,
//! refused connections, and timeouts.

use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catcorn_pair, catnip_pair, host_ip, host_mac};
use demikernel::types::{DemiError, OperationResult, Sga};
use net_stack::types::SocketAddr;
use sim_fabric::{LinkConfig, SimTime};

#[test]
fn catnip_tcp_bulk_transfer_survives_10pct_loss() {
    let (_rt, fabric, client, server) = catnip_pair(401);
    fabric.set_default_link(LinkConfig {
        latency: SimTime::from_micros(2),
        bandwidth_bps: 10_000_000_000,
        loss_probability: 0.10,
    });
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), 80)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();

    // 50 framed messages of 2 KiB through 10% loss: all arrive, intact,
    // in order, as atomic units.
    for i in 0..50u32 {
        let payload: Vec<u8> = (0..2048u32).map(|j| ((i + j) % 251) as u8).collect();
        client
            .blocking_push(cqd, &Sga::from_slice(&payload))
            .unwrap();
        let (_, got) = server.blocking_pop(sqd).unwrap().expect_pop();
        assert_eq!(got.to_vec(), payload, "message {i} corrupted");
    }
}

#[test]
fn catnip_udp_loss_is_visible_to_the_application() {
    // UDP makes no promises: with loss, pops time out — the libOS must
    // not invent data.
    let (_rt, fabric, client, server) = catnip_pair(402);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();
    // Warm ARP on a clean link first.
    client
        .pushto(
            cqd,
            &Sga::from_slice(b"warm"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let _ = server.blocking_pop(sqd).unwrap();
    // Now a fully lossy link.
    fabric.set_default_link(LinkConfig {
        latency: SimTime::from_micros(1),
        bandwidth_bps: 0,
        loss_probability: 1.0,
    });
    client
        .pushto(
            cqd,
            &Sga::from_slice(b"void"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let qt = server.pop(sqd).unwrap();
    assert_eq!(
        server.wait(qt, Some(SimTime::from_millis(5))),
        Err(DemiError::Timeout)
    );
}

#[test]
fn catcorn_partition_fails_pushes_with_rdma_error() {
    let (_rt, fabric, client, server) = catcorn_pair(403);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server
        .bind(lqd, SocketAddr::new(host_ip(2), 18515))
        .unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 18515))
        .unwrap();
    let _sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();

    fabric.partition(host_mac(1), host_mac(2));
    let qt = client
        .push(cqd, &Sga::from_slice(b"into the void"))
        .unwrap();
    let result = client.wait(qt, None).unwrap();
    assert!(
        matches!(result, OperationResult::Failed(DemiError::Rdma(_))),
        "expected transport failure, got {result:?}"
    );
}

#[test]
fn catnip_connect_to_partitioned_host_times_out() {
    let (_rt, fabric, client, _server) = catnip_pair(404);
    fabric.partition(host_mac(1), host_mac(2));
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let qt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    let result = client.wait(qt, None).unwrap();
    assert!(
        result.is_failed(),
        "connect through a partition: {result:?}"
    );
}

#[test]
fn catnip_tcp_survives_a_transient_partition() {
    let (_rt, fabric, client, server) = catnip_pair(405);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), 80)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();

    // Send during a partition; heal it; retransmission completes delivery.
    fabric.partition(host_mac(1), host_mac(2));
    let push = client.push(cqd, &Sga::from_slice(b"persistent")).unwrap();
    client.wait(push, None).unwrap(); // Push buffers locally.
    let pop = server.pop(sqd).unwrap();
    assert_eq!(
        server.wait(pop, Some(SimTime::from_millis(2))),
        Err(DemiError::Timeout),
        "nothing can arrive during the partition"
    );
    fabric.heal(host_mac(1), host_mac(2));
    let (_, sga) = server.wait(pop, None).unwrap().expect_pop();
    assert_eq!(sga.to_vec(), b"persistent");
}

#[test]
fn rdma_rnr_is_invisible_thanks_to_libos_buffering() {
    // The raw device fails when receivers under-provision (E5 shows it);
    // through catcorn the same workload succeeds because the libOS manages
    // the ring. Burst twice the ring size with the receiver idle.
    let (_rt, _fabric, client, server) = catcorn_pair(406);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server
        .bind(lqd, SocketAddr::new(host_ip(2), 18515))
        .unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 18515))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();

    let tokens: Vec<_> = (0..64u32)
        .map(|i| {
            client
                .push(cqd, &Sga::from_slice(&i.to_be_bytes()))
                .unwrap()
        })
        .collect();
    for i in 0..64u32 {
        let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
        assert_eq!(sga.to_vec(), i.to_be_bytes());
    }
    for r in client.wait_all(&tokens, None).unwrap() {
        assert!(matches!(r, OperationResult::Push));
    }
    assert_eq!(server.device().stats().rnr_nacks_sent, 0);
}
