//! The portability claim (§1): one application source, every libOS.
//!
//! `echo_app` below is written purely against the `LibOs` trait. It runs
//! unmodified over catnip (DPDK), catcorn (RDMA), and catnap (the kernel
//! baseline); catmem runs the same data path as a loopback.

use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catcorn_pair, catmem_world, catnap_pair, catnip_pair, host_ip};
use demikernel::types::{QDesc, Sga};
use net_stack::types::SocketAddr;

/// The portable application: a connected echo over any two libOS objects.
fn echo_app(client: &dyn LibOs, server: &dyn LibOs, port: u16, rounds: usize) {
    let lqd = server.socket(SocketKind::Tcp).expect("socket");
    server
        .bind(lqd, SocketAddr::new(host_ip(2), port))
        .expect("bind");
    server.listen(lqd, 8).expect("listen");
    let aqt = server.accept(lqd).expect("accept");
    let cqd = client.socket(SocketKind::Tcp).expect("socket");
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), port))
        .expect("connect");
    let sqd: QDesc = server.wait(aqt, None).expect("accept wait").expect_accept();
    client.wait(cqt, None).expect("connect wait");

    for i in 0..rounds {
        let msg = format!("round-{i}");
        client
            .blocking_push(cqd, &Sga::from_slice(msg.as_bytes()))
            .expect("push");
        let (_, req) = server.blocking_pop(sqd).expect("server pop").expect_pop();
        assert_eq!(req.to_vec(), msg.as_bytes());
        server.blocking_push(sqd, &req).expect("echo");
        let (_, reply) = client.blocking_pop(cqd).expect("client pop").expect_pop();
        assert_eq!(reply.to_vec(), msg.as_bytes());
    }
    client.close(cqd).expect("close");
}

#[test]
fn echo_runs_on_catnip() {
    let (_rt, _fabric, client, server) = catnip_pair(301);
    echo_app(&client, &server, 7000, 20);
}

#[test]
fn echo_runs_on_catcorn() {
    let (_rt, _fabric, client, server) = catcorn_pair(302);
    echo_app(&client, &server, 18515, 20);
}

#[test]
fn echo_runs_on_catnap() {
    let (_rt, _fabric, client, server) = catnap_pair(303);
    echo_app(&client, &server, 7000, 20);
}

#[test]
fn catmem_runs_the_same_data_path_as_loopback() {
    let (_rt, libos) = catmem_world();
    let qd = libos.queue().unwrap();
    for i in 0..20 {
        let msg = format!("round-{i}");
        libos
            .blocking_push(qd, &Sga::from_slice(msg.as_bytes()))
            .unwrap();
        let (_, got) = libos.blocking_pop(qd).unwrap().expect_pop();
        assert_eq!(got.to_vec(), msg.as_bytes());
    }
}

#[test]
fn devices_evolve_applications_do_not() {
    // §1: "unmodified as devices continue to evolve" — the same app on a
    // SmartNIC-equipped port (an 'evolved' device) without any change.
    use demikernel::libos::catnip::Catnip;
    use demikernel::runtime::Runtime;
    use dpdk_sim::PortConfig;
    use sim_fabric::Fabric;

    let fabric = Fabric::new(304);
    let rt = Runtime::with_fabric(fabric.clone());
    let client = Catnip::with_port_config(
        &rt,
        &fabric,
        PortConfig::smartnic(demikernel::testing::host_mac(1), 4),
        host_ip(1),
    );
    let server = Catnip::with_port_config(
        &rt,
        &fabric,
        PortConfig::smartnic(demikernel::testing::host_mac(2), 4),
        host_ip(2),
    );
    echo_app(&client, &server, 7000, 10);
}
