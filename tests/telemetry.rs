//! End-to-end telemetry behavior (E15): op-lifecycle spans stamp in
//! causal order, stage histograms fill from a real echo workload,
//! recording allocates nothing on the sample path, the span ring stays
//! bounded, quantiles stay within one log-bucket of exact, and the
//! scaled-down tail-latency claims hold in debug builds.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use demi_bench::loadgen::{closed_loop, open_loop};
use demi_telemetry::hist::{bucket_index, Histogram};
use demi_telemetry::span::{self, SpanPoint};
use demi_telemetry::stage::{self, Stage};
use demikernel::testing::{catnap_pair, catnip_pair};
use proptest::prelude::*;

/// Counts heap allocations so the zero-alloc claim is measured here too,
/// not only in the release bench.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// One small catnip echo run with full telemetry on; returns the drained
/// spans. Each test builds its own world (thread-local telemetry state
/// keeps parallel tests independent).
fn traced_echo(seed: u64, rounds: usize) -> Vec<span::OpSpan> {
    let (rt, _fabric, client, server) = catnip_pair(seed);
    demikernel::telemetry::enable(&rt);
    demikernel::telemetry::reset();
    let res = closed_loop(&rt, &client, &server, 64, 1, rounds);
    assert_eq!(res.hist.count() as usize, rounds);
    let spans = span::drain();
    demikernel::telemetry::disable();
    stage::reset();
    spans
}

#[test]
fn span_stamps_are_causally_ordered() {
    let spans = traced_echo(11, 8);
    assert!(!spans.is_empty());
    let mut complete = 0;
    for s in &spans {
        let entry = s.stamp(SpanPoint::Entry).expect("begin always stamps");
        if let Some(fp) = s.stamp(SpanPoint::FirstPoll) {
            assert!(
                entry <= fp,
                "{}: entry {} > first poll {}",
                s.name,
                entry,
                fp
            );
            if let Some(done) = s.stamp(SpanPoint::Completed) {
                assert!(
                    fp <= done,
                    "{}: first poll {} > completed {}",
                    s.name,
                    fp,
                    done
                );
                if let Some(del) = s.stamp(SpanPoint::Delivered) {
                    assert!(
                        done <= del,
                        "{}: completed {} > delivered {}",
                        s.name,
                        done,
                        del
                    );
                    complete += 1;
                }
            }
        }
    }
    assert!(complete > 0, "at least one span must carry all four stamps");
}

#[test]
fn echo_fills_every_wired_stage() {
    let (rt, _fabric, client, server) = catnip_pair(12);
    demikernel::telemetry::enable(&rt);
    demikernel::telemetry::reset();
    let _ = closed_loop(&rt, &client, &server, 64, 1, 8);
    for s in [Stage::OpLatency, Stage::RxDelivery, Stage::TxFlush] {
        assert!(
            !stage::snapshot(s).is_empty(),
            "stage {} recorded nothing during an echo run",
            s.name()
        );
    }
    let summary = demikernel::telemetry::summary();
    assert!(summary.contains("op_latency"), "{summary}");
    demikernel::telemetry::disable();
    stage::reset();
}

#[test]
fn chrome_trace_exports_drained_spans() {
    let (rt, _fabric, client, server) = catnip_pair(13);
    demikernel::telemetry::enable(&rt);
    demikernel::telemetry::reset();
    let _ = closed_loop(&rt, &client, &server, 64, 1, 4);
    let trace = demikernel::telemetry::chrome_trace();
    demikernel::telemetry::disable();
    stage::reset();
    assert!(trace.starts_with("{\"traceEvents\":["), "{trace}");
    assert!(trace.contains("\"ph\":\"X\""), "{trace}");
    assert!(trace.contains("catnip::udp_pop"), "{trace}");
}

#[test]
fn span_ring_stays_bounded() {
    span::set_capacity(16);
    let spans = traced_echo(14, 32);
    // 32 rounds spawn >64 ops (push + pop per side); a 16-slot ring must
    // have evicted and still hold at most 16.
    assert!(spans.len() <= 16, "ring drained {} spans", spans.len());
    span::set_capacity(span::DEFAULT_CAPACITY);
}

#[test]
fn recording_a_sample_never_allocates() {
    demi_telemetry::set_enabled(true);
    let mut h = Box::new(Histogram::new());
    h.record(1);
    stage::record(Stage::SchedPollLag, 1);
    let before = ALLOCS.load(Ordering::Relaxed);
    for i in 1..=50_000u64 {
        h.record(i * 37);
        stage::record(Stage::SchedPollLag, i);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    demi_telemetry::set_enabled(false);
    stage::reset();
    assert_eq!(allocs, 0, "sample path allocated {allocs} times");
}

#[test]
fn disabled_telemetry_records_nothing() {
    demi_telemetry::set_enabled(false);
    span::set_enabled(false);
    stage::reset();
    let (rt, _fabric, client, server) = catnip_pair(15);
    let _ = closed_loop(&rt, &client, &server, 64, 1, 4);
    for s in Stage::ALL {
        assert!(
            stage::snapshot(s).is_empty(),
            "{} recorded while off",
            s.name()
        );
    }
    assert!(span::drain().is_empty());
}

#[test]
fn scaled_tail_latency_claims_hold() {
    // The release bench (e15) runs the full curve; this is the debug-mode
    // smoke version of its two core asserts.
    let (rt, _f, c, s) = catnip_pair(16);
    let catnip = closed_loop(&rt, &c, &s, 256, 1, 24);
    let (rt, _f, c, s) = catnap_pair(16);
    let catnap = closed_loop(&rt, &c, &s, 256, 1, 24);
    assert!(
        catnip.hist.p99() < catnap.hist.p99(),
        "catnip p99 {}ns must beat the kernel baseline's {}ns",
        catnip.hist.p99(),
        catnap.hist.p99()
    );
    let (rt, _f, c, s) = catnip_pair(17);
    let light = open_loop(&rt, &c, &s, 256, 10_000.0, 24, 5);
    assert!(
        light.hist.p99() <= 2 * catnip.hist.p99(),
        "light open-loop p99 {}ns vs unloaded p99 {}ns",
        light.hist.p99(),
        catnip.hist.p99()
    );
}

proptest! {
    /// A reported quantile never strays more than one log-bucket from the
    /// exact order statistic (S3): the histogram's only lossy step is the
    /// value→bucket rounding.
    #[test]
    fn quantile_within_one_bucket_of_exact(
        mut values in prop::collection::vec(1u64..1_000_000_000, 1..200),
        q_mille in 1usize..1000,
    ) {
        let q = q_mille as f64 / 1000.0;
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let rank = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
        let exact = values[rank - 1];
        let reported = h.value_at_quantile(q);
        let (eb, rb) = (bucket_index(exact), bucket_index(reported));
        prop_assert!(
            eb.abs_diff(rb) <= 1,
            "q={} exact={} (bucket {}) reported={} (bucket {})",
            q, exact, eb, reported, rb
        );
    }

    /// Histogram counts are exact regardless of value distribution.
    #[test]
    fn counts_are_exact(values in prop::collection::vec(any::<u64>(), 0..300)) {
        let mut h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        prop_assert_eq!(h.count(), values.len() as u64);
        if let Some(&max) = values.iter().max() {
            prop_assert_eq!(h.max(), max);
        }
    }
}
