//! Multi-tenant device-sharing invariants (PR 10, toward E20).
//!
//! Several mutually untrusting applications share one device; the
//! tenancy layer must make that sharing safe *and* fair:
//!
//! * **Port ownership** — a tenant binds only ports the host granted
//!   it; foreign binds fail typed and are counted, never silently
//!   rerouted.
//! * **TX quotas** — a flooding tenant's frames drop at its own bounded
//!   staging lane; the shared ring never sees the overflow.
//! * **Weighted fairness** — under saturation the deficit round-robin
//!   serves tenants in proportion to weight, even when the per-pass
//!   byte budget is smaller than one lane's quantum.
//! * **Rate limits** — a token bucket paces a tenant's TX to its
//!   configured bytes/sec on the virtual clock, waking exactly on the
//!   bucket deadline.
//! * **Partitioned TCP state** — SYN floods fill only the hostile
//!   listener's fixed table, and TIME_WAIT quota evictions take the
//!   hostile tenant's own oldest record, never a neighbour's.
//! * **Memory isolation** — cross-tenant buffer views and binds always
//!   deny, and a hostile tenant's activity never perturbs a victim's
//!   byte stream (the differential property E20 measures at scale).

use std::net::Ipv4Addr;
use std::sync::Arc;

use demi_memory::{BufferPool, DemiBuffer, DEFAULT_HEADROOM};
use demi_tenant::{RateLimit, TenantId, TenantRegistry, TenantSpec};
use dpdk_sim::{DpdkPort, PortConfig};
use net_stack::counters as nsc;
use net_stack::tcp::State;
use net_stack::types::{NetError, SocketAddr};
use net_stack::{NetworkStack, StackConfig, TenancyCfg};
use proptest::prelude::*;
use sim_fabric::{Fabric, MacAddress};

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

/// A plain single-tenant host (no tenancy policy).
fn host(fabric: &Fabric, last: u8) -> NetworkStack {
    let port = DpdkPort::new(fabric, PortConfig::basic(MacAddress::from_last_octet(last)));
    NetworkStack::new(port, fabric.clock(), StackConfig::new(ip(last)))
}

/// A host enforcing the given tenancy policy.
fn tenant_host(fabric: &Fabric, last: u8, tenancy: TenancyCfg) -> NetworkStack {
    let port = DpdkPort::new(fabric, PortConfig::basic(MacAddress::from_last_octet(last)));
    let mut cfg = StackConfig::new(ip(last));
    cfg.tenancy = Some(tenancy);
    NetworkStack::new(port, fabric.clock(), cfg)
}

/// Runs the world until `until` returns true or the simulation wedges.
fn settle(fabric: &Fabric, stacks: &[&NetworkStack], mut until: impl FnMut() -> bool) {
    for _ in 0..200_000 {
        for s in stacks {
            s.poll();
        }
        if until() {
            return;
        }
        if fabric.advance_to_next_event() {
            continue;
        }
        let deadline = stacks.iter().filter_map(|s| s.next_deadline()).min();
        match deadline {
            Some(t) => fabric.clock().advance_to(t),
            None => panic!("simulation went quiescent before the condition held"),
        }
    }
    panic!("simulation did not settle");
}

/// Resolves ARP in both directions over a throwaway host-owned UDP port,
/// so later tenant sends stage immediately instead of parking in the ARP
/// pending queue.
fn warm_arp(fabric: &Fabric, a: &NetworkStack, b: &NetworkStack) {
    a.udp_bind(9901).unwrap();
    b.udp_bind(9901).unwrap();
    let to_b = SocketAddr::new(b.local_ip(), 9901);
    let to_a = SocketAddr::new(a.local_ip(), 9901);
    a.udp_sendto(9901, to_b, DemiBuffer::from_slice(b"warm"))
        .unwrap();
    b.udp_sendto(9901, to_a, DemiBuffer::from_slice(b"warm"))
        .unwrap();
    settle(fabric, &[a, b], || {
        a.udp_pending(9901) > 0 && b.udp_pending(9901) > 0
    });
    while a.udp_recv_from(9901).is_some() {}
    while b.udp_recv_from(9901).is_some() {}
}

/// A tenant-stamped payload with enough headroom for zero-copy headers.
fn tenant_payload(pool: &BufferPool, len: usize, fill: u8) -> DemiBuffer {
    let mut buf = pool.alloc_with_headroom(DEFAULT_HEADROOM, len);
    buf.try_mut().expect("fresh buffer is exclusive").fill(fill);
    buf
}

/// Wire bytes of a UDP frame carrying `payload` bytes (ETH+IP+UDP = 42).
const fn udp_frame_bytes(payload: u64) -> u64 {
    payload + 42
}

#[test]
fn port_ownership_gates_bind_and_listen() {
    let fabric = Fabric::new(41);
    let registry = Arc::new(TenantRegistry::new());
    let alice = registry.register(TenantSpec::named("alice", 1));
    let bob = registry.register(TenantSpec::named("bob", 1));
    registry.grant_port(alice, 8080);
    let a = tenant_host(&fabric, 1, TenancyCfg::new(Arc::clone(&registry)));

    let before = demi_tenant::counters::snapshot();
    demi_tenant::scope(bob, || {
        // Bob may not take Alice's port over either protocol...
        assert_eq!(
            a.tcp_listen(8080, 8).unwrap_err(),
            NetError::TenantDenied(8080)
        );
        assert_eq!(a.udp_bind(8080).unwrap_err(), NetError::TenantDenied(8080));
        // ...nor squat on an unowned port: tenants bind only what the
        // host granted them.
        assert_eq!(
            a.tcp_listen(9090, 8).unwrap_err(),
            NetError::TenantDenied(9090)
        );
    });
    // The host supervisor must not squat on a tenant's partition either.
    assert_eq!(a.udp_bind(8080).unwrap_err(), NetError::TenantDenied(8080));
    // The owner binds fine.
    demi_tenant::scope(alice, || {
        a.tcp_listen(8080, 8).unwrap();
    });
    let denied = demi_tenant::counters::snapshot().delta(&before);
    assert!(
        denied.cross_tenant_denials >= 4,
        "every refusal is a counted isolation event, got {}",
        denied.cross_tenant_denials
    );
}

#[test]
fn tx_lane_quota_drops_overflow_at_the_lane() {
    let fabric = Fabric::new(42);
    let registry = Arc::new(TenantRegistry::new());
    let mut spec = TenantSpec::named("flooder", 1);
    spec.tx_lane_frames = 4;
    let t = registry.register(spec);
    registry.grant_port(t, 7000);
    let mut tenancy = TenancyCfg::new(Arc::clone(&registry));
    // A frozen link: the per-pass budget admits nothing, so the lane
    // bound is the only thing between the flood and the shared ring.
    tenancy.tx_pass_bytes = Some(0);
    let a = tenant_host(&fabric, 1, tenancy);
    let b = host(&fabric, 2);
    warm_arp(&fabric, &a, &b);

    demi_tenant::scope(t, || a.udp_bind(7000).unwrap());
    let pool = BufferPool::for_tenant(t, None);
    let before = demi_tenant::counters::snapshot();
    for _ in 0..10 {
        let payload = tenant_payload(&pool, 64, 0xF1);
        a.udp_sendto(7000, SocketAddr::new(ip(2), 7000), payload)
            .unwrap();
    }
    let stats = a.tenant_stats();
    let lane = stats.iter().find(|s| s.tenant == t.0).unwrap();
    assert_eq!(lane.staged_frames, 4, "the lane holds exactly its bound");
    assert_eq!(lane.quota_drops, 6, "overflow drops at the lane");
    assert_eq!(lane.sent_frames, 0, "the frozen link admitted nothing");
    assert!(
        demi_tenant::counters::snapshot().delta(&before).quota_drops >= 6,
        "lane drops are counted isolation events"
    );
    // The budget-capped leftover is reported as poll backlog so the
    // scheduler keeps coming back for it.
    assert!(a.poll() >= 4);
}

#[test]
fn drr_converges_to_weighted_shares_under_saturation() {
    let fabric = Fabric::new(43);
    let registry = Arc::new(TenantRegistry::new());
    let alice = registry.register(TenantSpec::named("alice", 3));
    let bob = registry.register(TenantSpec::named("bob", 1));
    registry.grant_port(alice, 7100);
    registry.grant_port(bob, 7200);
    let mut tenancy = TenancyCfg::new(Arc::clone(&registry));
    // Per-pass budget of ~5.7 frames: the link saturates and DRR's
    // proportional shares become observable.
    tenancy.tx_pass_bytes = Some(6000);
    let a = tenant_host(&fabric, 1, tenancy);
    let b = host(&fabric, 2);
    warm_arp(&fabric, &a, &b);

    demi_tenant::scope(alice, || a.udp_bind(7100).unwrap());
    demi_tenant::scope(bob, || a.udp_bind(7200).unwrap());
    let pa = BufferPool::for_tenant(alice, None);
    let pb = BufferPool::for_tenant(bob, None);
    for _ in 0..60 {
        a.udp_sendto(
            7100,
            SocketAddr::new(ip(2), 7100),
            tenant_payload(&pa, 1000, 0xAA),
        )
        .unwrap();
        a.udp_sendto(
            7200,
            SocketAddr::new(ip(2), 7200),
            tenant_payload(&pb, 1000, 0xBB),
        )
        .unwrap();
    }
    for _ in 0..8 {
        a.poll();
    }
    let stats = a.tenant_stats();
    let sa = stats.iter().find(|s| s.tenant == alice.0).unwrap();
    let sb = stats.iter().find(|s| s.tenant == bob.0).unwrap();
    assert!(
        sa.staged_frames > 0 && sb.staged_frames > 0,
        "both lanes must still be backlogged for the share to be meaningful"
    );
    let ratio = sa.sent_bytes as f64 / sb.sent_bytes as f64;
    assert!(
        (2.2..=3.8).contains(&ratio),
        "weight-3 : weight-1 service ratio should be ~3, got {ratio:.2} \
         (alice {} B, bob {} B)",
        sa.sent_bytes,
        sb.sent_bytes
    );
}

#[test]
fn budget_smaller_than_one_quantum_never_starves_later_lanes() {
    // Regression for the mid-round resume: with a per-pass byte budget
    // smaller than the first lane's round service, a naive DRR would
    // re-credit that lane's quantum on every pass and the second lane
    // would never transmit a single frame.
    let fabric = Fabric::new(44);
    let registry = Arc::new(TenantRegistry::new());
    let alice = registry.register(TenantSpec::named("alice", 8));
    let bob = registry.register(TenantSpec::named("bob", 1));
    registry.grant_port(alice, 7100);
    registry.grant_port(bob, 7200);
    let mut tenancy = TenancyCfg::new(Arc::clone(&registry));
    tenancy.tx_pass_bytes = Some(1100); // one 1042-byte frame per pass
    let a = tenant_host(&fabric, 1, tenancy);
    let b = host(&fabric, 2);
    warm_arp(&fabric, &a, &b);

    demi_tenant::scope(alice, || a.udp_bind(7100).unwrap());
    demi_tenant::scope(bob, || a.udp_bind(7200).unwrap());
    let pa = BufferPool::for_tenant(alice, None);
    let pb = BufferPool::for_tenant(bob, None);
    for _ in 0..40 {
        a.udp_sendto(
            7100,
            SocketAddr::new(ip(2), 7100),
            tenant_payload(&pa, 1000, 0xAA),
        )
        .unwrap();
        a.udp_sendto(
            7200,
            SocketAddr::new(ip(2), 7200),
            tenant_payload(&pb, 1000, 0xBB),
        )
        .unwrap();
    }
    for _ in 0..18 {
        a.poll();
    }
    let stats = a.tenant_stats();
    let sa = stats.iter().find(|s| s.tenant == alice.0).unwrap();
    let sb = stats.iter().find(|s| s.tenant == bob.0).unwrap();
    assert!(
        sb.sent_frames >= 1,
        "the weight-1 lane must be served across budget-capped rounds"
    );
    assert!(
        sa.sent_frames > sb.sent_frames,
        "the weight-8 lane still dominates ({} vs {})",
        sa.sent_frames,
        sb.sent_frames
    );
}

#[test]
fn token_bucket_paces_tx_to_the_configured_rate_on_virtual_time() {
    const PAYLOAD: u64 = 1000;
    const FRAMES: u64 = 20;
    const RATE: u64 = 1_000_000; // 1 byte per µs of virtual time.
    let frame = udp_frame_bytes(PAYLOAD);
    let fabric = Fabric::new(45);
    let registry = Arc::new(TenantRegistry::new());
    let mut spec = TenantSpec::named("paced", 1);
    spec.rate = Some(RateLimit {
        bytes_per_sec: RATE,
        burst_bytes: 2 * frame,
    });
    let t = registry.register(spec);
    registry.grant_port(t, 7000);
    let a = tenant_host(&fabric, 1, TenancyCfg::new(Arc::clone(&registry)));
    let b = host(&fabric, 2);
    warm_arp(&fabric, &a, &b);
    b.udp_bind(7000).unwrap();

    demi_tenant::scope(t, || a.udp_bind(7000).unwrap());
    let pool = BufferPool::for_tenant(t, None);
    for _ in 0..FRAMES {
        a.udp_sendto(
            7000,
            SocketAddr::new(ip(2), 7000),
            tenant_payload(&pool, PAYLOAD as usize, 0xCC),
        )
        .unwrap();
    }
    let t0 = fabric.clock().now().as_nanos();
    settle(&fabric, &[&a, &b], || {
        b.udp_pending(7000) == FRAMES as usize
    });
    let elapsed = fabric.clock().now().as_nanos() - t0;
    // The burst covers 2 frames; the remaining 18 drain at RATE, waking
    // on the bucket deadline folded into the stack's timer horizon.
    let expected = (FRAMES - 2) * frame * 1_000_000_000 / RATE;
    assert!(
        elapsed >= expected,
        "drained faster than the rate limit allows: {elapsed} < {expected} ns"
    );
    assert!(
        elapsed <= expected + expected / 5,
        "paced drain took far longer than the configured rate: \
         {elapsed} vs {expected} ns"
    );
    let stats = a.tenant_stats();
    let lane = stats.iter().find(|s| s.tenant == t.0).unwrap();
    assert!(
        lane.rate_deferrals > 0,
        "the bucket visibly deferred frames"
    );
    assert_eq!(lane.sent_frames, FRAMES);
}

#[test]
fn time_wait_quota_evicts_the_hostile_tenants_own_oldest_only() {
    let fabric = Fabric::new(46);
    let registry = Arc::new(TenantRegistry::new());
    let victim = registry.register(TenantSpec::named("victim", 1));
    let mut spec = TenantSpec::named("hostile", 1);
    spec.tw_quota = Some(4);
    let hostile = registry.register(spec);
    let a = tenant_host(&fabric, 1, TenancyCfg::new(Arc::clone(&registry)));
    let b = host(&fabric, 2);
    let lid = b.tcp_listen(9000, 32).unwrap();

    // Open every connection concurrently (2 victim + 10 hostile) so the
    // whole churn fits well inside one 2·MSL window.
    let to = SocketAddr::new(ip(2), 9000);
    let vconns: Vec<_> = demi_tenant::scope(victim, || {
        (0..2).map(|_| a.tcp_connect(to).unwrap()).collect()
    });
    let hconns: Vec<_> = demi_tenant::scope(hostile, || {
        (0..10).map(|_| a.tcp_connect(to).unwrap()).collect()
    });
    let all: Vec<_> = vconns.iter().chain(hconns.iter()).copied().collect();
    let mut accepted = Vec::new();
    settle(&fabric, &[&a, &b], || {
        while let Some(s) = b.tcp_accept(lid).unwrap() {
            accepted.push(s);
        }
        accepted.len() == all.len()
            && all
                .iter()
                .all(|&c| a.tcp_state(c) == Ok(State::Established))
    });
    let before = demi_tenant::counters::snapshot();
    // Full close walk: the client side takes every TIME_WAIT.
    for &c in &all {
        a.tcp_close(c).unwrap();
    }
    settle(&fabric, &[&a, &b], || {
        accepted.iter().all(|&s| b.tcp_eof(s))
    });
    for &s in &accepted {
        b.tcp_close(s).unwrap();
    }
    settle(&fabric, &[&a, &b], || {
        all.iter()
            .all(|&c| a.tcp_state(c) == Ok(State::TimeWait) || a.tcp_state(c) == Ok(State::Closed))
    });
    assert_eq!(
        a.tcp_tw_count_for(hostile.0),
        4,
        "the hostile tenant's partition is capped at its quota"
    );
    assert_eq!(
        a.tcp_tw_count_for(victim.0),
        2,
        "quota evictions took the hostile tenant's own records, \
         never the victim's"
    );
    assert!(
        demi_tenant::counters::snapshot().delta(&before).quota_drops >= 6,
        "each eviction is a counted quota drop"
    );
}

#[test]
fn syn_flood_fills_only_the_hostile_listeners_partition() {
    let fabric = Fabric::new(47);
    let registry = Arc::new(TenantRegistry::new());
    let victim = registry.register(TenantSpec::named("victim", 1));
    let hostile = registry.register(TenantSpec::named("hostile", 1));
    registry.grant_port(victim, 80);
    registry.grant_port(hostile, 81);
    let b = tenant_host(&fabric, 2, TenancyCfg::new(Arc::clone(&registry)));
    let a = host(&fabric, 1);
    demi_tenant::scope(victim, || b.tcp_listen(80, 16).unwrap());
    demi_tenant::scope(hostile, || b.tcp_listen(81, 4).unwrap());

    // A victim connection established before the flood.
    let vc = a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap();
    settle(&fabric, &[&a, &b], || {
        a.tcp_state(vc) == Ok(State::Established)
    });

    // The flood: 4x the hostile listener's backlog in half-open SYNs.
    // The flooding client stops polling after emitting them, so the
    // handshakes can never complete and the SYNs pile up half-open.
    let before = nsc::conn_snapshot();
    let _floods: Vec<_> = (0..16)
        .map(|_| a.tcp_connect(SocketAddr::new(ip(2), 81)).unwrap())
        .collect();
    for _ in 0..8 {
        a.poll();
    }
    for _ in 0..256 {
        b.poll();
        if !fabric.advance_to_next_event() {
            break;
        }
    }
    assert_eq!(
        b.tcp_syn_backlog_used(81),
        4,
        "the hostile listener's fixed SYN table is full"
    );
    assert_eq!(
        b.tcp_syn_backlog_used(80),
        0,
        "the victim listener's SYN partition is untouched by the flood"
    );
    assert!(
        nsc::conn_snapshot().delta(&before).syns_evicted >= 12,
        "overflow SYNs were evicted from the hostile table, not absorbed"
    );
    assert_eq!(
        a.tcp_state(vc),
        Ok(State::Established),
        "the victim's established connection rode out the flood"
    );
}

#[test]
fn rx_slice_polices_a_tenants_inbound_flood() {
    let fabric = Fabric::new(48);
    let registry = Arc::new(TenantRegistry::new());
    let mut vspec = TenantSpec::named("victim", 1);
    vspec.rx_share = 7;
    let victim = registry.register(vspec);
    let hostile = registry.register(TenantSpec::named("hostile", 1));
    registry.grant_port(victim, 6100);
    registry.grant_port(hostile, 6000);
    let port = DpdkPort::new(&fabric, PortConfig::basic(MacAddress::from_last_octet(2)));
    let mut cfg = StackConfig::new(ip(2));
    cfg.rx_budget = 8; // victim slice 7 frames/pass, hostile slice 1.
    cfg.tenancy = Some(TenancyCfg::new(Arc::clone(&registry)));
    let b = NetworkStack::new(port, fabric.clock(), cfg);
    let a = host(&fabric, 1);
    warm_arp(&fabric, &a, &b);
    demi_tenant::scope(hostile, || b.udp_bind(6000).unwrap());
    demi_tenant::scope(victim, || b.udp_bind(6100).unwrap());
    a.udp_bind(6500).unwrap();

    // Flood the hostile tenant's port with 24 datagrams.
    for _ in 0..24 {
        a.udp_sendto(
            6500,
            SocketAddr::new(ip(2), 6000),
            DemiBuffer::from_slice(&[0xEE; 64]),
        )
        .unwrap();
    }
    a.poll();
    // Land the whole flood in the device ring first, then drain: each
    // poll pass sees a full ring, so the per-pass slice actually binds.
    while fabric.advance_to_next_event() {}
    for _ in 0..8 {
        b.poll();
    }
    let stats = b.tenant_stats();
    let h = stats.iter().find(|s| s.tenant == hostile.0).unwrap();
    assert!(
        h.rx_quota_drops > 0,
        "the flood exceeded the hostile tenant's RX slice"
    );
    assert!(
        b.udp_pending(6000) < 24,
        "over-slice datagrams were dropped, not queued"
    );
    // The victim's traffic still flows at full fidelity.
    for _ in 0..5 {
        a.udp_sendto(
            6500,
            SocketAddr::new(ip(2), 6100),
            DemiBuffer::from_slice(&[0x11; 64]),
        )
        .unwrap();
    }
    settle(&fabric, &[&a, &b], || b.udp_pending(6100) == 5);
    let stats = b.tenant_stats();
    let v = stats.iter().find(|s| s.tenant == victim.0).unwrap();
    assert_eq!(v.rx_quota_drops, 0, "the victim's slice never saturated");
}

/// One victim echo session over TCP while a hostile tenant optionally
/// sprays UDP through the same device. Returns every byte the victim
/// received back.
fn victim_stream(chunks: &[Vec<u8>], hostile_active: bool) -> Vec<u8> {
    let fabric = Fabric::new(99);
    let registry = Arc::new(TenantRegistry::new());
    let victim = registry.register(TenantSpec::named("victim", 1));
    let hostile = registry.register(TenantSpec::named("hostile", 1));
    let a = tenant_host(&fabric, 1, TenancyCfg::new(Arc::clone(&registry)));
    let b = host(&fabric, 2);
    warm_arp(&fabric, &a, &b);

    let lid = b.tcp_listen(7000, 8).unwrap();
    let conn = demi_tenant::scope(victim, || {
        a.tcp_connect(SocketAddr::new(ip(2), 7000)).unwrap()
    });
    let mut server_conn = None;
    settle(&fabric, &[&a, &b], || {
        if server_conn.is_none() {
            server_conn = b.tcp_accept(lid).unwrap();
        }
        server_conn.is_some() && a.tcp_state(conn) == Ok(State::Established)
    });
    let sc = server_conn.unwrap();

    let vpool = BufferPool::for_tenant(victim, None);
    for c in chunks {
        let mut payload = vpool.alloc_with_headroom(DEFAULT_HEADROOM, c.len());
        payload
            .try_mut()
            .expect("fresh buffer is exclusive")
            .copy_from_slice(c);
        a.tcp_send(conn, payload).unwrap();
    }
    let hport = demi_tenant::scope(hostile, || a.udp_bind_ephemeral().unwrap());
    let hpool = BufferPool::for_tenant(hostile, None);
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    let mut got = Vec::new();
    let mut spam_left: u32 = if hostile_active { 64 } else { 0 };
    settle(&fabric, &[&a, &b], || {
        if spam_left > 0 {
            spam_left -= 1;
            // Spray at an unbound port on the peer: pure device-sharing
            // pressure through the hostile tenant's TX lane.
            let _ = a.udp_sendto(
                hport,
                SocketAddr::new(ip(2), 9),
                tenant_payload(&hpool, 400, 0xEE),
            );
        }
        while let Ok(Some(seg)) = b.tcp_recv(sc) {
            b.tcp_send(sc, seg).unwrap();
        }
        while let Ok(Some(seg)) = a.tcp_recv(conn) {
            got.extend_from_slice(seg.as_slice());
        }
        got.len() >= total
    });
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The differential isolation property: the victim's echoed byte
    /// stream is identical whether or not the hostile tenant is
    /// spraying traffic through the shared device.
    #[test]
    fn hostile_activity_never_perturbs_the_victim_stream(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..160), 1..4),
    ) {
        let expected: Vec<u8> = chunks.concat();
        let quiet = victim_stream(&chunks, false);
        prop_assert_eq!(&quiet, &expected);
        let noisy = victim_stream(&chunks, true);
        prop_assert_eq!(quiet, noisy);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Any cross-tenant buffer access fails typed, is counted, and
    /// leaves the owner's bytes untouched; and no foreign tenant (nor
    /// the host) may bind a granted port.
    #[test]
    fn cross_tenant_views_and_binds_always_deny_and_never_alias(
        owner_raw in 1u16..8,
        other_off in 1u16..7,
        len in 1usize..200,
        port in 1024u16..60000,
    ) {
        let owner = TenantId(owner_raw);
        let other = TenantId(1 + (owner_raw - 1 + other_off) % 7);
        prop_assert_ne!(owner, other);
        let pool = BufferPool::for_tenant(owner, None);
        let mut buf = pool.alloc_with_headroom(DEFAULT_HEADROOM, len);
        buf.try_mut().expect("fresh buffer is exclusive").fill(0xAB);
        let before = demi_tenant::counters::snapshot();
        demi_tenant::scope(other, || {
            prop_assert!(buf.try_slice(0, len).is_err());
            prop_assert!(buf.try_clone().is_err());
            prop_assert!(buf.try_mut().is_none());
            prop_assert!(buf.prepend(1).is_err());
        });
        let denied = demi_tenant::counters::snapshot().delta(&before);
        prop_assert!(denied.cross_tenant_denials >= 4);
        prop_assert!(buf.as_slice().iter().all(|&x| x == 0xAB));

        let registry = TenantRegistry::new();
        registry.grant_port(owner, port);
        prop_assert!(registry.may_bind(owner, port));
        prop_assert!(!registry.may_bind(other, port));
        prop_assert!(!registry.may_bind(TenantId::HOST, port));
    }
}
