//! End-to-end demi-kv integration: RESP over the catnip raw byte
//! stream, zero-copy accounting on the warmed GET path, write-through
//! coherence between the host store and the NIC-resident GET cache, and
//! group-committed durability through catfs.
//!
//! The serving loop here is deliberately lock-step (push → pop → drain →
//! reply) rather than a background coroutine, so every test can inspect
//! the engine's [`demi_kv::DrainResult`] — burst depth, reply segment
//! counts, group-commit records — instead of only the wire bytes.

use demi_kv::log::{apply, decode_batch};
use demi_kv::resp::encode_command;
use demi_kv::store::{CacheMirror, KvStore};
use demi_kv::{DrainResult, KvConn, KvEngine, KvEngineConfig};
use demi_memory::{counters as mem_counters, DemiBuffer};
use demikernel::libos::catfs::Catfs;
use demikernel::libos::catnip::Catnip;
use demikernel::libos::{LibOs, SocketKind};
use demikernel::runtime::Runtime;
use demikernel::testing::{catnip_pair, catnip_pair_offload, host_ip};
use demikernel::types::{QDesc, Sga};
use net_stack::types::SocketAddr;
use sim_fabric::SimTime;
use spdk_sim::nvme::{NvmeConfig, NvmeDevice};

/// Connects client to a freshly-listening server; returns (client qd,
/// server connection qd).
fn tcp_pair(client: &Catnip, server: &Catnip, port: u16) -> (QDesc, QDesc) {
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), port)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), port))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();
    (cqd, sqd)
}

/// Client sends one pipelined burst on the raw stream (RESP is
/// self-delimiting — no DEMI framing), the server pops whatever
/// arrived, feeds the parser, and drains the engine once.
#[allow(clippy::too_many_arguments)]
fn send_and_drain(
    client: &Catnip,
    server: &Catnip,
    cqd: QDesc,
    sqd: QDesc,
    engine: &mut KvEngine,
    conn: &mut KvConn,
    burst: Vec<u8>,
    now: SimTime,
) -> DrainResult {
    // Vec → DemiBuffer takes ownership: building the request costs no
    // datapath copy.
    let sga = Sga::from_bufs(vec![DemiBuffer::from(burst)]);
    let qt = client.push_unframed(cqd, &sga).unwrap();
    client.wait(qt, None).unwrap();
    let qt = server.pop_unframed(sqd).unwrap();
    let (_, sga) = server.wait(qt, None).unwrap().expect_pop();
    for seg in sga.segments() {
        conn.feed(seg.clone());
    }
    engine.drain(conn, now)
}

/// Pushes a reply burst back and reads exactly `expect` bytes at the
/// client.
fn reply_and_recv(
    client: &Catnip,
    server: &Catnip,
    cqd: QDesc,
    sqd: QDesc,
    segs: Vec<DemiBuffer>,
    expect: usize,
) -> Vec<u8> {
    let burst = Sga::from_bufs(segs);
    let qt = server.push_unframed(sqd, &burst).unwrap();
    server.wait(qt, None).unwrap();
    let mut got = Vec::new();
    while got.len() < expect {
        let qt = client.pop_unframed(cqd).unwrap();
        let (_, sga) = client.wait(qt, None).unwrap().expect_pop();
        got.extend_from_slice(&sga.to_vec());
    }
    got
}

fn engine(memory: demi_memory::MemoryManager, now: SimTime, durable: bool) -> KvEngine {
    KvEngine::new(
        KvEngineConfig {
            byte_budget: 1 << 20,
            durable,
        },
        memory,
        now,
    )
}

// ---------------------------------------------------------------------
// RESP end-to-end: a pipelined burst drains in one pass, replies
// coalesce, and a command split mid-argument reassembles correctly.
// ---------------------------------------------------------------------

#[test]
fn pipelined_resp_burst_over_catnip_stream() {
    let (rt, _fabric, client, server) = catnip_pair(31);
    let (cqd, sqd) = tcp_pair(&client, &server, 6379);
    let mut eng = engine(server.memory().clone(), rt.now(), false);
    let mut conn = KvConn::new();

    // Five commands, one TX, one engine pass, one coalesced reply burst.
    let mut burst = Vec::new();
    encode_command(&mut burst, &[b"PING"]);
    encode_command(&mut burst, &[b"SET", b"alpha", b"first"]);
    encode_command(&mut burst, &[b"GET", b"alpha"]);
    encode_command(&mut burst, &[b"DEL", b"alpha"]);
    encode_command(&mut burst, &[b"GET", b"alpha"]);
    let r = send_and_drain(
        &client,
        &server,
        cqd,
        sqd,
        &mut eng,
        &mut conn,
        burst,
        rt.now(),
    );
    assert_eq!(r.depth, 5, "the whole burst executes in one pass");
    assert!(r.batch.is_none(), "non-durable: nothing group-commits");
    assert!(r.deferred.is_empty());
    let expected = b"+PONG\r\n+OK\r\n$5\r\nfirst\r\n:1\r\n$-1\r\n";
    let got = reply_and_recv(&client, &server, cqd, sqd, r.immediate, expected.len());
    assert_eq!(got, expected);
    assert_eq!(eng.stats().max_burst, 5);

    // A command split mid-argument across two TX bursts: the first
    // drain holds the partial, the second completes it via the
    // parser's counted reassembly fallback.
    let mut split = Vec::new();
    encode_command(&mut split, &[b"SET", b"beta", b"second-value"]);
    let cut = split.len() - 7; // inside the value argument
    let head = split[..cut].to_vec();
    let tail = split[cut..].to_vec();
    let r = send_and_drain(
        &client,
        &server,
        cqd,
        sqd,
        &mut eng,
        &mut conn,
        head,
        rt.now(),
    );
    assert_eq!(r.depth, 0, "no complete command yet");
    assert!(r.immediate.is_empty());
    let r = send_and_drain(
        &client,
        &server,
        cqd,
        sqd,
        &mut eng,
        &mut conn,
        tail,
        rt.now(),
    );
    assert_eq!(r.depth, 1);
    let got = reply_and_recv(&client, &server, cqd, sqd, r.immediate, 5);
    assert_eq!(got, b"+OK\r\n");
    assert!(
        conn.parser_stats().reassembled_args > 0,
        "the straddling argument took the counted reassembly path"
    );
    assert_eq!(
        eng.store_mut().get(b"beta", rt.now()).unwrap().to_vec(),
        b"second-value"
    );
}

// ---------------------------------------------------------------------
// Zero-copy and coalescing: a warmed pipelined GET moves no payload
// bytes and replies in a bounded number of segments.
// ---------------------------------------------------------------------

#[test]
fn warmed_get_burst_is_zero_copy_and_coalesced() {
    const DEPTH: usize = 8;
    let (rt, _fabric, client, server) = catnip_pair(32);
    let (cqd, sqd) = tcp_pair(&client, &server, 6379);
    let mut eng = engine(server.memory().clone(), rt.now(), false);
    let mut conn = KvConn::new();

    // Preload over the wire so stored values are sub-views of the RX
    // buffers that carried them.
    let mut burst = Vec::new();
    for i in 0..DEPTH {
        encode_command(
            &mut burst,
            &[
                b"SET",
                format!("key{i}").as_bytes(),
                format!("value-{i}").as_bytes(),
            ],
        );
    }
    let r = send_and_drain(
        &client,
        &server,
        cqd,
        sqd,
        &mut eng,
        &mut conn,
        burst,
        rt.now(),
    );
    let _ = reply_and_recv(&client, &server, cqd, sqd, r.immediate, DEPTH * 5);

    let get_burst = || {
        let mut b = Vec::new();
        for i in 0..DEPTH {
            encode_command(&mut b, &[b"GET", format!("key{i}").as_bytes()]);
        }
        b
    };
    let expected: Vec<u8> = (0..DEPTH)
        .flat_map(|i| format!("$7\r\nvalue-{i}\r\n").into_bytes())
        .collect();

    // Warm once (pool populated, parser and reply paths steady).
    let r = send_and_drain(
        &client,
        &server,
        cqd,
        sqd,
        &mut eng,
        &mut conn,
        get_burst(),
        rt.now(),
    );
    let got = reply_and_recv(&client, &server, cqd, sqd, r.immediate, expected.len());
    assert_eq!(got, expected);

    // Measured window: parse over RX views, look up, build the reply
    // burst sharing value handles. The counter window brackets each
    // engine pass — the serving path itself — so wire-header
    // serialization (E12's axis, measured there) stays out of frame;
    // the bare-peer E19 bench asserts the whole-path version.
    let reasm_before = conn.parser_stats().reassembled_args;
    let (mut drain_copies, mut drain_bytes) = (0u64, 0u64);
    for _ in 0..16 {
        // Deliver the burst to the server without draining yet.
        let sga = Sga::from_bufs(vec![DemiBuffer::from(get_burst())]);
        let qt = client.push_unframed(cqd, &sga).unwrap();
        client.wait(qt, None).unwrap();
        let qt = server.pop_unframed(sqd).unwrap();
        let (_, rsga) = server.wait(qt, None).unwrap().expect_pop();
        for seg in rsga.segments() {
            conn.feed(seg.clone());
        }
        let before = mem_counters::snapshot();
        let r = eng.drain(&mut conn, rt.now());
        let d = mem_counters::snapshot().delta(&before);
        drain_copies += d.copies;
        drain_bytes += d.bytes_copied;
        assert_eq!(r.depth, DEPTH);
        assert!(
            r.immediate.len() <= 2 * DEPTH + 1,
            "replies must coalesce: {} segments for a depth-{DEPTH} burst",
            r.immediate.len()
        );
        let got = reply_and_recv(&client, &server, cqd, sqd, r.immediate, expected.len());
        assert_eq!(got, expected);
    }
    assert_eq!(
        drain_bytes, 0,
        "warmed pipelined GETs must move zero payload bytes through the engine"
    );
    assert_eq!(drain_copies, 0, "no copy calls on the warmed GET path");
    assert_eq!(
        conn.parser_stats().reassembled_args,
        reasm_before,
        "single-segment bursts never take the reassembly fallback"
    );
}

// ---------------------------------------------------------------------
// Coherence: the host store and the NIC-resident GET cache share ONE
// insert/invalidate path — every host-side removal the device cannot
// observe on the wire rings the invalidate doorbell.
// ---------------------------------------------------------------------

struct OffloadMirror {
    libos: Catnip,
}

impl CacheMirror for OffloadMirror {
    fn insert(&mut self, key: &[u8], value: &[u8]) -> bool {
        self.libos.offload_cache_insert(key, value)
    }

    fn invalidate(&mut self, key: &[u8]) {
        let _ = self.libos.offload_cache_invalidate(key);
    }
}

#[test]
fn host_and_device_caches_share_one_invalidate_path() {
    let (rt, _fabric, _client, server) = catnip_pair_offload(33, 4);
    server.install_kv_offload(6379, 4 * 1024).unwrap();
    // A deliberately tiny budget so the eviction path triggers too.
    let mut store = KvStore::new(256, rt.now());
    store.set_mirror(Box::new(OffloadMirror {
        libos: server.clone(),
    }));
    let stats = || server.offload_stats().expect("offload installed");

    // Insert-after-miss publishes into device memory.
    store
        .set(b"alpha", DemiBuffer::from_slice(b"one"), None, rt.now())
        .unwrap();
    assert!(store.publish_to_mirror(b"alpha"));
    assert!(
        stats().cache_bytes > 0,
        "published value is device-resident"
    );
    assert_eq!(stats().kv_invalidations, 0);

    // Overwrite: the device must never serve the stale value.
    store
        .set(b"alpha", DemiBuffer::from_slice(b"two"), None, rt.now())
        .unwrap();
    assert_eq!(stats().kv_invalidations, 1, "overwrite rings the doorbell");
    assert_eq!(stats().cache_bytes, 0, "stale value left device memory");

    // DEL of a republished key invalidates again.
    assert!(store.publish_to_mirror(b"alpha"));
    assert!(store.del(b"alpha", rt.now()));
    assert_eq!(stats().kv_invalidations, 2);

    // TTL expiry (lazy, on the late GET) invalidates.
    store
        .set(
            b"beta",
            DemiBuffer::from_slice(b"fleeting"),
            Some(rt.now().saturating_add(SimTime::from_millis(1))),
            rt.now(),
        )
        .unwrap();
    assert!(store.publish_to_mirror(b"beta"));
    rt.settle(SimTime::from_millis(2));
    assert!(store.get(b"beta", rt.now()).is_none(), "expired");
    assert_eq!(stats().kv_invalidations, 3, "expiry rings the doorbell");

    // LRU eviction under the byte budget invalidates the victims.
    let before = stats().kv_invalidations;
    for i in 0..12 {
        let key = format!("bulk{i:02}").into_bytes();
        store
            .set(&key, DemiBuffer::from_slice(&[0x42; 24]), None, rt.now())
            .unwrap();
        assert!(store.publish_to_mirror(&key));
    }
    assert!(
        store.stats().evictions > 0,
        "the tiny budget forced evictions"
    );
    assert!(
        stats().kv_invalidations > before,
        "every eviction of a device-resident key rang the doorbell"
    );
}

// ---------------------------------------------------------------------
// Durability: replies that depend on a mutation ride behind its group
// commit; replay on a fresh catfs instance rebuilds acknowledged state.
// ---------------------------------------------------------------------

#[test]
fn group_commit_replay_restores_acknowledged_sets() {
    let rt = Runtime::new();
    let device = NvmeDevice::new(rt.clock().clone(), NvmeConfig::default());
    let fs = Catfs::new(&rt, device.clone());
    let qd = fs.create("kv-test.aof").unwrap();
    let mut eng = engine(demi_memory::MemoryManager::new(), rt.now(), true);
    let mut conn = KvConn::new();

    // PING and the missing GET precede the first mutation: immediate.
    // Everything from the SET on is deferred behind the group commit.
    let mut burst = Vec::new();
    encode_command(&mut burst, &[b"PING"]);
    encode_command(&mut burst, &[b"GET", b"a"]);
    encode_command(&mut burst, &[b"SET", b"a", b"1"]);
    encode_command(&mut burst, &[b"GET", b"a"]);
    encode_command(&mut burst, &[b"SET", b"b", b"2"]);
    conn.feed(DemiBuffer::from(burst));
    let r = eng.drain(&mut conn, rt.now());
    let flat = |segs: &[DemiBuffer]| -> Vec<u8> {
        segs.iter().flat_map(|s| s.as_slice().to_vec()).collect()
    };
    assert_eq!(flat(&r.immediate), b"+PONG\r\n$-1\r\n");
    assert_eq!(flat(&r.deferred), b"+OK\r\n$1\r\n1\r\n+OK\r\n");
    let batch = r.batch.expect("two SETs group-commit as one record");
    fs.blocking_push(qd, &Sga::from_bufs(vec![DemiBuffer::from(batch)]))
        .unwrap();

    // Crash: a fresh catfs on the same device replays the record.
    let rt2 = Runtime::with_clock(rt.clock().clone());
    let fs2 = Catfs::new(&rt2, device);
    let rqd = fs2.recover("kv-test.aof").unwrap();
    let mut recovered = KvStore::new(1 << 20, rt2.now());
    let (_, sga) = fs2.blocking_pop(rqd).unwrap().expect_pop();
    for entry in decode_batch(&sga.to_vec()).unwrap() {
        apply(&mut recovered, &entry, rt2.now());
    }
    let dump = recovered.dump(rt2.now());
    assert_eq!(dump.len(), 2);
    assert_eq!(dump[0], (b"a".to_vec(), b"1".to_vec()));
    assert_eq!(dump[1], (b"b".to_vec(), b"2".to_vec()));
}
