//! RSS flow steering and sharded-stack invariants (PR 4, toward E14).
//!
//! Three layers are pinned here:
//!
//! * the device's RSS hash is deterministic and symmetric, and spreads
//!   distinct flows across queues (property tests);
//! * the hierarchical timing wheel fires *identically* to the linear
//!   earliest-deadline scan it replaced (differential test);
//! * the stack built on both behaves: a single-shard stack drains every
//!   RX queue of a multi-queue device (the round-robin bugfix), and a
//!   sharded stack serves many flows with zero cross-shard traffic.

use std::net::Ipv4Addr;

use demi_memory::DemiBuffer;
use dpdk_sim::{rss, DpdkPort, PortConfig};
use net_stack::tcp::wheel::TimerWheel;
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, StackConfig};
use proptest::prelude::*;
use sim_fabric::{Fabric, MacAddress, SimTime};

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

// ---------------------------------------------------------------------
// RSS properties.
// ---------------------------------------------------------------------

proptest! {
    /// The hash is a pure function of the 4-tuple and is symmetric: both
    /// directions of a flow hash identically, so request and response land
    /// on the same queue (and the same stack shard).
    #[test]
    fn rss_hash_is_deterministic_and_symmetric(
        a_ip in any::<u32>(),
        a_port in any::<u16>(),
        b_ip in any::<u32>(),
        b_port in any::<u16>(),
        queues in 1u16..16,
    ) {
        let a = Ipv4Addr::from(a_ip);
        let b = Ipv4Addr::from(b_ip);
        let forward = rss::hash_tuple(a, a_port, b, b_port);
        prop_assert_eq!(forward, rss::hash_tuple(a, a_port, b, b_port));
        prop_assert_eq!(forward, rss::hash_tuple(b, b_port, a, a_port));
        prop_assert_eq!(
            rss::queue_for_tuple(a, a_port, b, b_port, queues),
            rss::queue_for_tuple(b, b_port, a, a_port, queues)
        );
        prop_assert!(rss::queue_for_tuple(a, a_port, b, b_port, queues) < queues);
    }

    /// Enough distinct flows cover every queue of a 4-queue port: no queue
    /// (and hence no shard) is structurally unreachable.
    #[test]
    fn random_flows_reach_every_queue_of_four(seed in any::<u32>()) {
        let mut hits = [0u32; 4];
        for i in 0..64u32 {
            // 64 distinct client ports against one server endpoint.
            let port = 1_024u16.wrapping_add((seed.wrapping_add(i * 7919) % 60_000) as u16);
            let q = rss::queue_for_tuple(ip(1), port, ip(2), 80, 4);
            hits[q as usize] += 1;
        }
        prop_assert!(
            hits.iter().all(|&h| h > 0),
            "64 flows left a queue idle: {:?}", hits
        );
    }
}

// ---------------------------------------------------------------------
// Timing wheel vs linear scan, differentially.
// ---------------------------------------------------------------------

/// The pre-wheel implementation: a flat list scanned linearly, exactly
/// the `advance_timers` + earliest-deadline walk the wheel replaced.
struct LinearTimers {
    entries: Vec<(u64, u64, u32)>, // (deadline, seq, key)
    seq: u64,
}

impl LinearTimers {
    fn new() -> Self {
        LinearTimers {
            entries: Vec::new(),
            seq: 0,
        }
    }

    fn schedule(&mut self, deadline: u64, key: u32) {
        self.entries.push((deadline, self.seq, key));
        self.seq += 1;
    }

    fn advance(&mut self, now: u64) -> Vec<(u64, u32)> {
        let mut due: Vec<(u64, u64, u32)> = self
            .entries
            .iter()
            .copied()
            .filter(|&(d, _, _)| d <= now)
            .collect();
        self.entries.retain(|&(d, _, _)| d > now);
        due.sort_by_key(|&(d, s, _)| (d, s));
        due.into_iter().map(|(d, _, k)| (d, k)).collect()
    }

    fn peek(&self, live: impl Fn(u32) -> bool) -> Option<u64> {
        self.entries
            .iter()
            .filter(|&&(_, _, k)| live(k))
            .map(|&(d, _, _)| d)
            .min()
    }
}

proptest! {
    /// Any randomized schedule of timers — short RTO-like, delayed-ACK
    /// scale, and TIME_WAIT-long deadlines, advanced by irregular strides —
    /// fires in the identical order, at the identical times, under the
    /// wheel and under the linear scan.
    #[test]
    fn wheel_fires_identically_to_linear_scan(
        deadlines in prop::collection::vec(1u64..200_000_000, 1..120),
        strides in prop::collection::vec(1u64..30_000_000, 1..40),
        dead_mask in any::<u64>(),
    ) {
        let mut wheel: TimerWheel<u32> = TimerWheel::new(SimTime::ZERO);
        let mut linear = LinearTimers::new();
        for (i, &d) in deadlines.iter().enumerate() {
            wheel.schedule(SimTime::from_nanos(d), i as u32);
            linear.schedule(d, i as u32);
        }

        // Lazy cancellation: a subset of keys is declared dead. The wheel
        // discards them via the liveness filter; the linear reference
        // filters the same way.
        let alive = |k: u32| dead_mask & (1 << (k % 64)) == 0;
        prop_assert_eq!(
            wheel.peek_earliest_live(|&k| alive(k)).map(|t| t.as_nanos()),
            linear.peek(alive),
            "earliest live deadline diverged before any advance"
        );

        let mut now = 0u64;
        let mut stride_idx = 0;
        while !wheel.is_empty() || !linear.entries.is_empty() {
            now += strides[stride_idx % strides.len()];
            stride_idx += 1;
            let wheel_fired: Vec<(u64, u32)> = wheel
                .advance(SimTime::from_nanos(now))
                .into_iter()
                .map(|(t, k)| (t.as_nanos(), k))
                .filter(|&(_, k)| alive(k))
                .collect();
            let linear_fired: Vec<(u64, u32)> = linear
                .advance(now)
                .into_iter()
                .filter(|&(_, k)| alive(k))
                .collect();
            prop_assert_eq!(wheel_fired, linear_fired, "divergence at t={}", now);
        }
    }
}

// ---------------------------------------------------------------------
// Stack-level behavior on multi-queue devices.
// ---------------------------------------------------------------------

/// Runs the world until `until` returns true or the simulation wedges.
fn settle(fabric: &Fabric, stacks: &[&NetworkStack], mut until: impl FnMut() -> bool) {
    for _ in 0..100_000 {
        for s in stacks {
            s.poll();
        }
        if until() {
            return;
        }
        if fabric.advance_to_next_event() {
            continue;
        }
        let deadline = stacks.iter().filter_map(|s| s.next_deadline()).min();
        match deadline {
            Some(t) => fabric.clock().advance_to(t),
            None => return, // Fully quiescent.
        }
    }
    panic!("simulation did not settle");
}

fn multi_queue_host(
    fabric: &Fabric,
    last: u8,
    queues: u16,
    sharded: bool,
) -> (NetworkStack, DpdkPort) {
    let port = DpdkPort::new(
        fabric,
        PortConfig {
            num_rx_queues: queues,
            ..PortConfig::basic(MacAddress::from_last_octet(last))
        },
    );
    let stack = NetworkStack::new(
        port.clone(),
        fabric.clock(),
        StackConfig {
            sharded,
            ..StackConfig::new(ip(last))
        },
    );
    (stack, port)
}

/// The round-robin bugfix: an *unsharded* stack on a 4-queue device must
/// drain every queue, not just queue 0. RSS steers the 32 distinct flows
/// below across all four rings; every datagram must still be delivered.
#[test]
fn single_shard_drains_all_queues_of_a_multi_queue_device() {
    let fabric = Fabric::new(42);
    let (a, _) = multi_queue_host(&fabric, 1, 4, false);
    let (b, b_port) = multi_queue_host(&fabric, 2, 4, false);
    assert_eq!(b.num_shards(), 1, "unsharded stack runs one shard");

    b.udp_bind(7).unwrap();
    let total = 32;
    for i in 0..total {
        let src = 20_000 + i;
        a.udp_bind(src).unwrap();
        a.udp_sendto(src, SocketAddr::new(ip(2), 7), format!("m{i}").as_bytes())
            .unwrap();
    }
    settle(&fabric, &[&a, &b], || b.udp_pending(7) == total as usize);

    let mut got = 0;
    while b.udp_recv_from(7).is_some() {
        got += 1;
    }
    assert_eq!(got, total as usize, "every steered datagram was delivered");
    let queue_stats = b_port.queue_stats();
    let landed: Vec<usize> = queue_stats
        .iter()
        .enumerate()
        .filter(|(_, q)| q.enqueued > 0)
        .map(|(i, _)| i)
        .collect();
    assert!(
        landed.len() >= 2,
        "32 flows must spread past queue 0 (hit: {landed:?})"
    );
    assert!(
        queue_stats.iter().all(|q| q.depth == 0),
        "no queue left stranded: {queue_stats:?}"
    );
}

/// A sharded 4-queue pair serving 16 TCP flows: every connection works,
/// every frame arrives on the shard that owns its flow (zero steering
/// mismatches, zero handoffs), and the load reaches multiple shards.
#[test]
fn sharded_stacks_serve_flows_with_zero_cross_shard_traffic() {
    let fabric = Fabric::new(7);
    let (a, _) = multi_queue_host(&fabric, 1, 4, true);
    let (b, _) = multi_queue_host(&fabric, 2, 4, true);
    assert_eq!(a.num_shards(), 4);

    let lid = b.tcp_listen(80, 64).unwrap();
    let conns: Vec<_> = (0..16)
        .map(|_| a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap())
        .collect();
    for (j, &conn) in conns.iter().enumerate() {
        settle(&fabric, &[&a, &b], || {
            a.tcp_state(conn) == Ok(net_stack::tcp::State::Established)
        });
        // Connection j drew ephemeral port 32768+j; the id-stride rule
        // says its id mod N is the shard that tuple hashes to.
        let port = 32_768 + j as u16;
        assert_eq!(
            a.shard_for(port, SocketAddr::new(ip(2), 80)),
            conn.0 as usize % a.num_shards(),
            "connection placed on the shard its tuple hashes to"
        );
    }
    let mut accepted = Vec::new();
    settle(&fabric, &[&a, &b], || {
        while let Some(c) = b.tcp_accept(lid).unwrap() {
            accepted.push(c);
        }
        accepted.len() == conns.len()
    });

    for (i, &conn) in conns.iter().enumerate() {
        let msg = format!("req-{i}");
        a.tcp_send(conn, DemiBuffer::from_slice(msg.as_bytes()))
            .unwrap();
    }
    let mut echoed = 0;
    settle(&fabric, &[&a, &b], || {
        for &sc in &accepted {
            if let Ok(Some(chunk)) = b.tcp_recv(sc) {
                b.tcp_send(sc, chunk).unwrap();
            }
        }
        for &conn in &conns {
            if a.tcp_recv(conn).ok().flatten().is_some() {
                echoed += 1;
            }
        }
        echoed == conns.len()
    });

    for stack in [&a, &b] {
        let mut shards_with_rx = 0;
        for i in 0..stack.num_shards() {
            let s = stack.shard_stats(i);
            assert_eq!(s.steering_mismatches, 0, "RSS and shard_for agree");
            assert_eq!(s.handoffs_in, 0, "no cross-shard frame traffic");
            if s.rx_frames > 0 {
                shards_with_rx += 1;
            }
        }
        assert!(
            shards_with_rx >= 2,
            "16 flows must exercise more than one shard"
        );
    }
}

/// Idle connections cost nothing per poll: with 200 established-and-quiet
/// connections resident, a poll pass fires no timers and the timer-wheel
/// counters stay still (timer cost scales with *firing* timers — the
/// structural half of E14's idle-connection claim).
#[test]
fn idle_connections_do_not_tick_timers() {
    let fabric = Fabric::new(11);
    let (a, _) = multi_queue_host(&fabric, 1, 4, true);
    let (b, _) = multi_queue_host(&fabric, 2, 4, true);
    b.tcp_listen(80, 256).unwrap();
    let conns: Vec<_> = (0..200)
        .map(|_| a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap())
        .collect();
    settle(&fabric, &[&a, &b], || {
        conns
            .iter()
            .all(|&c| a.tcp_state(c) == Ok(net_stack::tcp::State::Established))
    });
    // Let every delayed-ACK and handshake timer drain.
    settle(&fabric, &[&a, &b], || false);

    let before = net_stack::counters::shard_snapshot();
    for _ in 0..100 {
        a.poll();
        b.poll();
    }
    let moved = net_stack::counters::shard_snapshot().delta(&before);
    assert_eq!(moved.timers_fired, 0, "idle connections fire nothing");
    assert_eq!(moved.timers_scheduled, 0, "and schedule nothing");
}
