//! Table 1: the kernel-bypass accelerator taxonomy, regenerated from the
//! simulated devices' capability descriptors.

use sim_fabric::{DeviceCaps, DeviceCategory};

fn all_devices() -> Vec<DeviceCaps> {
    vec![
        dpdk_sim::capabilities(),
        spdk_sim::capabilities(),
        rdma_sim::capabilities(),
        dpdk_sim::smartnic_capabilities(),
    ]
}

#[test]
fn every_device_is_kernel_bypass() {
    // The one property the whole category shares (paper §2): "There is no
    // unifying interface or set of features, other than reducing
    // application overhead by bypassing the OS kernel."
    for caps in all_devices() {
        assert!(caps.kernel_bypass, "{} must bypass the kernel", caps.name);
    }
}

#[test]
fn columns_match_table_1() {
    // Left column: bypass only.
    assert_eq!(
        dpdk_sim::capabilities().category,
        DeviceCategory::BypassOnly
    );
    assert_eq!(
        spdk_sim::capabilities().category,
        DeviceCategory::BypassOnly
    );
    // Middle column: +OS features (RDMA's reliable transport).
    assert_eq!(
        rdma_sim::capabilities().category,
        DeviceCategory::PlusOsFeatures
    );
    // Right column: +other features (programmable SmartNICs).
    assert_eq!(
        dpdk_sim::smartnic_capabilities().category,
        DeviceCategory::PlusOtherFeatures
    );
}

#[test]
fn rdma_provides_more_than_dpdk_but_not_everything() {
    let dpdk = dpdk_sim::capabilities();
    let rdma = rdma_sim::capabilities();
    // RDMA adds reliable transport in hardware...
    assert!(!dpdk.reliable_transport);
    assert!(rdma.reliable_transport);
    // ...but the paper's complaints hold for both: no buffer management,
    // no flow control, explicit registration required.
    for caps in [&dpdk, &rdma] {
        assert!(!caps.buffer_management, "{}", caps.name);
        assert!(!caps.flow_control, "{}", caps.name);
        assert!(caps.explicit_registration_required, "{}", caps.name);
    }
}

#[test]
fn missing_feature_lists_shrink_across_columns() {
    // The further right in Table 1, the less the libOS must supply.
    let dpdk_missing = dpdk_sim::capabilities().missing_os_features().len();
    let rdma_missing = rdma_sim::capabilities().missing_os_features().len();
    assert!(
        rdma_missing < dpdk_missing,
        "RDMA ({rdma_missing}) should be missing less than DPDK ({dpdk_missing})"
    );
}

#[test]
fn printable_matrix_has_the_papers_shape() {
    // Regenerate the table (also printed by bench e7) and sanity-check it.
    let mut lines = vec![format!(
        "{:<20} {:<16} {:>6} {:>9} {:>7} {:>7} {:>8}",
        "device", "category", "bypass", "reliable", "bufmgmt", "flowctl", "offload"
    )];
    for caps in all_devices() {
        lines.push(format!(
            "{:<20} {:<16} {:>6} {:>9} {:>7} {:>7} {:>8}",
            caps.name,
            caps.category.label(),
            caps.kernel_bypass,
            caps.reliable_transport,
            caps.buffer_management,
            caps.flow_control,
            caps.program_offload
        ));
    }
    let table = lines.join("\n");
    println!("{table}");
    assert!(table.contains("Kernel-bypass"));
    assert!(table.contains("+OS features"));
    assert!(table.contains("+other features"));
    // No simulated device manages buffers for the app — the gap the
    // Demikernel fills.
    assert!(!table.contains("bufmgmt: true"));
}
