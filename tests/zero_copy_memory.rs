//! §4.5 end to end: transparent registration and free-protection across
//! the assembled system.

use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnip_pair, host_ip};
use demikernel::types::Sga;
use net_stack::types::SocketAddr;

#[test]
fn sgaalloc_memory_is_preregistered_and_data_path_registers_nothing() {
    let (_rt, _fabric, client, server) = catnip_pair(501);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();

    let regs_before = client.memory().region_stats().registrations;
    for _ in 0..200 {
        // The application allocates I/O memory with sgaalloc — it never
        // sees a registration call (the paper's transparent registration).
        let sga = client.sgaalloc(512);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    assert_eq!(
        client.memory().region_stats().registrations,
        regs_before,
        "no registration on the data path"
    );
    assert!(client.memory().region_stats().pinned_bytes > 0);
}

#[test]
fn free_protection_lets_the_app_drop_in_flight_buffers() {
    // §4.5: "Applications can free buffers while they are in use by a
    // device, but the libOS will not deallocate the buffer until the
    // device completes its I/O."
    let (_rt, _fabric, client, server) = catnip_pair(502);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), 80)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();

    {
        // Allocate, push, and immediately drop every application handle —
        // the "free" happens while the bytes are still in the TCP stack
        // and the simulated NIC.
        let sga = client.sgaalloc(4096);
        let qt = client.push(cqd, &sga).unwrap();
        drop(sga);
        client.wait(qt, None).unwrap();
    }
    // The data still arrives intact: refcounts kept the storage alive.
    let (_, got) = server.blocking_pop(sqd).unwrap().expect_pop();
    assert_eq!(got.len(), 4096);
}

#[test]
fn shared_buffers_resist_in_place_mutation() {
    // §4.5: no write-protection is offered, but the safe API enforces the
    // allocate-new-buffer discipline: a buffer whose handle is shared
    // (e.g., held by a device queue) refuses `try_mut`.
    let buf = demi_memory::DemiBuffer::from_slice(b"in flight");
    let device_handle = buf.clone();
    let mut app_handle = buf;
    assert!(
        app_handle.try_mut().is_none(),
        "mutation must require exclusive ownership"
    );
    drop(device_handle);
    assert!(app_handle.try_mut().is_some());
}

#[test]
fn pool_recycling_works_through_the_full_stack() {
    // Buffers released after I/O return to the pool; sustained traffic
    // reaches a steady state with no pool growth.
    let (_rt, _fabric, client, server) = catnip_pair(503);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();

    // Warm up.
    for _ in 0..20 {
        let sga = client.sgaalloc(1024);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    let owned_before = client.memory().pool_stats().owned_bytes;
    for _ in 0..200 {
        let sga = client.sgaalloc(1024);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    assert_eq!(
        client.memory().pool_stats().owned_bytes,
        owned_before,
        "steady-state traffic must not grow the pools"
    );
}

#[test]
fn popped_data_shares_storage_with_the_device_frame() {
    // Zero-copy receive: the application's Sga segments are views into
    // the device's mbuf, not copies.
    let (rt, _fabric, client, server) = catnip_pair(504);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();
    client
        .pushto(
            cqd,
            &Sga::from_slice(b"view"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
    let seg = &sga.segments()[0];
    assert!(seg.capacity() > seg.len(), "a view into the full frame");
    // And the libOS performed zero payload copies to deliver it.
    assert_eq!(rt.metrics().snapshot().copies, 0);
}
