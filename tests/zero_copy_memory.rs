//! §4.5 end to end: transparent registration and free-protection across
//! the assembled system.

use demikernel::libos::{LibOs, SocketKind};
use demikernel::testing::{catnip_pair, host_ip};
use demikernel::types::Sga;
use net_stack::types::SocketAddr;

mod headroom_properties {
    //! Property coverage for the headroom API the TX path leans on.

    use demi_memory::{DemiBuffer, HeadroomError};
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// prepend(n) then trim_front(n) restores the original view, byte
        /// for byte, and hands the headroom back.
        #[test]
        fn prepend_then_trim_front_round_trips(
            headroom in 0usize..96,
            payload in prop::collection::vec(any::<u8>(), 1..256),
            n in 1usize..96,
        ) {
            let mut buf = DemiBuffer::zeroed_with_headroom(headroom, payload.len());
            buf.try_mut().unwrap().copy_from_slice(&payload);
            if n <= headroom {
                let filler: Vec<u8> = (0..n as u8).collect();
                buf.prepend(n).unwrap().copy_from_slice(&filler);
                prop_assert_eq!(buf.len(), n + payload.len());
                prop_assert_eq!(&buf.as_slice()[..n], filler.as_slice());
                prop_assert_eq!(buf.headroom(), headroom - n);
                buf.trim_front(n);
                prop_assert_eq!(buf.as_slice(), payload.as_slice());
                prop_assert_eq!(buf.headroom(), headroom, "trim restores headroom");
            } else {
                // Exhaustion is an error, never a silent reallocation: the
                // view (and its storage) are untouched.
                let cap_before = buf.capacity();
                prop_assert_eq!(
                    buf.prepend(n).unwrap_err(),
                    HeadroomError::Exhausted { needed: n, available: headroom }
                );
                prop_assert_eq!(buf.capacity(), cap_before);
                prop_assert_eq!(buf.headroom(), headroom);
                prop_assert_eq!(buf.as_slice(), payload.as_slice());
            }
        }

        /// split_off partitions the view in the same storage, and the two
        /// halves concatenate back to the original bytes.
        #[test]
        fn split_off_partitions_within_one_storage(
            payload in prop::collection::vec(any::<u8>(), 0..256),
            at_frac in 0usize..=100,
        ) {
            let at = payload.len() * at_frac / 100;
            let mut head = DemiBuffer::from_slice(&payload);
            let tail = head.split_off(at);
            prop_assert_eq!(head.as_slice(), &payload[..at]);
            prop_assert_eq!(tail.as_slice(), &payload[at..]);
            prop_assert!(head.same_storage(&tail), "a split is two views, not two buffers");
            let mut rejoined = head.to_vec();
            rejoined.extend_from_slice(tail.as_slice());
            prop_assert_eq!(rejoined, payload);
        }

        /// A live view below blocks both prepend (Shared, not corruption)
        /// and mutation; dropping it restores both capabilities.
        #[test]
        fn views_below_block_prepend_and_mutation(
            payload in prop::collection::vec(any::<u8>(), 1..128),
            headroom in 2usize..64,
        ) {
            let mut buf = DemiBuffer::zeroed_with_headroom(headroom, payload.len());
            buf.try_mut().unwrap().copy_from_slice(&payload);
            // A clone at the same offset (the app's own handle) does NOT
            // block prepend — but does block mutation.
            let mut framed = buf.clone();
            prop_assert!(buf.try_mut().is_none(), "shared buffer refuses try_mut");
            prop_assert!(buf.can_prepend(1));
            // Once the clone prepends (a "device" framing the packet), its
            // view starts below ours and our prepend must refuse.
            framed.prepend(1).unwrap()[0] = 0xEE;
            prop_assert_eq!(buf.prepend(1).unwrap_err(), HeadroomError::Shared);
            prop_assert!(!buf.can_prepend(1));
            drop(framed);
            prop_assert!(buf.prepend(1).is_ok());
            prop_assert!(buf.try_mut().is_some());
            buf.trim_front(1);
            prop_assert_eq!(buf.as_slice(), payload.as_slice(), "payload never disturbed");
        }
    }
}

#[test]
fn sgaalloc_memory_is_preregistered_and_data_path_registers_nothing() {
    let (_rt, _fabric, client, server) = catnip_pair(501);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();

    let regs_before = client.memory().region_stats().registrations;
    for _ in 0..200 {
        // The application allocates I/O memory with sgaalloc — it never
        // sees a registration call (the paper's transparent registration).
        let sga = client.sgaalloc(512);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    assert_eq!(
        client.memory().region_stats().registrations,
        regs_before,
        "no registration on the data path"
    );
    assert!(client.memory().region_stats().pinned_bytes > 0);
}

#[test]
fn free_protection_lets_the_app_drop_in_flight_buffers() {
    // §4.5: "Applications can free buffers while they are in use by a
    // device, but the libOS will not deallocate the buffer until the
    // device completes its I/O."
    let (_rt, _fabric, client, server) = catnip_pair(502);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), 80)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();

    {
        // Allocate, push, and immediately drop every application handle —
        // the "free" happens while the bytes are still in the TCP stack
        // and the simulated NIC.
        let sga = client.sgaalloc(4096);
        let qt = client.push(cqd, &sga).unwrap();
        drop(sga);
        client.wait(qt, None).unwrap();
    }
    // The data still arrives intact: refcounts kept the storage alive.
    let (_, got) = server.blocking_pop(sqd).unwrap().expect_pop();
    assert_eq!(got.len(), 4096);
}

#[test]
fn shared_buffers_resist_in_place_mutation() {
    // §4.5: no write-protection is offered, but the safe API enforces the
    // allocate-new-buffer discipline: a buffer whose handle is shared
    // (e.g., held by a device queue) refuses `try_mut`.
    let buf = demi_memory::DemiBuffer::from_slice(b"in flight");
    let device_handle = buf.clone();
    let mut app_handle = buf;
    assert!(
        app_handle.try_mut().is_none(),
        "mutation must require exclusive ownership"
    );
    drop(device_handle);
    assert!(app_handle.try_mut().is_some());
}

#[test]
fn pool_recycling_works_through_the_full_stack() {
    // Buffers released after I/O return to the pool; sustained traffic
    // reaches a steady state with no pool growth.
    let (_rt, _fabric, client, server) = catnip_pair(503);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();

    // Warm up.
    for _ in 0..20 {
        let sga = client.sgaalloc(1024);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    let owned_before = client.memory().pool_stats().owned_bytes;
    for _ in 0..200 {
        let sga = client.sgaalloc(1024);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    assert_eq!(
        client.memory().pool_stats().owned_bytes,
        owned_before,
        "steady-state traffic must not grow the pools"
    );
}

#[test]
fn wire_and_peer_see_the_senders_own_storage() {
    // The zero-copy invariant, end to end: the payload the peer pops is
    // byte-identical to what the app pushed AND lives in the *same
    // allocation* — one buffer travels app → UDP → IP → Ethernet → mbuf →
    // fabric → peer mbuf → peer app, headers prepended into its headroom.
    let (_rt, _fabric, client, server) = catnip_pair(505);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();

    let mut sga = client.sgaalloc(1400);
    let pattern: Vec<u8> = (0..1400u32).map(|i| (i % 251) as u8).collect();
    sga.segments_mut()[0]
        .try_mut()
        .expect("app handle is exclusive")
        .copy_from_slice(&pattern);
    client
        .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
        .unwrap();
    let (_, got) = server.blocking_pop(sqd).unwrap().expect_pop();
    let popped = &got.segments()[0];
    assert_eq!(popped.as_slice(), pattern.as_slice(), "byte-identical");
    assert!(
        popped.same_storage(&sga.segments()[0]),
        "storage-identical: the peer reads the sender's own allocation"
    );
    // And the view sits past the (trimmed) wire headers — mbuf semantics.
    assert!(
        popped.headroom() >= net_stack::stack::MAX_HEADER_LEN - net_stack::tcp::TCP_MAX_HEADER_LEN
    );
}

#[test]
fn udp_packets_cost_one_alloc_and_zero_copies_each() {
    // E12's claim, asserted rather than printed: after warm-up, each
    // packet on the catnip echo path costs exactly the application's own
    // pool allocation — the stack adds no allocation and moves no payload
    // byte, on TX or RX.
    let (_rt, _fabric, client, server) = catnip_pair(506);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();

    // Warm-up: ARP resolution and pool population happen here.
    for _ in 0..20 {
        let sga = client.sgaalloc(1400);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }

    const ROUNDS: u64 = 100;
    let before = demi_memory::counters::snapshot();
    for _ in 0..ROUNDS {
        let sga = client.sgaalloc(1400);
        client
            .pushto(cqd, &sga, SocketAddr::new(host_ip(2), 7))
            .unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    let d = demi_memory::counters::snapshot().delta(&before);
    assert_eq!(d.allocs, ROUNDS, "exactly one pool allocation per packet");
    assert_eq!(d.copies, 0, "zero payload copies per packet");
    assert_eq!(d.bytes_copied, 0);
}

#[test]
fn tcp_echo_path_moves_payload_bytes_zero_times() {
    // Same claim for the stream path: a ≤MSS message costs its own pool
    // allocation plus the 8-byte framing-header buffer and empty ACK
    // frames — and zero payload-byte copies.
    let (_rt, _fabric, client, server) = catnip_pair(507);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), 80)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();

    for _ in 0..10 {
        let sga = client.sgaalloc(1400);
        let qt = client.push(cqd, &sga).unwrap();
        client.wait(qt, None).unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }

    const ROUNDS: u64 = 50;
    let before = demi_memory::counters::snapshot();
    for _ in 0..ROUNDS {
        let sga = client.sgaalloc(1400);
        let qt = client.push(cqd, &sga).unwrap();
        client.wait(qt, None).unwrap();
        let _ = server.blocking_pop(sqd).unwrap();
    }
    let d = demi_memory::counters::snapshot().delta(&before);
    assert_eq!(d.copies, 0, "zero payload copies per message");
    assert_eq!(d.bytes_copied, 0);
    // Budget: payload + framing header + up to two ACK-ish control frames.
    assert!(
        d.allocs <= ROUNDS * 4,
        "allocation budget blown: {} allocs for {} messages",
        d.allocs,
        ROUNDS
    );
}

#[test]
fn popped_data_shares_storage_with_the_device_frame() {
    // Zero-copy receive: the application's Sga segments are views into
    // the device's mbuf, not copies.
    let (rt, _fabric, client, server) = catnip_pair(504);
    let sqd = server.socket(SocketKind::Udp).unwrap();
    server.bind(sqd, SocketAddr::new(host_ip(2), 7)).unwrap();
    let cqd = client.socket(SocketKind::Udp).unwrap();
    client.bind(cqd, SocketAddr::new(host_ip(1), 9000)).unwrap();
    client
        .pushto(
            cqd,
            &Sga::from_slice(b"view"),
            SocketAddr::new(host_ip(2), 7),
        )
        .unwrap();
    let (_, sga) = server.blocking_pop(sqd).unwrap().expect_pop();
    let seg = &sga.segments()[0];
    assert!(seg.capacity() > seg.len(), "a view into the full frame");
    // And the libOS performed zero payload copies to deliver it.
    assert_eq!(rt.metrics().snapshot().copies, 0);
}
