//! End-to-end batching behavior (E13): TX coalescing keeps frame order,
//! delayed ACKs fire on the virtual-time timer, completion delivery is
//! O(1) in the number of waited tokens, and batching never changes the
//! bytes a TCP stream delivers.

use std::net::Ipv4Addr;

use demi_memory::DemiBuffer;
use demi_sched::Condition;
use demikernel::types::{OperationResult, QToken};
use demikernel::Runtime;
use dpdk_sim::{DpdkPort, PortConfig};
use net_stack::tcp::State;
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, StackConfig};
use proptest::prelude::*;
use sim_fabric::{Fabric, MacAddress, SimTime};

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

fn host_with(
    fabric: &Fabric,
    last: u8,
    tune: impl Fn(StackConfig) -> StackConfig,
) -> (DpdkPort, NetworkStack) {
    let port = DpdkPort::new(fabric, PortConfig::basic(MacAddress::from_last_octet(last)));
    let stack = NetworkStack::new(
        port.clone(),
        fabric.clock(),
        tune(StackConfig::new(ip(last))),
    );
    (port, stack)
}

/// Runs the world until `until` holds, frames drain, and timers settle.
fn settle(fabric: &Fabric, stacks: &[&NetworkStack], mut until: impl FnMut() -> bool) {
    for _ in 0..100_000 {
        for s in stacks {
            s.poll();
        }
        if until() {
            return;
        }
        if fabric.advance_to_next_event() {
            continue;
        }
        let deadline = stacks.iter().filter_map(|s| s.next_deadline()).min();
        match deadline {
            Some(t) => fabric.clock().advance_to(t),
            None => return,
        }
    }
    panic!("simulation did not settle");
}

/// TX coalescing: frames enqueued across protocols between polls leave in
/// one device handoff, in enqueue order.
#[test]
fn coalesced_frames_leave_in_enqueue_order() {
    let fabric = Fabric::new(7);
    let (a_port, a) = host_with(&fabric, 1, |c| c);
    let (_b_port, b) = host_with(&fabric, 2, |c| c);
    a.udp_bind(9000).unwrap();
    b.udp_bind(7).unwrap();
    let lid = b.tcp_listen(80, 16).unwrap();
    let dst = SocketAddr::new(ip(2), 7);

    // Warm ARP so the burst below is data, not resolution traffic.
    a.udp_sendto(9000, dst, &b"warm"[..]).unwrap();
    settle(&fabric, &[&a, &b], || b.udp_pending(7) > 0);
    let _ = b.udp_recv_from(7);

    // Three datagrams and a TCP SYN, no poll in between: nothing reaches
    // the device until the flush, then everything leaves as one burst.
    let before = a_port.stats();
    a.udp_sendto(9000, dst, &b"one"[..]).unwrap();
    a.udp_sendto(9000, dst, &b"two"[..]).unwrap();
    a.udp_sendto(9000, dst, &b"three"[..]).unwrap();
    let conn = a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap();
    assert_eq!(
        a_port.stats().tx_burst_calls,
        before.tx_burst_calls,
        "frames coalesce in the TX ring until the poll-end flush"
    );
    a.poll();
    let after = a_port.stats();
    assert_eq!(
        after.tx_burst_calls,
        before.tx_burst_calls + 1,
        "one doorbell for the whole burst"
    );
    assert_eq!(after.tx_frames, before.tx_frames + 4);

    // The burst arrives in enqueue order and both protocols make progress.
    settle(&fabric, &[&a, &b], || {
        b.udp_pending(7) == 3 && a.tcp_state(conn) == Ok(State::Established)
    });
    let payloads: Vec<Vec<u8>> = (0..3)
        .map(|_| b.udp_recv_from(7).unwrap().1.as_slice().to_vec())
        .collect();
    assert_eq!(
        payloads,
        vec![b"one".to_vec(), b"two".to_vec(), b"three".to_vec()]
    );
    let mut accepted = None;
    settle(&fabric, &[&a, &b], || {
        accepted = b.tcp_accept(lid).unwrap();
        accepted.is_some()
    });
}

/// Delayed ACK: a lone segment's acknowledgment is held until the
/// virtual-time timer fires, then delivered as one pure ACK.
#[test]
fn delayed_ack_timer_fires_in_virtual_time() {
    let fabric = Fabric::new(11);
    let (_ap, a) = host_with(&fabric, 1, |c| c);
    let (_bp, b) = host_with(&fabric, 2, |c| c);
    let ack_delay = StackConfig::new(ip(2)).tcp.ack_delay;
    let lid = b.tcp_listen(80, 16).unwrap();
    let conn = a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap();
    settle(&fabric, &[&a, &b], || {
        a.tcp_state(conn) == Ok(State::Established)
    });
    let mut sconn = None;
    settle(&fabric, &[&a, &b], || {
        sconn = b.tcp_accept(lid).unwrap();
        sconn.is_some()
    });
    let sconn = sconn.unwrap();

    // One lone segment; its second never comes.
    a.tcp_send(conn, DemiBuffer::from_slice(b"lone")).unwrap();
    a.poll();
    assert!(fabric.advance_to_next_event(), "segment is in flight");
    b.poll();
    assert!(b.tcp_readable(sconn), "data is delivered before the ACK");
    let acks_before = b.tcp_conn_stats(sconn).unwrap().acks_sent;
    let armed_at = fabric.clock().now();

    // The receiver holds the ACK: its next deadline is the delayed-ACK
    // timer, exactly ack_delay out.
    assert_eq!(
        b.next_deadline(),
        Some(armed_at.saturating_add(ack_delay)),
        "delayed-ACK timer is armed"
    );
    assert_eq!(
        b.tcp_conn_stats(sconn).unwrap().acks_sent,
        acks_before,
        "no pure ACK before the timer"
    );

    // Fire the timer in virtual time: one pure ACK leaves.
    fabric
        .clock()
        .advance_to(armed_at.saturating_add(ack_delay));
    b.poll();
    assert_eq!(b.tcp_conn_stats(sconn).unwrap().acks_sent, acks_before + 1);

    // The ACK reaches the sender and clears its retransmission timer well
    // before the RTO would have fired. The only deadline that may remain
    // is the idle-queue compactor, which sits compact_delay out — far
    // past where the RTO (rto_min after the send) would have been.
    assert!(fabric.advance_to_next_event(), "ACK is in flight");
    a.poll();
    let tcp = StackConfig::new(ip(1)).tcp;
    let rto_would_fire = armed_at.saturating_add(tcp.rto_min);
    assert!(
        a.next_deadline().is_none_or(|d| d > rto_would_fire),
        "sender's RTO is disarmed (only the queue compactor may remain)"
    );
}

/// Completion delivery is O(1): waiting on 1024 tokens costs one entry
/// scan, not a rescan of every token on every pump pass.
#[test]
fn wait_any_does_not_rescan_tokens_every_pass() {
    const HERD: usize = 1024;
    let rt = Runtime::new();
    let conds: Vec<Condition> = (0..HERD).map(|_| Condition::new()).collect();
    let mut tokens: Vec<QToken> = conds
        .iter()
        .map(|c| {
            let c = c.clone();
            rt.spawn_op("parked", async move {
                c.wait().await;
                OperationResult::Push
            })
        })
        .collect();
    // Park the herd.
    rt.pump();
    // One op that completes only after several timer hops, forcing the
    // wait loop through many pump passes.
    let timers = rt.timers().clone();
    let slow = rt.spawn_op("slow", async move {
        for _ in 0..8 {
            timers.sleep(SimTime::from_micros(10)).await;
        }
        OperationResult::Push
    });
    tokens.push(slow);

    rt.metrics().reset();
    let (idx, result) = rt.wait_any(&tokens, None).unwrap();
    assert_eq!(idx, HERD, "the slow op resolved the wait");
    assert!(matches!(result, OperationResult::Push));

    let m = rt.metrics().snapshot();
    assert!(
        m.wait_passes >= 8,
        "the sleep loop must span several pump passes, got {}",
        m.wait_passes
    );
    // One entry scan over the tokens plus O(1) per arrival. The historical
    // linear rescan would have cost tokens * passes lookups here.
    let budget = (HERD + 1) as u64 + m.wait_passes;
    assert!(
        m.completion_checks <= budget,
        "completion checks scale with passes: {} > {}",
        m.completion_checks,
        budget
    );
    assert_eq!(
        rt.scheduler().stats().spurious_polls,
        0,
        "the parked herd was never re-polled"
    );

    // Shut the world down cleanly.
    tokens.pop();
    for c in &conds {
        c.signal();
    }
    for qt in tokens {
        rt.wait(qt, None).unwrap();
    }
}

/// Drives `chunks` through a fresh two-host TCP world and returns the byte
/// stream the receiver observed.
fn run_stream(chunks: &[Vec<u8>], seed: u64, batched: bool) -> Vec<u8> {
    let tune = |mut c: StackConfig| {
        c.tx_coalesce = batched;
        c.tcp.delayed_acks = batched;
        c
    };
    let fabric = Fabric::new(seed);
    let (_ap, a) = host_with(&fabric, 1, tune);
    let (_bp, b) = host_with(&fabric, 2, tune);
    let lid = b.tcp_listen(80, 16).unwrap();
    let conn = a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap();
    settle(&fabric, &[&a, &b], || {
        a.tcp_state(conn) == Ok(State::Established)
    });
    let mut sconn = None;
    settle(&fabric, &[&a, &b], || {
        sconn = b.tcp_accept(lid).unwrap();
        sconn.is_some()
    });
    let sconn = sconn.unwrap();

    for chunk in chunks {
        a.tcp_send(conn, DemiBuffer::from_slice(chunk)).unwrap();
    }
    let total: usize = chunks.iter().map(|c| c.len()).sum();
    let mut got = Vec::new();
    settle(&fabric, &[&a, &b], || {
        while let Ok(Some(buf)) = b.tcp_recv(sconn) {
            got.extend_from_slice(buf.as_slice());
        }
        got.len() >= total
    });
    got
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Batching is invisible at the byte level: coalesced and per-frame
    /// stacks deliver the identical stream for any chunking.
    #[test]
    fn batched_and_unbatched_streams_are_byte_identical(
        chunks in prop::collection::vec(prop::collection::vec(any::<u8>(), 1..1600), 1..10),
        seed in 0u64..1_000,
    ) {
        let sent: Vec<u8> = chunks.concat();
        let batched = run_stream(&chunks, seed, true);
        prop_assert_eq!(&batched, &sent);
        let unbatched = run_stream(&chunks, seed, false);
        prop_assert_eq!(&unbatched, &sent);
    }
}
