//! Figure 3 conformance: every listed system call exists and behaves as
//! the paper specifies, exercised over catmem (pure queues) and catnip
//! (device queues).

use std::rc::Rc;

use demikernel::libos::{LibOs, SocketKind};
use demikernel::ops::Demikernel;
use demikernel::testing::{catmem_world, catnip_pair, host_ip};
use demikernel::types::{DemiError, OperationResult, Sga};
use net_stack::types::SocketAddr;
use sim_fabric::SimTime;

#[test]
fn control_path_network_calls_mirror_posix_but_return_qds() {
    // Fig. 3 lines: socket, listen, bind, accept, connect, close.
    let (_rt, _fabric, client, server) = catnip_pair(101);
    let listen_qd = server.socket(SocketKind::Tcp).unwrap();
    server
        .bind(listen_qd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    server.listen(listen_qd, 8).unwrap();
    let accept_qt = server.accept(listen_qd).unwrap();

    let conn_qd = client.socket(SocketKind::Tcp).unwrap();
    let connect_qt = client
        .connect(conn_qd, SocketAddr::new(host_ip(2), 80))
        .unwrap();

    let server_qd = server.wait(accept_qt, None).unwrap().expect_accept();
    assert!(matches!(
        client.wait(connect_qt, None).unwrap(),
        OperationResult::Connect
    ));
    client.close(conn_qd).unwrap();
    server.close(server_qd).unwrap();
    server.close(listen_qd).unwrap();
}

#[test]
fn queue_calls_create_merge_filter_sort_map_qconnect() {
    // Fig. 3 control-path queue calls over catmem.
    let (_rt, libos) = catmem_world();
    let dk = Demikernel::new(Rc::new(libos));
    let q1 = dk.queue().unwrap();
    let q2 = dk.queue().unwrap();
    let merged = dk.merge(q1, q2).unwrap();
    let filtered = dk.filter(merged, Rc::new(|s: &Sga| !s.is_empty())).unwrap();
    let sorted = dk
        .sort(filtered, Rc::new(|a: &Sga, b: &Sga| a.len() > b.len()))
        .unwrap();
    let mapped = dk.map(sorted, Rc::new(|s: Sga| s)).unwrap();
    let sink = dk.queue().unwrap();
    dk.qconnect(mapped, sink).unwrap();

    // An element pushed into q1 flows through the whole pipeline.
    dk.blocking_push(q1, &Sga::from_slice(b"through the pipeline"))
        .unwrap();
    let (_, out) = dk.blocking_pop(sink).unwrap().expect_pop();
    assert_eq!(out.to_vec(), b"through the pipeline");
}

#[test]
fn push_pop_atomicity_over_both_libos() {
    // "A scatter-gather array pushed into a Demikernel queue always pops
    // out as a single element."
    // catmem:
    let (_rt, libos) = catmem_world();
    let qd = libos.queue().unwrap();
    let mut sga = Sga::new();
    for part in [&b"three"[..], &b"part"[..], &b"message"[..]] {
        sga.push_seg(demi_memory::DemiBuffer::from_slice(part));
    }
    libos.blocking_push(qd, &sga).unwrap();
    let (_, got) = libos.blocking_pop(qd).unwrap().expect_pop();
    assert_eq!(got.to_vec(), b"threepartmessage");

    // catnip over TCP (a byte stream under the hood):
    let (_rt2, _fabric, client, server) = catnip_pair(102);
    let lqd = server.socket(SocketKind::Tcp).unwrap();
    server.bind(lqd, SocketAddr::new(host_ip(2), 80)).unwrap();
    server.listen(lqd, 8).unwrap();
    let aqt = server.accept(lqd).unwrap();
    let cqd = client.socket(SocketKind::Tcp).unwrap();
    let cqt = client
        .connect(cqd, SocketAddr::new(host_ip(2), 80))
        .unwrap();
    let sqd = server.wait(aqt, None).unwrap().expect_accept();
    client.wait(cqt, None).unwrap();
    client.blocking_push(cqd, &sga).unwrap();
    let (_, got) = server.blocking_pop(sqd).unwrap().expect_pop();
    assert_eq!(got.to_vec(), b"threepartmessage");
}

#[test]
fn wait_returns_data_wait_any_selects_wait_all_collects() {
    // Fig. 3 data-path calls: wait / wait_any / wait_all.
    let (_rt, libos) = catmem_world();
    let q1 = libos.queue().unwrap();
    let q2 = libos.queue().unwrap();

    // wait returns the popped data directly.
    libos
        .blocking_push(q1, &Sga::from_slice(b"direct"))
        .unwrap();
    let qt = libos.pop(q1).unwrap();
    let result = libos.wait(qt, None).unwrap();
    let (_, sga) = result.expect_pop();
    assert_eq!(sga.to_vec(), b"direct");

    // wait_any returns the first completion and leaves the others valid.
    let slow = libos.pop(q1).unwrap();
    let fast = libos.pop(q2).unwrap();
    libos.blocking_push(q2, &Sga::from_slice(b"fast")).unwrap();
    let (idx, result) = libos.wait_any(&[slow, fast], None).unwrap();
    assert_eq!(idx, 1);
    assert_eq!(result.expect_pop().1.to_vec(), b"fast");
    libos.blocking_push(q1, &Sga::from_slice(b"slow")).unwrap();
    assert_eq!(
        libos.wait(slow, None).unwrap().expect_pop().1.to_vec(),
        b"slow"
    );

    // wait_all blocks until every operation completes.
    let a = libos.push(q1, &Sga::from_slice(b"a")).unwrap();
    let b = libos.push(q2, &Sga::from_slice(b"b")).unwrap();
    let results = libos.wait_all(&[a, b], None).unwrap();
    assert_eq!(results.len(), 2);
    assert!(results.iter().all(|r| matches!(r, OperationResult::Push)));
}

#[test]
fn blocking_calls_equal_push_then_wait() {
    // Fig. 3: "identical to a push, followed by a wait on the returned
    // qtoken" — verified by equivalence of results.
    let (_rt, libos) = catmem_world();
    let qd = libos.queue().unwrap();

    let qt = libos.push(qd, &Sga::from_slice(b"two-step")).unwrap();
    let two_step = libos.wait(qt, None).unwrap();
    let one_step = libos
        .blocking_push(qd, &Sga::from_slice(b"one-step"))
        .unwrap();
    assert_eq!(two_step, OperationResult::Push);
    assert_eq!(one_step, OperationResult::Push);

    let (_, first) = libos.blocking_pop(qd).unwrap().expect_pop();
    let (_, second) = libos.blocking_pop(qd).unwrap().expect_pop();
    assert_eq!(first.to_vec(), b"two-step");
    assert_eq!(second.to_vec(), b"one-step");
}

#[test]
fn qtokens_are_single_use_and_per_operation() {
    // §4.4: "each qtoken is unique to a single queue operation."
    let (_rt, libos) = catmem_world();
    let qd = libos.queue().unwrap();
    let qt1 = libos.push(qd, &Sga::from_slice(b"x")).unwrap();
    let qt2 = libos.push(qd, &Sga::from_slice(b"y")).unwrap();
    assert_ne!(qt1, qt2);
    libos.wait(qt1, None).unwrap();
    assert_eq!(libos.wait(qt1, None), Err(DemiError::BadQToken));
    libos.wait(qt2, None).unwrap();
}

#[test]
fn wait_timeout_is_honored() {
    let (_rt, libos) = catmem_world();
    let qd = libos.queue().unwrap();
    let qt = libos.pop(qd).unwrap();
    assert_eq!(
        libos.wait(qt, Some(SimTime::from_millis(2))),
        Err(DemiError::Timeout)
    );
    // The token survives the timeout and resolves later.
    libos.blocking_push(qd, &Sga::from_slice(b"late")).unwrap();
    let (_, sga) = libos.wait(qt, None).unwrap().expect_pop();
    assert_eq!(sga.to_vec(), b"late");
}

#[test]
fn file_calls_exist_on_the_storage_libos() {
    // Fig. 3 control-path file calls: open / creat.
    let (_rt, catfs, _dev) = demikernel::testing::catfs_world();
    let qd = catfs.create("fig3").unwrap();
    catfs
        .blocking_push(qd, &Sga::from_slice(b"stored"))
        .unwrap();
    let reader = catfs.open("fig3").unwrap();
    let (_, sga) = catfs.blocking_pop(reader).unwrap().expect_pop();
    assert_eq!(sga.to_vec(), b"stored");
}
