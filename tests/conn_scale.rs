//! Connection-scale fast-path invariants (PR 8, toward E18).
//!
//! The slab/demux/TIME_WAIT/SYN-table redesign makes four structural
//! claims at scale, pinned here at test size (the E18 bench measures
//! them at 100k):
//!
//! * an *idle* established connection costs a bounded slab slot — after
//!   the compactor reclaims its drained queue box, amortized bytes per
//!   connection stay under 2 KiB;
//! * open/close churn recycles slab slots and ephemeral ports instead of
//!   growing either;
//! * a SYN flood cannot allocate control blocks or grow the fixed SYN
//!   table — memory stays O(backlog) no matter the flood size;
//! * steady-state echo traffic allocates no queue boxes and never grows
//!   the TX scratch (the TCP layer's witnesses of the zero-alloc claim).

use std::net::Ipv4Addr;

use demi_memory::DemiBuffer;
use dpdk_sim::{DpdkPort, PortConfig};
use net_stack::counters as nsc;
use net_stack::tcp::header::{TcpFlags, TcpHeader};
use net_stack::tcp::{SeqNum, State, TcpConfig, TcpPeer};
use net_stack::types::SocketAddr;
use net_stack::{NetworkStack, StackConfig};
use sim_fabric::{Fabric, MacAddress, SimTime};

fn ip(last: u8) -> Ipv4Addr {
    Ipv4Addr::new(10, 0, 0, last)
}

/// Debug builds run the CI-sized version; release runs the full size
/// (the `verify` recipe runs this suite under `--release`).
const SCALE: usize = if cfg!(debug_assertions) { 128 } else { 1024 };

fn host(fabric: &Fabric, last: u8) -> NetworkStack {
    let port = DpdkPort::new(fabric, PortConfig::basic(MacAddress::from_last_octet(last)));
    NetworkStack::new(port, fabric.clock(), StackConfig::new(ip(last)))
}

/// Runs the world until `until` returns true or the simulation wedges.
fn settle(fabric: &Fabric, stacks: &[&NetworkStack], mut until: impl FnMut() -> bool) {
    for _ in 0..2_000_000 {
        for s in stacks {
            s.poll();
        }
        if until() {
            return;
        }
        if fabric.advance_to_next_event() {
            continue;
        }
        let deadline = stacks.iter().filter_map(|s| s.next_deadline()).min();
        match deadline {
            Some(t) => fabric.clock().advance_to(t),
            // Quiescence with the condition still false means the world
            // wedged — never mask that as success.
            None => panic!("simulation went quiescent before the condition held"),
        }
    }
    panic!("simulation did not settle");
}

/// Advances virtual time by `dt` and polls until quiescent again.
fn advance_and_poll(fabric: &Fabric, stacks: &[&NetworkStack], dt: SimTime) {
    fabric
        .clock()
        .advance_to(fabric.clock().now().saturating_add(dt));
    for _ in 0..64 {
        let mut work = 0;
        for s in stacks {
            work += s.poll();
        }
        if work == 0 && !fabric.advance_to_next_event() {
            return;
        }
    }
}

#[test]
fn idle_connections_cost_bounded_slab_bytes_after_compaction() {
    let fabric = Fabric::new(11);
    let a = host(&fabric, 1);
    let b = host(&fabric, 2);
    b.tcp_listen(80, SCALE).unwrap();
    let conns: Vec<_> = (0..SCALE)
        .map(|_| a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap())
        .collect();
    settle(&fabric, &[&a, &b], || {
        conns
            .iter()
            .all(|&c| a.tcp_state(c) == Ok(State::Established))
    });
    // Touch every connection so its queue box exists, then let them idle.
    for &c in &conns {
        a.tcp_send(c, DemiBuffer::from_slice(b"x")).unwrap();
    }
    settle(&fabric, &[&a, &b], || {
        b.tcp_stats().demuxed > 0 && a.next_deadline().is_none()
    });
    // Past the compact delay, drained queue boxes go back to the
    // allocator: connections park at their slab-slot-only footprint.
    advance_and_poll(&fabric, &[&a, &b], SimTime::from_millis(20));
    let mem = a.tcp_mem_stats();
    assert_eq!(mem.live_conns, SCALE);
    let per_conn = (mem.slab_bytes + mem.cb_heap_bytes + mem.demux_bytes) / mem.live_conns;
    assert!(
        per_conn <= 2_048,
        "idle established connection must cost <= 2 KiB, got {per_conn} \
         (slab={} cb_heap={} demux={})",
        mem.slab_bytes,
        mem.cb_heap_bytes,
        mem.demux_bytes,
    );
    assert_eq!(
        mem.cb_heap_bytes, 0,
        "every idle connection should have released its queue box"
    );
}

#[test]
fn open_close_churn_recycles_slots_and_ports() {
    let fabric = Fabric::new(23);
    let a = host(&fabric, 1);
    let b = host(&fabric, 2);
    // The whole round's SYN burst must fit the listener's fixed SYN
    // table, or the overflow gets evicted and RST'd by design.
    let per_round = SCALE / 8;
    let lid = b.tcp_listen(80, per_round).unwrap();
    let mut slab_after_first_round = 0;
    for round in 0..8 {
        let conns: Vec<_> = (0..per_round)
            .map(|_| a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap())
            .collect();
        let mut accepted = Vec::new();
        settle(&fabric, &[&a, &b], || {
            while let Some(s) = b.tcp_accept(lid).unwrap() {
                accepted.push(s);
            }
            accepted.len() == per_round
                && conns
                    .iter()
                    .all(|&c| a.tcp_state(c) == Ok(State::Established))
        });
        // Full close walk: client first (it takes the TIME_WAIT), then
        // the server once its side sees EOF.
        for &c in &conns {
            a.tcp_close(c).unwrap();
        }
        settle(&fabric, &[&a, &b], || {
            accepted.iter().all(|&s| b.tcp_eof(s))
        });
        for &s in &accepted {
            b.tcp_close(s).unwrap();
        }
        settle(&fabric, &[&a, &b], || {
            conns.iter().all(|&c| {
                a.tcp_state(c) == Ok(State::TimeWait) || a.tcp_state(c) == Ok(State::Closed)
            })
        });
        // Ride past 2*MSL so TIME_WAIT records expire and ports recycle.
        advance_and_poll(&fabric, &[&a, &b], SimTime::from_millis(25));
        assert_eq!(a.tcp_mem_stats().live_conns, 0, "round {round}");
        assert_eq!(a.tcp_mem_stats().timewait_records, 0, "round {round}");
        if round == 0 {
            slab_after_first_round = a.tcp_mem_stats().slab_bytes;
        }
    }
    let mem = a.tcp_mem_stats();
    assert_eq!(
        mem.slab_bytes, slab_after_first_round,
        "8 rounds of churn must reuse round 1's slab slots"
    );
    // Ports were recycled back to the shared namespace: the whole churn
    // fit without claiming anywhere near rounds * per_round fresh ports.
    let ports = a.port_allocator();
    let claimed_low_range = (32_768..32_768 + 2 * per_round as u16)
        .filter(|&p| ports.is_claimed(p))
        .count();
    assert_eq!(claimed_low_range, 0, "all ephemeral ports returned");
}

#[test]
fn syn_flood_memory_stays_bounded_by_the_backlog() {
    // Peer-level: a fixed SYN table absorbs a flood 100x its size with
    // zero control blocks and zero table growth.
    let now = SimTime::from_millis(1);
    let backlog = 64;
    let flood = backlog * 100;
    let mut server = TcpPeer::new(ip(2), TcpConfig::default());
    server.listen(80, backlog).unwrap();
    let table_before = server.mem_stats().syn_table_bytes;
    let before = nsc::conn_snapshot();
    for i in 0..flood as u32 {
        let syn = TcpHeader {
            src_port: 1_024 + (i % 60_000) as u16,
            dst_port: 80,
            seq: SeqNum(i.wrapping_mul(2_654_435_761)),
            ack: SeqNum(0),
            flags: TcpFlags::SYN,
            window: 65_535,
            mss: Some(1_460),
        };
        // Distinct source hosts so every SYN is a distinct flow.
        server.on_segment(ip(3 + (i % 200) as u8), &syn, DemiBuffer::empty(), now);
    }
    let evicted = nsc::conn_snapshot().delta(&before).syns_evicted;
    assert_eq!(server.conn_count(), 0, "no TCB before handshake completion");
    assert_eq!(
        server.mem_stats().syn_table_bytes,
        table_before,
        "the SYN table is fixed-size"
    );
    assert_eq!(
        evicted as usize,
        flood - backlog,
        "all but `backlog` half-open entries were evicted oldest-first"
    );
    assert_eq!(server.stats().syns_accepted as usize, flood);
    // Every admitted SYN still got its SYN-ACK (the flood is answered,
    // just never allowed to pin memory).
    assert_eq!(server.take_segments().len(), flood);
}

#[test]
fn closing_a_reset_connection_releases_its_slab_slot_and_port() {
    // A connection killed by a peer RST stays resident so `error()` can
    // still report what happened — but only until the owner closes the
    // handle. Close must return the slab slot and the ephemeral port, or
    // refused connections leak forever.
    let now = SimTime::from_millis(1);
    let mut client = TcpPeer::new(ip(1), TcpConfig::default());
    let mut server = TcpPeer::new(ip(2), TcpConfig::default());
    // Nobody listens on 81: the SYN draws an RST.
    let c = client.connect(SocketAddr::new(ip(2), 81), now).unwrap();
    for (_, seg) in client.take_segments() {
        server.on_segment(ip(1), &seg.header, seg.payload, now);
    }
    for (_, seg) in server.take_segments() {
        client.on_segment(ip(2), &seg.header, seg.payload, now);
    }
    assert_eq!(client.state(c).unwrap(), State::Closed);
    assert_eq!(
        client.mem_stats().live_conns,
        1,
        "errored block stays resident until the owner closes it"
    );
    let port = client.local(c).unwrap().port;
    client.close(c, now).unwrap();
    assert_eq!(
        client.mem_stats().live_conns,
        0,
        "close surrenders the handle: the slot frees"
    );
    assert_eq!(
        client.pop_released_port(),
        Some(port),
        "the ephemeral port goes back to the namespace"
    );
}

#[test]
fn established_flow_survives_a_syn_flood() {
    // Peer-level: an established connection keeps echoing while (and
    // after) its listener absorbs a flood of half-open attempts from an
    // attacker who never completes a handshake.
    let now = SimTime::from_millis(1);
    let mut client = TcpPeer::new(ip(1), TcpConfig::default());
    let mut server = TcpPeer::new(ip(2), TcpConfig::default());
    let lid = server.listen(80, 16).unwrap();
    let c = client.connect(SocketAddr::new(ip(2), 80), now).unwrap();
    let shuttle = |client: &mut TcpPeer, server: &mut TcpPeer| {
        for _ in 0..100 {
            let mut quiet = true;
            for (_, seg) in client.take_segments() {
                quiet = false;
                server.on_segment(ip(1), &seg.header, seg.payload, now);
            }
            for (dst, seg) in server.take_segments() {
                quiet = false;
                // Replies to the attacker fall on the floor (it never
                // answers); only the real client's traffic loops back.
                if dst == ip(1) {
                    client.on_segment(ip(2), &seg.header, seg.payload, now);
                }
            }
            if quiet {
                break;
            }
        }
    };
    shuttle(&mut client, &mut server);
    let s = server.accept(lid).unwrap().expect("connection ready");
    assert_eq!(client.state(c).unwrap(), State::Established);

    // 512 half-open attempts from an attacker that never ACKs.
    let mut attacker = TcpPeer::new(ip(9), TcpConfig::default());
    for _ in 0..512 {
        attacker.connect(SocketAddr::new(ip(2), 80), now).unwrap();
    }
    for (_, seg) in attacker.take_segments() {
        server.on_segment(ip(9), &seg.header, seg.payload, now);
    }
    server.take_segments(); // SYN-ACKs to the attacker: dropped.
    assert_eq!(server.stats().syns_evicted, 512 - 16);
    assert_eq!(server.conn_count(), 1, "the flood pinned no control block");

    // The established flow is unharmed.
    client
        .send(c, DemiBuffer::from_slice(b"still alive"), now)
        .unwrap();
    shuttle(&mut client, &mut server);
    let got = server.recv(s).unwrap().expect("request survived the flood");
    assert_eq!(got.as_slice(), b"still alive");
}

#[test]
fn steady_state_echo_allocates_no_queue_boxes_and_never_grows_scratch() {
    let fabric = Fabric::new(47);
    let a = host(&fabric, 1);
    let b = host(&fabric, 2);
    let lid = b.tcp_listen(80, 64).unwrap();
    let n = 32;
    let conns: Vec<_> = (0..n)
        .map(|_| a.tcp_connect(SocketAddr::new(ip(2), 80)).unwrap())
        .collect();
    let mut server_conns = Vec::new();
    settle(&fabric, &[&a, &b], || {
        while let Some(s) = b.tcp_accept(lid).unwrap() {
            server_conns.push(s);
        }
        server_conns.len() == n
            && conns
                .iter()
                .all(|&c| a.tcp_state(c) == Ok(State::Established))
    });

    // A 4 KiB message spans three MSS-sized segments, so each flow puts
    // consecutive segments on the wire — the last-flow demux cache's
    // target pattern.
    let msg = vec![0x5au8; 4_096];
    let round = || {
        for &c in &conns {
            a.tcp_send(c, DemiBuffer::from_slice(&msg)).unwrap();
        }
        let mut echoed = vec![0usize; n];
        settle(&fabric, &[&a, &b], || {
            for (i, &s) in server_conns.iter().enumerate() {
                while let Some(chunk) = b.tcp_recv(s).unwrap() {
                    echoed[i] += chunk.len();
                    b.tcp_send(s, chunk).unwrap();
                }
            }
            echoed.iter().all(|&e| e == msg.len())
        });
        let mut got = vec![0usize; n];
        settle(&fabric, &[&a, &b], || {
            for (i, &c) in conns.iter().enumerate() {
                while let Some(chunk) = a.tcp_recv(c).unwrap() {
                    got[i] += chunk.len();
                }
            }
            got.iter().all(|&g| g == msg.len())
        });
    };

    // Warmup: queue boxes and scratch buffers reach steady capacity.
    for _ in 0..10 {
        round();
    }
    let before = nsc::conn_snapshot();
    for _ in 0..30 {
        round();
    }
    let delta = nsc::conn_snapshot().delta(&before);
    assert_eq!(
        delta.tcb_queue_allocs, 0,
        "steady-state echo must reuse warm queue boxes"
    );
    assert_eq!(
        delta.outbox_scratch_grows, 0,
        "the TX scratch must be at capacity after warmup"
    );
    assert!(
        delta.demux_cache_hits > 0,
        "back-to-back segments of a flow should hit the last-flow cache"
    );
}
