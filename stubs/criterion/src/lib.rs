//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! small wall-clock harness with criterion's API shape: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, `bench_function` /
//! `bench_with_input`, `Throughput`, `BenchmarkId`, and `black_box`.
//!
//! Measurement model: each benchmark runs a short warm-up, then timed
//! batches until the measurement budget is spent, and reports the mean
//! per-iteration time (plus derived throughput when declared). There is no
//! statistical analysis, HTML report, or baseline comparison — the numbers
//! are honest wall-clock means, printed to stdout, sufficient for the
//! relative comparisons the bench suite makes.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier; forwards to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declared workload size, used to derive throughput from iteration time.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Bytes processed per iteration.
    Bytes(u64),
    /// Logical elements processed per iteration.
    Elements(u64),
}

/// Two-part benchmark identifier (`function/parameter`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Identifier combining a function name and a parameter value.
    pub fn new(function: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{function}/{parameter}"),
        }
    }

    /// Identifier from a parameter value alone.
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            label: format!("{parameter}"),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Top-level harness handle; hands out benchmark groups.
#[derive(Debug, Default)]
pub struct Criterion {
    _priv: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted and ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            measurement_time: Duration::from_millis(300),
            _criterion: self,
        }
    }

    /// Prints the closing summary (no-op in the stub).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    measurement_time: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the criterion sample count; the stub maps it onto its time
    /// budget (more samples -> proportionally longer measurement).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.measurement_time = Duration::from_millis(30) * (n as u32);
        self
    }

    /// Sets the total measurement budget.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget (accepted; the stub warms up briefly anyway).
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Declares per-iteration workload for throughput reporting.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(&id.to_string(), &mut f);
        self
    }

    /// Runs one benchmark that receives an input value.
    pub fn bench_with_input<I, F>(
        &mut self,
        id: impl fmt::Display,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run_one(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}

    fn run_one(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut b = Bencher {
            budget: self.measurement_time,
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut b);
        let mean_ns = if b.iters == 0 {
            0.0
        } else {
            b.total.as_nanos() as f64 / b.iters as f64
        };
        let rate = self.throughput.map(|t| match t {
            Throughput::Bytes(n) => {
                format!(
                    "{:>10.1} MiB/s",
                    n as f64 / mean_ns * 1e9 / (1 << 20) as f64
                )
            }
            Throughput::Elements(n) => {
                format!("{:>10.1} Kelem/s", n as f64 / mean_ns * 1e9 / 1e3)
            }
        });
        println!(
            "bench {:<40} {:>12.1} ns/iter  ({} iters){}",
            format!("{}/{}", self.name, id),
            mean_ns,
            b.iters,
            rate.map(|r| format!("  {r}")).unwrap_or_default(),
        );
    }
}

/// Timer handed to each benchmark closure.
pub struct Bencher {
    budget: Duration,
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly until the budget is spent.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed run (fills caches, faults pages).
        black_box(routine());
        let deadline = Instant::now() + self.budget;
        loop {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

/// Bundles benchmark functions into a named runner, like criterion's.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
            c.final_summary();
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(c: &mut Criterion) {
        let mut g = c.benchmark_group("stub");
        g.measurement_time(Duration::from_millis(5));
        g.throughput(Throughput::Elements(1));
        g.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        g.bench_with_input(BenchmarkId::new("sq", 3), &3u64, |b, &x| {
            b.iter(|| black_box(x * x))
        });
        g.finish();
    }

    #[test]
    fn harness_runs_and_counts_iterations() {
        tiny(&mut Criterion::default());
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 10).to_string(), "f/10");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
