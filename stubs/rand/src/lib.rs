//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal, deterministic implementation of exactly the surface it consumes:
//! [`rngs::StdRng`] seeded via [`SeedableRng::seed_from_u64`], and
//! [`distributions::Uniform`] sampled through [`distributions::Distribution`].
//! The generator is splitmix64 — not cryptographic, but statistically fine
//! for workload shaping, and fully reproducible from the seed.

/// Core generator interface: a source of uniformly distributed `u64`s.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Convenience sampling methods, blanket-implemented over [`RngCore`].
pub trait Rng: RngCore {
    /// Samples uniformly from `[low, high)`.
    fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range on empty range");
        let span = range.end - range.start;
        range.start + self.next_u64() % span
    }
}

impl<R: RngCore> Rng for R {}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic splitmix64 generator (stand-in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

pub mod distributions {
    use super::RngCore;

    /// A distribution over values of `T`.
    pub trait Distribution<T> {
        /// Draws one value using `rng` as the entropy source.
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
    }

    /// Uniform distribution over the half-open interval `[low, high)`.
    #[derive(Debug, Clone, Copy)]
    pub struct Uniform<T> {
        low: T,
        high: T,
    }

    impl<T: Copy> Uniform<T> {
        /// Creates a uniform distribution over `[low, high)`.
        pub fn new(low: T, high: T) -> Self {
            Uniform { low, high }
        }
    }

    impl Distribution<f64> for Uniform<f64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
            // 53 random mantissa bits -> uniform in [0, 1), scaled to range.
            let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
            self.low + unit * (self.high - self.low)
        }
    }

    impl Distribution<u64> for Uniform<u64> {
        fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
            assert!(self.low < self.high, "Uniform over empty range");
            self.low + rng.next_u64() % (self.high - self.low)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::distributions::{Distribution, Uniform};
    use super::rngs::StdRng;
    use super::{RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn uniform_f64_stays_in_range() {
        let mut rng = StdRng::seed_from_u64(42);
        let dist = Uniform::new(0.0, 1.0);
        for _ in 0..1000 {
            let x: f64 = dist.sample(&mut rng);
            assert!((0.0..1.0).contains(&x));
        }
    }
}
