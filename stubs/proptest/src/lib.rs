//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so the workspace vendors a
//! minimal property-testing harness that covers exactly the surface its test
//! suites use: the [`proptest!`] macro (with an optional
//! `#![proptest_config(...)]` header), integer-range and `any::<T>()`
//! strategies, tuple strategies, and `prop::collection::vec`.
//!
//! Differences from real proptest, by design:
//!
//! * **No shrinking.** A failing case panics with the seed case index; rerun
//!   under a debugger instead of expecting a minimized counterexample.
//! * **Deterministic.** Case *i* of test *f* always sees the same inputs
//!   (splitmix64 over a fixed seed mixed with the case index), so failures
//!   reproduce exactly across runs and machines.
//! * `prop_assert_*` panic immediately rather than returning `Err`.

use core::marker::PhantomData;

/// Deterministic splitmix64 generator used to drive all strategies.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn for_case(case: u64) -> Self {
        TestRng {
            state: 0xDEE5_C0DE_0000_0000 ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }
}

/// Runner configuration; only the case count is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; we keep the suite fast in CI while
        // still exploring a meaningful slice of the input space.
        ProptestConfig { cases: 64 }
    }
}

/// A generator of values of `Self::Value`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// Strategy producing arbitrary values of `T` (full-range for integers).
pub fn any<T>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
any_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "strategy over empty range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "strategy over empty range");
                let span = (hi - lo) as u64 + 1;
                lo + rng.below(span) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Strategy namespace mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};

        /// Strategy for `Vec<S::Value>` with length drawn from `len`.
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            len: core::ops::Range<usize>,
        }

        /// Generates vectors whose length is drawn from `len` and whose
        /// elements are drawn from `element`.
        pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, len }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let n = self.len.generate(rng);
                (0..n).map(|_| self.element.generate(rng)).collect()
            }
        }
    }
}

/// Everything a test file needs; mirrors `proptest::prelude`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, ProptestConfig,
        Strategy,
    };
}

/// Asserts a condition inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(, $($fmt:tt)+)?) => {
        assert!($cond $(, $($fmt)+)?)
    };
}

/// Asserts equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_eq!($left, $right $(, $($fmt)+)?)
    };
}

/// Asserts inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(, $($fmt:tt)+)?) => {
        assert_ne!($left, $right $(, $($fmt)+)?)
    };
}

/// Declares property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    ( @funcs ($config:expr) ) => {};
    (
        @funcs ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(case);
                let ( $($pat,)+ ) = (
                    $( $crate::Strategy::generate(&($strategy), &mut rng), )+
                );
                let _ = case;
                $body
            }
        }
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@funcs ($config) $($rest)*);
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@funcs ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::TestRng;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3usize..10, v in prop::collection::vec(any::<u8>(), 0..5)) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(v.len() < 5);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(7))]
        #[test]
        fn config_header_parses(pair in (0u32..4, 0u32..4)) {
            prop_assert!(pair.0 < 4 && pair.1 < 4);
        }
    }

    #[test]
    fn deterministic_per_case() {
        let mut a = TestRng::for_case(3);
        let mut b = TestRng::for_case(3);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}
